"""Setuptools shim so legacy editable installs work offline.

The environment has setuptools 65 without the ``wheel`` package, so the
PEP 517 editable path (which builds a wheel) is unavailable; keeping a
``setup.py`` lets ``pip install -e .`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
