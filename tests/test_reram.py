"""ReRAM substrate: cell model, wear tracking, lifetime arithmetic."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ReproError, SimulationError
from repro.reram.cell import CellState, ReRamCell
from repro.reram.endurance import (
    LIFETIME_CAP_YEARS,
    bank_lifetime_years,
    lifetime_summary,
    lifetimes_for_banks,
)
from repro.reram.wear import WearTracker


class TestCell:
    def test_initial_state_reset(self):
        assert ReRamCell().read() == 0

    def test_set_then_read(self):
        cell = ReRamCell()
        cell.write(1)
        assert cell.read() == 1
        assert cell.state is CellState.SET

    def test_redundant_write_no_wear(self):
        cell = ReRamCell()
        cell.write(0)
        assert cell.switch_count == 0

    def test_switching_wears(self):
        cell = ReRamCell()
        cell.write(1)
        cell.write(0)
        assert cell.switch_count == 2

    def test_write_latency_asymmetry(self):
        cell = ReRamCell(set_latency_ns=10, reset_latency_ns=5, read_latency_ns=1)
        assert cell.write(1) == 10
        assert cell.write(0) == 5
        assert cell.write(0) == 1  # redundant -> sense only

    def test_endurance_failure(self):
        cell = ReRamCell(endurance=4)
        for bit in (1, 0, 1, 0):
            cell.write(bit)
        assert not cell.failed
        cell.write(1)
        assert cell.failed
        with pytest.raises(SimulationError):
            cell.write(0)
        with pytest.raises(SimulationError):
            cell.read()

    def test_remaining_fraction(self):
        cell = ReRamCell(endurance=10)
        cell.write(1)
        assert cell.remaining_fraction == pytest.approx(0.9)

    def test_bad_bit_rejected(self):
        with pytest.raises(SimulationError):
            ReRamCell().write(2)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ReRamCell(endurance=0)


class TestWearTracker:
    def test_record_and_totals(self):
        wear = WearTracker(4)
        wear.record_write(0)
        wear.record_write(0)
        wear.record_write(3)
        assert wear.writes_of(0) == 2
        assert wear.total_writes() == 3

    def test_min_write_bank(self):
        wear = WearTracker(4)
        wear.record_write(0)
        wear.record_write(1)
        assert wear.min_write_bank() == 2  # first zero bank

    def test_min_write_bank_ties_lowest(self):
        wear = WearTracker(3)
        assert wear.min_write_bank() == 0

    def test_line_histogram_when_enabled(self):
        wear = WearTracker(2, track_lines=True)
        wear.record_write(0, line=7)
        wear.record_write(0, line=7)
        wear.record_write(0, line=9)
        assert wear.line_histogram(0) == {7: 2, 9: 1}
        assert wear.max_line_writes(0) == 2

    def test_line_histogram_disabled_by_default(self):
        # The line= argument is deliberately ignored without track_lines:
        # the bank counter still advances, the histogram stays empty, and
        # no error is raised (hot-path callers always pass the line).
        wear = WearTracker(2)
        wear.record_write(0, line=7)
        assert wear.line_histogram(0) == {}
        assert wear.writes_of(0) == 1
        assert wear.max_line_writes(0) == 0

    def test_out_of_range_bank_rejected(self):
        wear = WearTracker(2)
        with pytest.raises(SimulationError):
            wear.record_write(2)

    def test_reset(self):
        wear = WearTracker(2, track_lines=True)
        wear.record_write(1, line=3)
        wear.reset()
        assert wear.total_writes() == 0
        assert wear.line_histogram(1) == {}


class TestWearSnapshot:
    def test_snapshot_is_decoupled_copy(self):
        wear = WearTracker(2, track_lines=True)
        wear.record_write(0, line=5)
        snap = wear.snapshot()
        wear.record_write(0, line=5)
        wear.record_write(1, line=9)
        assert snap.total_writes() == 1
        assert snap.line_histogram(0) == {5: 1}
        assert snap.line_histogram(1) == {}
        assert snap.num_banks == 2

    def test_snapshot_bad_bank_rejected(self):
        snap = WearTracker(2).snapshot()
        with pytest.raises(SimulationError):
            snap.line_histogram(2)

    def test_merge_tracker(self):
        a = WearTracker(2, track_lines=True)
        b = WearTracker(2, track_lines=True)
        a.record_write(0, line=1)
        b.record_write(0, line=1)
        b.record_write(1, line=4)
        a.merge(b)
        assert a.writes_of(0) == 2
        assert a.writes_of(1) == 1
        assert a.line_histogram(0) == {1: 2}
        assert a.line_histogram(1) == {4: 1}

    def test_merge_snapshot(self):
        a = WearTracker(2, track_lines=True)
        b = WearTracker(2, track_lines=True)
        b.record_write(1, line=7)
        a.merge(b.snapshot())
        assert a.writes_of(1) == 1
        assert a.line_histogram(1) == {7: 1}

    def test_merge_without_line_tracking_keeps_banks_only(self):
        a = WearTracker(2)  # track_lines=False
        b = WearTracker(2, track_lines=True)
        b.record_write(0, line=3)
        a.merge(b)
        assert a.writes_of(0) == 1
        assert a.line_histogram(0) == {}

    def test_merge_bank_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            WearTracker(2).merge(WearTracker(4))
        with pytest.raises(ConfigError):
            WearTracker(2).merge(WearTracker(4).snapshot())


class TestLifetime:
    CLOCK = 2.4e9
    LINES = 32768
    ENDURANCE = 1e11

    def test_known_lifetime(self):
        # 1e6 writes over 2.4e9 cycles (1 s) -> rate 1e6/s.
        # Budget = 1e11 * 32768 -> 3.2768e15 writes -> 3.2768e9 s.
        years = bank_lifetime_years(
            1_000_000,
            self.CLOCK,
            self.CLOCK,
            lines_per_bank=self.LINES,
            cell_endurance=self.ENDURANCE,
        )
        assert years == pytest.approx(3.2768e9 / (365.25 * 24 * 3600), rel=1e-6)

    def test_zero_writes_capped(self):
        years = bank_lifetime_years(
            0, 1e9, 1e9, lines_per_bank=self.LINES, cell_endurance=self.ENDURANCE
        )
        assert years == LIFETIME_CAP_YEARS

    def test_wear_spread_scales(self):
        full = bank_lifetime_years(
            10**9, 1e9, 1e9, lines_per_bank=self.LINES, cell_endurance=1e9
        )
        half = bank_lifetime_years(
            10**9, 1e9, 1e9, lines_per_bank=self.LINES, cell_endurance=1e9,
            wear_spread=0.5,
        )
        assert half == pytest.approx(full / 2)

    def test_double_rate_halves_lifetime(self):
        one = bank_lifetime_years(
            10**7, 1e9, 1e9, lines_per_bank=self.LINES, cell_endurance=1e9
        )
        two = bank_lifetime_years(
            2 * 10**7, 1e9, 1e9, lines_per_bank=self.LINES, cell_endurance=1e9
        )
        assert two == pytest.approx(one / 2)

    def test_zero_time_rejected(self):
        with pytest.raises(ReproError):
            bank_lifetime_years(1, 0, 1e9, lines_per_bank=1, cell_endurance=1)

    def test_vector_helper(self):
        lifetimes = lifetimes_for_banks(
            [10**6, 2 * 10**6], 1e9, 1e9,
            lines_per_bank=self.LINES, cell_endurance=self.ENDURANCE,
        )
        assert lifetimes[0] == pytest.approx(2 * lifetimes[1])


class TestLifetimeSummary:
    def test_summary_shapes(self):
        matrix = [[4.0, 2.0], [4.0, 6.0]]  # 2 workloads x 2 banks
        summary = lifetime_summary(matrix)
        assert summary["raw_min"] == 2.0
        assert summary["hmean_per_bank"][0] == pytest.approx(4.0)
        assert summary["hmean_per_bank"][1] == pytest.approx(3.0)

    def test_perfect_leveling_zero_variation(self):
        matrix = np.full((3, 4), 5.0)
        assert lifetime_summary(matrix)["variation"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            lifetime_summary([])
