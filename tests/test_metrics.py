"""MatrixResult / WorkloadSchemeResult metric arithmetic (synthetic data)."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult


def make_result(workload, scheme, *, ipc_per_core=1.0, lifetimes=None):
    n = 4
    lifetimes = np.asarray(lifetimes if lifetimes is not None else [5.0] * n)
    return WorkloadSchemeResult(
        workload=workload,
        scheme=scheme,
        apps=("a",) * n,
        per_core_ipc=np.full(n, ipc_per_core),
        per_core_instructions=np.full(n, 1000, dtype=np.int64),
        per_core_cycles=np.full(n, 1000.0 / ipc_per_core),
        bank_writes=np.arange(n, dtype=np.int64) + 1,
        bank_lifetimes=lifetimes,
        elapsed_cycles=1000.0,
        llc_fetch_hit_rate=0.5,
        llc_mean_fetch_latency=100.0,
        noc_mean_hops=2.0,
    )


@pytest.fixture
def matrix():
    m = MatrixResult(label="t", schemes=("S-NUCA", "X"), workloads=("WL1", "WL2"))
    m.add(make_result("WL1", "S-NUCA", ipc_per_core=1.0, lifetimes=[4, 4, 4, 4]))
    m.add(make_result("WL2", "S-NUCA", ipc_per_core=2.0, lifetimes=[8, 8, 8, 8]))
    m.add(make_result("WL1", "X", ipc_per_core=1.1, lifetimes=[2, 4, 6, 8]))
    m.add(make_result("WL2", "X", ipc_per_core=2.2, lifetimes=[4, 8, 12, 16]))
    return m


class TestWorkloadSchemeResult:
    def test_ipc_is_sum(self):
        result = make_result("WL1", "S", ipc_per_core=1.5)
        assert result.ipc == pytest.approx(6.0)

    def test_min_lifetime(self):
        result = make_result("WL1", "S", lifetimes=[3, 1, 2, 9])
        assert result.min_lifetime == 1


class TestDegraded:
    """`degraded` reflects observed fault effects, not mere service age.

    Regression: an aged run whose frames all survived used to be marked
    degraded because ``age_fraction > 0``, even though it behaved
    exactly like pristine hardware.
    """

    def test_pristine_not_degraded(self):
        assert not make_result("WL1", "S").degraded

    def test_aged_but_healthy_not_degraded(self):
        result = make_result("WL1", "S")
        result.age_fraction = 0.75  # below the endurance wall: no effects
        assert not result.degraded

    @pytest.mark.parametrize("field_name,value", [
        ("effective_capacity", 0.9),
        ("dead_banks", 1),
        ("remap_traffic", 10),
        ("fills_skipped", 3),
        ("transient_faults", 1),
    ])
    def test_any_observed_effect_degrades(self, field_name, value):
        result = make_result("WL1", "S")
        setattr(result, field_name, value)
        assert result.degraded


class TestMatrixResult:
    def test_ipc_of(self, matrix):
        assert matrix.ipc_of("S-NUCA") == {"WL1": pytest.approx(4.0),
                                           "WL2": pytest.approx(8.0)}

    def test_improvement_is_10_percent(self, matrix):
        impr = matrix.ipc_improvement_over("X")
        assert impr["WL1"] == pytest.approx(10.0)
        assert impr["WL2"] == pytest.approx(10.0)
        assert matrix.mean_ipc_improvement("X") == pytest.approx(10.0)

    def test_lifetime_matrix_shape(self, matrix):
        lm = matrix.lifetime_matrix("X")
        assert lm.shape == (2, 4)

    def test_hmean_per_bank(self, matrix):
        bars = matrix.hmean_bank_lifetimes("X")
        # bank 0: H(2, 4) = 8/3
        assert bars[0] == pytest.approx(8 / 3)

    def test_raw_min(self, matrix):
        assert matrix.raw_min_lifetime("X") == 2.0
        assert matrix.raw_min_lifetime("S-NUCA") == 4.0

    def test_variation_zero_for_uniform(self, matrix):
        assert matrix.lifetime_summary_of("S-NUCA")["variation"] == 0.0
        assert matrix.lifetime_summary_of("X")["variation"] > 0.2

    def test_tradeoff_points(self, matrix):
        points = matrix.tradeoff_points()
        assert points["S-NUCA"][0] == pytest.approx(6.0)  # mean of 4 and 8
        assert points["S-NUCA"][1] == pytest.approx(
            8 / (4 * (1 / 4) + 4 * (1 / 8)) * 1.0
        )

    def test_missing_cell(self, matrix):
        with pytest.raises(ReproError):
            matrix.get("WL3", "X")

    def test_zero_baseline_rejected(self):
        m = MatrixResult(label="t", schemes=("S-NUCA", "X"), workloads=("WL1",))
        m.add(make_result("WL1", "S-NUCA", ipc_per_core=1e-12))
        m.add(make_result("WL1", "X"))
        bad = m.get("WL1", "S-NUCA")
        bad.per_core_ipc[:] = 0.0
        with pytest.raises(ReproError):
            m.ipc_improvement_over("X")


class TestDuplicateAdd:
    """`add` refuses to silently overwrite a cell (sweep-retry safety)."""

    def test_duplicate_cell_rejected(self, matrix):
        with pytest.raises(ReproError, match="duplicate result"):
            matrix.add(make_result("WL1", "S-NUCA", ipc_per_core=9.0))
        # The original cell is untouched.
        assert matrix.get("WL1", "S-NUCA").ipc == pytest.approx(4.0)

    def test_replace_overwrites_explicitly(self, matrix):
        matrix.add(make_result("WL1", "S-NUCA", ipc_per_core=9.0),
                   replace=True)
        assert matrix.get("WL1", "S-NUCA").ipc == pytest.approx(36.0)

    def test_distinct_cells_unaffected(self):
        m = MatrixResult(label="t", schemes=("S-NUCA",),
                         workloads=("WL1", "WL2"))
        m.add(make_result("WL1", "S-NUCA"))
        m.add(make_result("WL2", "S-NUCA"))
        assert len(m.results) == 2
