"""Telemetry subsystem: registry, event trace, profiler, intervals.

Covers the observability contracts documented in docs/OBSERVABILITY.md:
hierarchical instrument naming, JSONL event round-trips, ring-buffer
retention, nested phase timing, interval series arithmetic — and the
headline guarantee that a run without a telemetry handle behaves
identically to one with it.
"""

import json

import numpy as np
import pytest

from repro.config import baseline_config
from repro.sim.runner import Stage1Cache, run_workload
from repro.telemetry import (
    DISABLED_PROFILER,
    KNOWN_KINDS,
    EventTrace,
    IntervalSeries,
    Profiler,
    StatsRegistry,
    Telemetry,
    TelemetryError,
    load_events,
)
from repro.telemetry.registry import check_name
from repro.trace.workloads import make_workloads


class TestNames:
    @pytest.mark.parametrize("name", [
        "llc.bank3.writes", "cpt.mispredicts", "a", "x9.y-z.w_v",
    ])
    def test_valid(self, name):
        assert check_name(name) == name

    @pytest.mark.parametrize("name", [
        "", "LLC.writes", "llc..writes", ".llc", "llc.", "3abc", "a b",
    ])
    def test_invalid(self, name):
        with pytest.raises(TelemetryError):
            check_name(name)


class TestStatsRegistry:
    def test_counter_lazy_and_shared(self):
        reg = StatsRegistry()
        c = reg.counter("llc.fetches")
        c.inc()
        c.inc(4)
        assert reg.counter("llc.fetches") is c
        assert reg.snapshot()["llc.fetches"] == 5

    def test_gauge_callback_evaluated_at_snapshot(self):
        reg = StatsRegistry()
        box = {"v": 1}
        reg.gauge("llc.occupancy", lambda: box["v"])
        box["v"] = 7
        assert reg.snapshot()["llc.occupancy"] == 7

    def test_gauge_set_value(self):
        reg = StatsRegistry()
        reg.gauge("run.age").set(0.9)
        assert reg.snapshot()["run.age"] == pytest.approx(0.9)

    def test_histogram_flattens_moments(self):
        reg = StatsRegistry()
        h = reg.histogram("llc.latency")
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["llc.latency.count"] == 3
        assert snap["llc.latency.mean"] == pytest.approx(20.0)
        assert snap["llc.latency.min"] == 10.0
        assert snap["llc.latency.max"] == 30.0

    def test_kind_mismatch_rejected(self):
        reg = StatsRegistry()
        reg.counter("llc.fetches")
        with pytest.raises(TelemetryError):
            reg.gauge("llc.fetches")
        with pytest.raises(TelemetryError):
            reg.histogram("llc.fetches")

    def test_bad_name_rejected(self):
        with pytest.raises(TelemetryError):
            StatsRegistry().counter("LLC.Fetches")

    def test_subtree(self):
        reg = StatsRegistry()
        reg.counter("llc.bank0.writes").inc(3)
        reg.counter("llc.bank1.writes").inc(5)
        reg.counter("cpt.lookups").inc()
        sub = reg.subtree("llc")
        assert set(sub) == {"llc.bank0.writes", "llc.bank1.writes"}

    def test_render_mentions_instruments(self):
        reg = StatsRegistry()
        reg.counter("cpt.lookups").inc(2)
        assert "cpt.lookups" in reg.render()


class TestEventTrace:
    def test_emit_and_filter(self):
        trace = EventTrace()
        trace.emit("llc.hit", ts=1.0, bank=3)
        trace.emit("llc.miss", ts=2.0, bank=4)
        hits = trace.events("llc.hit")
        assert len(hits) == 1 and hits[0].fields["bank"] == 3
        assert len(trace.events()) == 2

    def test_reserved_field_rejected(self):
        with pytest.raises(TelemetryError):
            EventTrace().emit("llc.hit", seq=1)

    def test_non_scalar_field_rejected(self):
        with pytest.raises(TelemetryError):
            EventTrace().emit("llc.hit", banks=[1, 2])

    def test_ring_buffer_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.emit("llc.hit", bank=i)
        assert trace.dropped == 2
        assert trace.emitted == 5
        assert [e.fields["bank"] for e in trace.events()] == [2, 3, 4]

    def test_clear_keeps_sequencing(self):
        trace = EventTrace()
        trace.emit("llc.hit")
        trace.clear()
        trace.emit("llc.miss")
        assert trace.events()[0].seq == 1

    def test_export_load_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.emit("llc.hit", ts=3.5, bank=2, critical=True)
        trace.emit("cpt.predict", core=0, critical=False)
        path = tmp_path / "t.jsonl"
        assert trace.export_jsonl(path) == 2
        events = load_events(path)
        assert [e.kind for e in events] == ["llc.hit", "cpt.predict"]
        assert events[0].ts == 3.5
        assert events[0].fields == {"bank": 2, "critical": True}
        assert events[1].ts is None

    def test_export_extra_stamps_and_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = EventTrace()
        trace.emit("llc.hit")
        trace.export_jsonl(path, extra={"scheme": "R-NUCA"})
        trace.clear()
        trace.emit("llc.miss")
        trace.export_jsonl(path, append=True, extra={"scheme": "Re-NUCA"})
        events = load_events(path)
        assert [e.fields["scheme"] for e in events] == ["R-NUCA", "Re-NUCA"]

    @pytest.mark.parametrize("record", [
        {"kind": "llc.hit", "ts": 1.0},            # missing seq
        {"seq": True, "kind": "llc.hit", "ts": 1},  # bool is not a seq
        {"seq": -1, "kind": "llc.hit", "ts": 1},    # negative seq
        {"seq": 0, "ts": 1.0},                      # missing kind
        {"seq": 0, "kind": "", "ts": 1.0},          # empty kind
        {"seq": 0, "kind": "llc.hit", "ts": "x"},   # non-numeric ts
        [1, 2, 3],                                  # not an object
    ])
    def test_load_rejects_bad_records(self, tmp_path, record):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TelemetryError):
            load_events(path)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TelemetryError):
            load_events(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError):
            load_events(tmp_path / "nope.jsonl")


class TestProfiler:
    def test_nested_paths_and_calls(self):
        prof = Profiler()
        with prof.phase("measure"):
            with prof.phase("cpt"):
                pass
            with prof.phase("cpt"):
                pass
        assert prof.calls() == {"measure": 1, "measure/cpt": 2}
        totals = prof.totals()
        assert totals["measure"] >= totals["measure/cpt"] >= 0.0

    def test_disabled_returns_shared_null_context(self):
        prof = Profiler(enabled=False)
        assert prof.phase("a") is prof.phase("b")
        with prof.phase("a"):
            pass
        assert prof.totals() == {}
        assert DISABLED_PROFILER.totals() == {}

    def test_bad_phase_name(self):
        with pytest.raises(TelemetryError):
            Profiler().phase("a/b")

    def test_reset_inside_phase_rejected(self):
        prof = Profiler()
        with prof.phase("outer"):
            with pytest.raises(TelemetryError):
                prof.reset()
        prof.reset()
        assert prof.totals() == {}

    def test_report_lists_phases(self):
        prof = Profiler()
        with prof.phase("measure"):
            pass
        report = prof.report()
        assert "measure" in report and "share" in report
        assert Profiler().report() == "(no phases recorded)"


class TestIntervalSeries:
    def make_series(self):
        series = IntervalSeries(interval_instructions=100)
        series.record(accesses=10, instructions=100, cycles=50.0,
                      sample={"llc.bank0.writes": 4, "llc.bank1.writes": 1})
        series.record(accesses=20, instructions=200, cycles=90.0,
                      sample={"llc.bank0.writes": 9, "llc.bank1.writes": 3})
        return series

    def test_series_and_deltas(self):
        series = self.make_series()
        assert series.series("llc.bank0.writes") == [4.0, 9.0]
        assert series.deltas("llc.bank0.writes") == [4.0, 5.0]

    def test_bank_write_matrix_ordering(self):
        series = IntervalSeries(interval_instructions=1)
        # bank10 must sort after bank2 numerically, not lexically
        series.record(accesses=1, instructions=1, cycles=1.0, sample={
            "llc.bank10.writes": 7, "llc.bank2.writes": 5, "cpt.lookups": 1,
        })
        assert series.bank_write_names() == [
            "llc.bank2.writes", "llc.bank10.writes",
        ]
        matrix = series.bank_write_matrix()
        assert matrix.shape == (1, 2)
        assert matrix[0].tolist() == [5.0, 7.0]

    def test_dict_round_trip(self):
        series = self.make_series()
        clone = IntervalSeries.from_dict(series.to_dict())
        assert clone.to_dict() == series.to_dict()
        assert clone.accesses == [10, 20]

    def test_from_dict_rejects_ragged(self):
        data = self.make_series().to_dict()
        data["accesses"].append(30)
        with pytest.raises(TelemetryError):
            IntervalSeries.from_dict(data)


class TestTelemetryHandle:
    def test_defaults_are_cheap(self):
        tel = Telemetry()
        assert tel.trace is None
        assert not tel.profiler.enabled
        assert tel.interval_instructions == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(TelemetryError):
            Telemetry(interval_instructions=-1)

    def test_summary_mentions_trace_and_registry(self):
        tel = Telemetry(trace=True, profile=True)
        tel.counter("llc.fetches").inc()
        tel.trace.emit("llc.hit")
        with tel.phase("measure"):
            pass
        summary = tel.summary()
        assert "llc.fetches" in summary
        assert "1 events retained" in summary
        assert "measure" in summary


class TestRunnerIntegration:
    """End-to-end behaviour of an instrumented run."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        config = baseline_config()
        workload = make_workloads(num_cores=config.num_cores, seed=5)[0]
        telemetry = Telemetry(
            trace=True, interval_instructions=20_000, profile=True,
        )
        result = run_workload(
            workload, "Re-NUCA", config, seed=5, n_instructions=6000,
            stage1=Stage1Cache(), telemetry=telemetry,
        )
        return result, telemetry

    def test_disabled_telemetry_changes_nothing(self):
        config = baseline_config()
        workload = make_workloads(num_cores=config.num_cores, seed=5)[0]
        stage1 = Stage1Cache()
        plain = run_workload(workload, "Re-NUCA", config, seed=5,
                             n_instructions=6000, stage1=stage1)
        tel = Telemetry(trace=True, interval_instructions=10_000, profile=True)
        traced = run_workload(workload, "Re-NUCA", config, seed=5,
                              n_instructions=6000, stage1=stage1,
                              telemetry=tel)
        np.testing.assert_array_equal(plain.per_core_ipc, traced.per_core_ipc)
        np.testing.assert_array_equal(plain.bank_writes, traced.bank_writes)
        assert plain.elapsed_cycles == traced.elapsed_cycles
        assert plain.intervals is None
        assert traced.intervals is not None

    def test_counters_match_result(self, instrumented):
        result, telemetry = instrumented
        snap = telemetry.registry.snapshot()
        assert snap["llc.fetches"] == result.llc_fetches
        assert snap["llc.fetch_hit_rate"] == pytest.approx(
            result.llc_fetch_hit_rate
        )
        assert snap["llc.total_writes"] == result.bank_writes.sum()

    def test_interval_series_closed_and_consistent(self, instrumented):
        result, _ = instrumented
        series = result.intervals
        assert len(series.accesses) >= 2
        assert series.accesses == sorted(series.accesses)
        matrix = series.bank_write_matrix()
        assert matrix.shape[1] == result.bank_writes.size
        # delta columns sum to the final per-bank write totals
        np.testing.assert_allclose(
            matrix.sum(axis=0), result.bank_writes.astype(float)
        )

    def test_trace_kinds_are_known(self, instrumented):
        _, telemetry = instrumented
        kinds = {event.kind for event in telemetry.trace.events()}
        assert kinds
        assert kinds <= KNOWN_KINDS

    def test_profiler_saw_all_phases(self, instrumented):
        _, telemetry = instrumented
        totals = telemetry.profiler.totals()
        assert {"stage1", "warm-up", "measure", "reduce"} <= set(totals)

    def test_trace_round_trip_through_file(self, instrumented, tmp_path):
        _, telemetry = instrumented
        path = tmp_path / "run.jsonl"
        count = telemetry.trace.export_jsonl(path)
        events = load_events(path)
        assert len(events) == count
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)


class TestStateMerging:
    """`export_state`/`merge_state`: the sweep engine's worker hand-off."""

    def test_counters_accumulate(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.counter("llc.hits").inc(3)
        b.counter("llc.hits").inc(4)
        b.counter("llc.misses").inc(1)
        a.merge_state(b.export_state())
        snap = a.snapshot()
        assert snap["llc.hits"] == 7
        assert snap["llc.misses"] == 1

    def test_gauges_take_merged_value(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.gauge("llc.occupancy").set(1.0)
        b.gauge("llc.occupancy").set(5.0)
        a.merge_state(b.export_state())
        assert a.snapshot()["llc.occupancy"] == 5.0

    def test_callback_gauge_exports_its_reading(self):
        b = StatsRegistry()
        b.gauge("jobs.stage1.entries", fn=lambda: 42.0)
        a = StatsRegistry()
        a.merge_state(b.export_state())
        assert a.snapshot()["jobs.stage1.entries"] == 42.0

    def test_histograms_merge_distributions(self):
        a, b = StatsRegistry(), StatsRegistry()
        for v in (1.0, 2.0, 3.0):
            a.histogram("llc.latency").observe(v)
        for v in (10.0, 20.0):
            b.histogram("llc.latency").observe(v)
        a.merge_state(b.export_state())
        merged = a.histogram("llc.latency").stats
        from repro.common.stats import RunningStats

        reference = RunningStats()
        for v in (1.0, 2.0, 3.0, 10.0, 20.0):
            reference.add(v)
        assert merged.count == 5
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.stddev == pytest.approx(reference.stddev)
        assert (merged.min, merged.max) == (1.0, 20.0)

    def test_merge_creates_missing_instruments(self):
        b = StatsRegistry()
        b.counter("x.c").inc()
        b.gauge("x.g").set(2.0)
        b.histogram("x.h").observe(1.0)
        a = StatsRegistry()
        a.merge_state(b.export_state())
        assert a.snapshot()["x.c"] == 1

    def test_kind_conflict_raises(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.gauge("x").set(1.0)
        b.counter("x").inc()
        with pytest.raises(TelemetryError):
            a.merge_state(b.export_state())

    def test_unknown_kind_raises(self):
        a = StatsRegistry()
        with pytest.raises(TelemetryError, match="unknown instrument kind"):
            a.merge_state({"x": ("sparkline", 1)})

    def test_state_is_plain_data(self):
        import pickle

        b = StatsRegistry()
        b.counter("x.c").inc()
        b.gauge("x.g", fn=lambda: 3.0)
        b.histogram("x.h").observe(2.0)
        state = pickle.loads(pickle.dumps(b.export_state()))
        a = StatsRegistry()
        a.merge_state(state)
        assert a.snapshot()["x.g"] == 3.0


class TestEventTraceMerge:
    def test_merge_preserves_and_stamps(self):
        worker = EventTrace()
        worker.emit("llc.hit", ts=1.0, bank=3)
        worker.emit("llc.miss", ts=2.0, bank=1, scheme="already-set")
        parent = EventTrace()
        merged = parent.merge(
            worker.events(), extra={"scheme": "S-NUCA", "workload": "WL1"}
        )
        assert merged == 2
        events = parent.events()
        assert [e.kind for e in events] == ["llc.hit", "llc.miss"]
        assert events[0].ts == 1.0
        assert events[0].fields["scheme"] == "S-NUCA"
        assert events[0].fields["workload"] == "WL1"
        # setdefault semantics: the worker's own stamp wins.
        assert events[1].fields["scheme"] == "already-set"

    def test_merge_assigns_fresh_sequence_numbers(self):
        parent = EventTrace()
        parent.emit("llc.hit", ts=0.0)
        worker = EventTrace()
        worker.emit("llc.miss", ts=5.0)
        parent.merge(worker.events())
        seqs = [e.seq for e in parent.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_merge_empty_is_noop(self):
        parent = EventTrace()
        assert parent.merge([]) == 0
        assert len(parent) == 0


class TestHistogramPercentiles:
    """Sliding-window p50/p90/p99 on histograms (see docs/OBSERVABILITY.md)."""

    def test_empty_histogram_has_no_percentile_keys(self):
        reg = StatsRegistry()
        reg.histogram("llc.latency")
        snap = reg.snapshot()
        assert "llc.latency.count" in snap
        assert not any(".p" in k for k in snap)

    def test_single_sample_collapses_all_levels(self):
        reg = StatsRegistry()
        reg.histogram("llc.latency").observe(42.0)
        snap = reg.snapshot()
        for level in (50, 90, 99):
            assert snap[f"llc.latency.p{level}"] == pytest.approx(42.0)

    def test_levels_are_ordered_on_a_spread(self):
        reg = StatsRegistry()
        h = reg.histogram("llc.latency")
        for v in range(1, 101):
            h.observe(float(v))
        snap = reg.snapshot()
        p50, p90, p99 = (snap[f"llc.latency.p{p}"] for p in (50, 90, 99))
        assert p50 < p90 < p99
        assert p50 == pytest.approx(50.5)

    def test_window_is_bounded(self):
        from repro.telemetry.registry import PERCENTILE_WINDOW

        reg = StatsRegistry()
        h = reg.histogram("llc.latency")
        for v in range(PERCENTILE_WINDOW + 500):
            h.observe(float(v))
        assert len(h.recent) == PERCENTILE_WINDOW
        # Early observations fell out of the window; the floor moved up.
        assert min(h.recent) == 500.0

    def test_merge_carries_recent_samples(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.histogram("llc.latency").observe(1.0)
        b.histogram("llc.latency").observe(99.0)
        a.merge_state(b.export_state())
        assert sorted(a.histogram("llc.latency").recent) == [1.0, 99.0]

    def test_merge_tolerates_state_without_recent(self):
        a, b = StatsRegistry(), StatsRegistry()
        b.histogram("llc.latency").observe(5.0)
        state = b.export_state()
        kind, payload = state["llc.latency"]
        state["llc.latency"] = (
            kind, {k: v for k, v in payload.items() if k != "recent"},
        )
        a.merge_state(state)
        assert a.histogram("llc.latency").stats.count == 1
        assert list(a.histogram("llc.latency").recent) == []


class TestProfilerStateMerge:
    """`Profiler.export_state`/`merge_state`: the worker hand-off."""

    def test_export_round_trip(self):
        worker = Profiler()
        with worker.phase("stage1"):
            pass
        with worker.phase("measure"), worker.phase("inner"):
            pass
        parent = Profiler()
        parent.merge_state(worker.export_state())
        assert parent.export_state() == worker.export_state()

    def test_merge_accumulates_calls_and_seconds(self):
        a, b = Profiler(), Profiler()
        for prof in (a, b):
            with prof.phase("measure"):
                pass
        a.merge_state(b.export_state())
        paths = {tuple(p): calls for p, calls, _s in a.export_state()}
        assert paths[("measure",)] == 2

    def test_state_survives_pickling(self):
        import pickle

        worker = Profiler()
        with worker.phase("reduce"):
            pass
        state = pickle.loads(pickle.dumps(worker.export_state()))
        parent = Profiler()
        parent.merge_state(state)
        assert "reduce" in parent.report()

    def test_report_includes_merged_phases(self):
        worker = Profiler()
        with worker.phase("stage1"):
            pass
        parent = Profiler()
        parent.merge_state(worker.export_state())
        assert "stage1" in parent.report()
