"""NUCA mapping policies: S-NUCA, R-NUCA, Private, Naive."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.noc.mesh import Mesh
from repro.nuca import make_policy
from repro.nuca.naive import NaivePolicy
from repro.nuca.private import PrivatePolicy
from repro.nuca.rnuca import RNucaPolicy, build_clusters, rotational_ids
from repro.nuca.snuca import SNucaPolicy
from repro.reram.wear import WearTracker


@pytest.fixture
def mesh(config):
    return Mesh(config.noc)


class TestSNuca:
    def test_bank_from_low_bits(self):
        policy = SNucaPolicy(16)
        assert policy.locate(0, 0x12345) == 0x5
        assert policy.place(3, 0x12345, critical=True) == 0x5

    def test_uniform_distribution(self):
        policy = SNucaPolicy(16)
        from collections import Counter

        counts = Counter(policy.locate(0, line) for line in range(1600))
        assert set(counts.values()) == {100}

    def test_requester_irrelevant(self):
        policy = SNucaPolicy(16)
        assert policy.locate(0, 77) == policy.locate(15, 77)

    def test_non_power_rejected(self):
        with pytest.raises(ConfigError):
            SNucaPolicy(12)


class TestRNuca:
    def test_cluster_size(self, mesh, config):
        clusters = build_clusters(mesh, 4)
        assert all(len(c) == 4 for c in clusters)

    def test_cluster_contains_self(self, mesh):
        for core, cluster in enumerate(build_clusters(mesh, 4)):
            assert core in cluster

    def test_interior_clusters_one_hop(self, mesh):
        clusters = build_clusters(mesh, 4)
        for core in (5, 6, 9, 10):  # interior nodes of the 4x4
            assert all(mesh.distance(core, b) <= 1 for b in clusters[core])

    def test_mapping_stays_in_cluster(self, mesh):
        policy = RNucaPolicy(mesh, 4)
        for core in range(16):
            for line in range(64):
                assert policy.bank_of(core, line) in policy.clusters[core]

    def test_mapping_uniform_within_cluster(self, mesh):
        policy = RNucaPolicy(mesh, 4)
        from collections import Counter

        counts = Counter(policy.bank_of(3, line) for line in range(400))
        assert set(counts.values()) == {100}

    def test_rotational_ids_distinct_in_tile(self, mesh):
        rids = rotational_ids(mesh, 4)
        # Every 2x2 tile must carry all four RIDs.
        for base_row in range(0, 4, 2):
            for base_col in range(0, 4, 2):
                tile = {
                    rids[mesh.node_at(base_col + dx, base_row + dy)]
                    for dx in (0, 1)
                    for dy in (0, 1)
                }
                assert tile == {0, 1, 2, 3}

    def test_paper_mapping_function(self, mesh):
        """DestinationBank = cluster[(Addr + RID + 1) & (n-1)]."""
        policy = RNucaPolicy(mesh, 4)
        core = 5
        rid = policy.rids[core]
        line = 0x123
        expected = policy.clusters[core][(line + rid + 1) & 3]
        assert policy.bank_of(core, line) == expected

    def test_locate_equals_place(self, mesh):
        policy = RNucaPolicy(mesh, 4)
        assert policy.locate(2, 99) == policy.place(2, 99, critical=False)

    def test_cluster_size_one(self, mesh):
        policy = RNucaPolicy(mesh, 1)
        for core in range(16):
            assert policy.bank_of(core, 1234) == core


class TestPrivate:
    def test_own_bank_only(self):
        policy = PrivatePolicy(16)
        assert policy.locate(7, 0xABC) == 7
        assert policy.place(7, 0xABC, critical=True) == 7

    def test_out_of_range_core(self):
        policy = PrivatePolicy(4)
        with pytest.raises(SimulationError):
            policy.locate(4, 0)


class TestNaive:
    @pytest.fixture
    def naive(self):
        wear = WearTracker(4)
        return NaivePolicy(4, wear, directory_penalty=100), wear

    def test_unknown_line_not_located(self, naive):
        policy, _ = naive
        assert policy.locate(0, 0x100) is None

    def test_lookup_node_is_static_home(self, naive):
        policy, _ = naive
        assert policy.lookup_node(0, 0x7) == 3  # 0x7 & 3

    def test_places_least_written_bank(self, naive):
        policy, wear = naive
        wear.record_write(0)
        wear.record_write(1)
        assert policy.place(0, 0x100, critical=False) == 2

    def test_directory_tracks_allocation(self, naive):
        policy, _ = naive
        policy.on_allocate(0, 0x100, 2, critical=False)
        assert policy.locate(1, 0x100) == 2

    def test_eviction_removes_entry(self, naive):
        policy, _ = naive
        policy.on_allocate(0, 0x100, 2, critical=False)
        policy.on_evict(0x100, 2, aux=None)
        assert policy.locate(0, 0x100) is None

    def test_eviction_mismatch_raises(self, naive):
        policy, _ = naive
        policy.on_allocate(0, 0x100, 2, critical=False)
        with pytest.raises(SimulationError):
            policy.on_evict(0x100, 3, aux=None)

    def test_eviction_of_untracked_raises(self, naive):
        policy, _ = naive
        with pytest.raises(SimulationError):
            policy.on_evict(0x200, 0, aux=None)

    def test_wear_levelling_loop(self, naive):
        """Placement + wear recording keeps banks within one write."""
        policy, wear = naive
        for line in range(400):
            bank = policy.place(0, line, critical=False)
            wear.record_write(bank)
            policy.on_allocate(0, line, bank, critical=False)
        writes = [wear.writes_of(b) for b in range(4)]
        assert max(writes) - min(writes) <= 1

    def test_lookup_penalty_exposed(self, naive):
        policy, _ = naive
        assert policy.lookup_penalty == 100

    def test_reset_clears_directory(self, naive):
        policy, _ = naive
        policy.on_allocate(0, 0x1, 0, critical=False)
        policy.reset()
        assert policy.directory_entries == 0


class TestFactory:
    def test_all_names_constructible(self, config, mesh):
        wear = WearTracker(config.num_banks)
        for name in ("S-NUCA", "R-NUCA", "Private", "Naive", "Re-NUCA"):
            policy = make_policy(name, config, mesh, wear)
            assert policy.name == name

    def test_unknown_name_rejected(self, config, mesh):
        with pytest.raises(ConfigError) as excinfo:
            make_policy("T-NUCA", config, mesh, WearTracker(config.num_banks))
        # The message names the offender and lists every valid scheme.
        message = str(excinfo.value)
        assert "T-NUCA" in message
        for known in ("S-NUCA", "R-NUCA", "Re-NUCA", "Private", "Naive"):
            assert known in message
