"""Enhanced TLB with Mapping Bit Vectors (Section IV-C / Figure 10)."""

import pytest

from repro.config import TlbConfig
from repro.core.tlb import EnhancedTlb


@pytest.fixture
def tlb():
    return EnhancedTlb(TlbConfig(entries=64, assoc=8))


def line_of(page: int, index: int) -> int:
    return page * 64 + index


class TestGeometry:
    def test_64_lines_per_page(self, tlb):
        assert tlb.lines_per_page == 64

    def test_page_and_index_extraction(self, tlb):
        line = line_of(5, 17)
        assert tlb.page_of(line) == 5
        assert tlb.line_index(line) == 17


class TestMappingBits:
    def test_default_bit_is_zero(self, tlb):
        assert tlb.mapping_bit(line_of(1, 0)) is False

    def test_set_and_read(self, tlb):
        line = line_of(1, 5)
        tlb.set_mapping_bit(line, True)
        assert tlb.mapping_bit(line) is True

    def test_bits_are_per_line(self, tlb):
        tlb.set_mapping_bit(line_of(1, 5), True)
        assert tlb.mapping_bit(line_of(1, 6)) is False
        assert tlb.mapping_bit(line_of(2, 5)) is False

    def test_clear_on_eviction(self, tlb):
        line = line_of(1, 5)
        tlb.set_mapping_bit(line, True)
        tlb.clear_mapping_bit(line)
        assert tlb.mapping_bit(line) is False

    def test_set_false_clears(self, tlb):
        line = line_of(3, 2)
        tlb.set_mapping_bit(line, True)
        tlb.set_mapping_bit(line, False)
        assert tlb.mapping_bit(line) is False

    def test_all_64_bits_independent(self, tlb):
        page = 9
        for i in range(0, 64, 2):
            tlb.set_mapping_bit(line_of(page, i), True)
        for i in range(64):
            assert tlb.mapping_bit(line_of(page, i)) is (i % 2 == 0)
        assert tlb.mbv_of_page(page) == int("01" * 32, 2)


class TestEvictionAndBackingStore:
    def fill_set(self, tlb, set_idx, count):
        """Touch ``count`` distinct pages mapping to one TLB set."""
        pages = [set_idx + k * tlb.config.num_sets for k in range(count)]
        for page in pages:
            tlb.set_mapping_bit(line_of(page, 0), True)
        return pages

    def test_mbv_survives_tlb_eviction(self, tlb):
        pages = self.fill_set(tlb, set_idx=0, count=9)  # 8-way set overflows
        # The first page's entry was evicted; its MBV must be restored.
        assert tlb.mapping_bit(line_of(pages[0], 0)) is True
        assert tlb.stats.mbv_writebacks >= 1
        assert tlb.stats.mbv_restores >= 1

    def test_zero_mbv_not_written_back(self, tlb):
        # Pages with all-zero vectors cost nothing on eviction.
        for k in range(9):
            page = k * tlb.config.num_sets
            tlb.mapping_bit(line_of(page, 0))  # touch (bit stays 0)
        assert tlb.stats.mbv_writebacks == 0

    def test_clear_reaches_backing_store(self, tlb):
        pages = self.fill_set(tlb, set_idx=0, count=9)
        victim = pages[0]
        tlb.clear_mapping_bit(line_of(victim, 0))  # entry not resident
        assert tlb.mapping_bit(line_of(victim, 0)) is False

    def test_hit_rate_accounting(self, tlb):
        line = line_of(4, 0)
        tlb.mapping_bit(line)
        tlb.mapping_bit(line)
        assert tlb.stats.lookups == 2
        assert tlb.stats.hits == 1
        assert tlb.stats.hit_rate == pytest.approx(0.5)

    def test_invariant_checker(self, tlb):
        self.fill_set(tlb, set_idx=0, count=12)
        tlb.check_invariants()

    def test_resident_pages_bounded_by_capacity(self, tlb):
        for page in range(200):
            tlb.mapping_bit(line_of(page, 0))
        assert len(tlb.resident_pages()) <= tlb.config.entries


class TestStorageMath:
    def test_paper_overhead_figure(self):
        """64 entries x 64 bits = 512 B per instance (Section IV-C)."""
        tlb = EnhancedTlb(TlbConfig(entries=64, assoc=8))
        bits = tlb.config.entries * tlb.lines_per_page
        assert bits // 8 == 512
