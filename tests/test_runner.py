"""Stage-2 runner: merging, workload execution, matrices."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.config import baseline_config
from repro.sim.calibrate import calibrated_base_cpi, config_signature
from repro.sim.metrics import MatrixResult
from repro.sim.runner import Stage1Cache, _merge_streams, run_matrix, run_workload
from repro.trace.workloads import Workload

INSTR = 40_000

LIGHT_MIX = Workload(
    "light16",
    (
        "hmmer", "namd", "povray", "dealII",
        "astar", "sjeng", "h264ref", "gromacs",
        "bzip2", "soplex", "sphinx3", "GemsFDTD",
        "milc", "leslie3d", "omnetpp", "xalancbmk",
    ),
)


@pytest.fixture(scope="module")
def stage1():
    return Stage1Cache()


@pytest.fixture(scope="module")
def snuca_result(stage1):
    return run_workload(LIGHT_MIX, "S-NUCA", baseline_config(), seed=2,
                        n_instructions=INSTR, stage1=stage1)


class TestStage1Cache:
    def test_memoises(self, stage1):
        cfg = baseline_config()
        before = len(stage1)
        a = stage1.get("hmmer", cfg, seed=2, n_instructions=INSTR)
        mid = len(stage1)
        b = stage1.get("hmmer", cfg, seed=2, n_instructions=INSTR)
        assert b is a
        assert len(stage1) == mid >= before

    def test_different_budget_different_entry(self, stage1):
        cfg = baseline_config()
        a = stage1.get("hmmer", cfg, seed=2, n_instructions=INSTR)
        b = stage1.get("hmmer", cfg, seed=2, n_instructions=INSTR // 2)
        assert a is not b

    def test_config_signature_distinguishes_variants(self):
        from repro.config import sensitivity_l2_128k

        assert config_signature(baseline_config()) != config_signature(
            sensitivity_l2_128k()
        )


class TestCalibration:
    def test_base_cpi_within_clamp(self):
        cpi = calibrated_base_cpi("hmmer", baseline_config(), seed=2)
        assert 0.25 <= cpi <= 20.0

    def test_calibration_improves_ipc_match(self, stage1):
        cfg = baseline_config()
        result = stage1.get("hmmer", cfg, seed=2, n_instructions=INSTR)
        from repro.trace.profiles import get_profile

        target = get_profile("hmmer").ipc
        assert result.ipc == pytest.approx(target, rel=0.3)

    def test_memoised(self):
        cfg = baseline_config()
        assert calibrated_base_cpi("namd", cfg, seed=2) == calibrated_base_cpi(
            "namd", cfg, seed=2
        )


class TestMergeStreams:
    def test_sorted_by_time(self, stage1):
        cfg = baseline_config()
        results = [stage1.get(a, cfg, seed=2, n_instructions=INSTR)
                   for a in ("hmmer", "milc")]
        merged = _merge_streams(results)
        assert np.all(np.diff(merged.ts) >= 0)

    def test_replay_extends_fast_cores(self, stage1):
        cfg = baseline_config()
        results = [stage1.get(a, cfg, seed=2, n_instructions=INSTR)
                   for a in ("hmmer", "milc")]  # hmmer much faster
        merged = _merge_streams(results)
        fast_records = int(np.count_nonzero(merged.core == 0))
        assert fast_records > len(results[0].stream)  # replayed

    def test_measured_slices_align_with_streams(self, stage1):
        cfg = baseline_config()
        results = [stage1.get(a, cfg, seed=2, n_instructions=INSTR)
                   for a in ("hmmer", "milc")]
        merged = _merge_streams(results)
        for core, result in enumerate(results):
            lo, hi = merged.measured_slices[core]
            assert hi - lo == len(result.stream)

    def test_address_spaces_disjoint(self, stage1):
        cfg = baseline_config()
        results = [stage1.get(a, cfg, seed=2, n_instructions=INSTR)
                   for a in ("hmmer", "hmmer")]
        merged = _merge_streams(results)
        lines0 = set(merged.line[merged.core == 0].tolist())
        lines1 = set(merged.line[merged.core == 1].tolist())
        assert not lines0 & lines1


class TestRunWorkload:
    def test_result_shape(self, snuca_result):
        assert snuca_result.scheme == "S-NUCA"
        assert len(snuca_result.per_core_ipc) == 16
        assert len(snuca_result.bank_lifetimes) == 16
        assert snuca_result.elapsed_cycles > 0

    def test_ipc_is_throughput_sum(self, snuca_result):
        assert snuca_result.ipc == pytest.approx(
            float(snuca_result.per_core_ipc.sum())
        )

    def test_bank_writes_positive(self, snuca_result):
        assert snuca_result.bank_writes.sum() > 0

    def test_lifetimes_positive(self, snuca_result):
        assert np.all(snuca_result.bank_lifetimes > 0)
        assert snuca_result.min_lifetime == snuca_result.bank_lifetimes.min()

    def test_wrong_core_count_rejected(self, stage1):
        small = Workload("two", ("hmmer", "milc"))
        with pytest.raises(ReproError) as excinfo:
            run_workload(small, "S-NUCA", baseline_config(), stage1=stage1)
        # The message states both counts so the mismatch is actionable.
        message = str(excinfo.value)
        assert "two" in message and "2" in message and "16" in message

    def test_snuca_wear_near_uniform(self, snuca_result):
        writes = snuca_result.bank_writes
        assert writes.std() / writes.mean() < 0.2


class TestRunMatrix:
    def test_matrix_accessors(self, stage1):
        cfg = baseline_config()
        matrix = run_matrix(
            [LIGHT_MIX], ("S-NUCA", "Private"), cfg,
            seed=2, n_instructions=INSTR, stage1=stage1,
        )
        assert matrix.get("light16", "S-NUCA").scheme == "S-NUCA"
        improvement = matrix.ipc_improvement_over("Private")
        assert "light16" in improvement
        summary = matrix.lifetime_summary_of("Private")
        assert summary["hmean_per_bank"].shape == (16,)
        with pytest.raises(ReproError):
            matrix.get("light16", "R-NUCA")

    def test_progress_callback(self, stage1):
        calls = []
        run_matrix(
            [LIGHT_MIX], ("S-NUCA",), baseline_config(),
            seed=2, n_instructions=INSTR, stage1=stage1,
            progress=lambda wl, s: calls.append((wl, s)),
        )
        assert calls == [("light16", "S-NUCA")]


class TestMatrixMetrics:
    def test_tradeoff_points(self, stage1):
        matrix = run_matrix(
            [LIGHT_MIX], ("S-NUCA", "Private"), baseline_config(),
            seed=2, n_instructions=INSTR, stage1=stage1,
        )
        points = matrix.tradeoff_points()
        assert set(points) == {"S-NUCA", "Private"}
        for ipc, life in points.values():
            assert ipc > 0 and life > 0

    def test_empty_matrix_raises(self):
        matrix = MatrixResult(label="x", schemes=("S-NUCA",), workloads=("WL1",))
        with pytest.raises(ReproError):
            matrix.get("WL1", "S-NUCA")


class TestStage1Lru:
    """The stage-1 memo is a bounded LRU with observable occupancy."""

    @pytest.fixture
    def flat_cpi(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sim.runner.calibrated_base_cpi",
            lambda app, config, seed=None: 1.0,
        )

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ReproError, match="at least one entry"):
            Stage1Cache(max_entries=0)

    def test_evicts_least_recently_used(self, flat_cpi):
        cfg = baseline_config()
        cache = Stage1Cache(max_entries=2)
        a = cache.get("hmmer", cfg, seed=2, n_instructions=4_000)
        cache.get("namd", cfg, seed=2, n_instructions=4_000)
        cache.get("povray", cfg, seed=2, n_instructions=4_000)
        assert len(cache) == 2
        assert cache.evictions == 1
        # "hmmer" was the LRU entry; refetching recomputes it.
        assert cache.get("hmmer", cfg, seed=2, n_instructions=4_000) is not a

    def test_hit_refreshes_recency(self, flat_cpi):
        cfg = baseline_config()
        cache = Stage1Cache(max_entries=2)
        a = cache.get("hmmer", cfg, seed=2, n_instructions=4_000)
        cache.get("namd", cfg, seed=2, n_instructions=4_000)
        cache.get("hmmer", cfg, seed=2, n_instructions=4_000)  # touch
        cache.get("povray", cfg, seed=2, n_instructions=4_000)  # evicts namd
        assert cache.get("hmmer", cfg, seed=2, n_instructions=4_000) is a
        assert cache.evictions == 1

    def test_clear_keeps_eviction_total(self, flat_cpi):
        cfg = baseline_config()
        cache = Stage1Cache(max_entries=1)
        cache.get("hmmer", cfg, seed=2, n_instructions=4_000)
        cache.get("namd", cfg, seed=2, n_instructions=4_000)
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 1

    def test_bind_telemetry_gauges(self, flat_cpi):
        from repro.telemetry import StatsRegistry

        cfg = baseline_config()
        cache = Stage1Cache(max_entries=4)
        registry = StatsRegistry()
        cache.bind_telemetry(registry)
        assert registry.snapshot()["jobs.stage1.entries"] == 0.0
        cache.get("hmmer", cfg, seed=2, n_instructions=4_000)
        snap = registry.snapshot()
        assert snap["jobs.stage1.entries"] == 1.0
        assert snap["jobs.stage1.evictions"] == 0.0
