"""Mesh NoC: coordinates, XY routing, latency, controllers, accounting."""

import pytest

from repro.common.errors import ConfigError
from repro.config import NocConfig
from repro.noc.mesh import Mesh


@pytest.fixture
def mesh():
    return Mesh(NocConfig(mesh_cols=4, mesh_rows=4, hop_cycles=2))


class TestTopology:
    def test_coords_round_trip(self, mesh):
        for node in range(16):
            col, row = mesh.coords(node)
            assert mesh.node_at(col, row) == node

    def test_distance_is_manhattan(self, mesh):
        assert mesh.distance(0, 15) == 6  # (0,0) -> (3,3)
        assert mesh.distance(5, 6) == 1
        assert mesh.distance(7, 7) == 0

    def test_distance_symmetric(self, mesh):
        for a in range(16):
            for b in range(16):
                assert mesh.distance(a, b) == mesh.distance(b, a)

    def test_neighbors_of_corner(self, mesh):
        assert sorted(mesh.neighbors(0)) == [1, 4]

    def test_neighbors_of_center(self, mesh):
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    def test_out_of_range_rejected(self, mesh):
        with pytest.raises(ConfigError):
            mesh.distance(0, 16)


class TestRouting:
    def test_route_endpoints(self, mesh):
        path = mesh.route(0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_route_length_matches_distance(self, mesh):
        for a in range(16):
            for b in range(16):
                assert len(mesh.route(a, b)) == mesh.distance(a, b) + 1

    def test_route_is_x_first(self, mesh):
        # 0 (0,0) -> 10 (2,2): X corrected first -> 0,1,2,6,10
        assert mesh.route(0, 10) == [0, 1, 2, 6, 10]

    def test_route_steps_are_adjacent(self, mesh):
        path = mesh.route(3, 12)
        for a, b in zip(path, path[1:]):
            assert mesh.distance(a, b) == 1


class TestLatency:
    def test_one_way(self, mesh):
        assert mesh.latency(0, 15) == 12  # 6 hops * 2 cycles

    def test_send_returns_latency_and_counts(self, mesh):
        lat = mesh.send(0, 3)
        assert lat == 6
        assert mesh.stats.messages == 1
        assert mesh.stats.total_hops == 3

    def test_round_trip(self, mesh):
        assert mesh.round_trip_latency(0, 3) == 12
        assert mesh.stats.messages == 2

    def test_mean_hops(self, mesh):
        mesh.send(0, 1)
        mesh.send(0, 3)
        assert mesh.stats.mean_hops == pytest.approx(2.0)

    def test_reset_stats(self, mesh):
        mesh.send(0, 5)
        mesh.reset_stats()
        assert mesh.stats.messages == 0


class TestMemoryControllers:
    def test_controllers_at_corners(self, mesh):
        assert mesh.memory_controllers == (0, 3, 12, 15)

    def test_nearest_controller(self, mesh):
        assert mesh.nearest_memory_controller(0) == 0
        assert mesh.nearest_memory_controller(5) == 0  # ties -> lowest id
        assert mesh.nearest_memory_controller(11) == 15

    def test_address_interleaved_controller_uniform(self, mesh):
        from collections import Counter

        counts = Counter(mesh.memory_controller_of(line << 4) for line in range(64))
        assert set(counts.values()) == {16}

    def test_miss_path_latency_counts_three_legs(self, mesh):
        mesh.reset_stats()
        lat = mesh.miss_path_latency(5, 6)
        assert mesh.stats.messages == 3
        assert lat == mesh.latency(5, 6) + mesh.latency(
            6, mesh.nearest_memory_controller(6)
        ) + mesh.latency(mesh.nearest_memory_controller(6), 5)


class TestLinkTracking:
    def test_links_counted_when_enabled(self):
        mesh = Mesh(NocConfig(hop_cycles=1), track_links=True)
        mesh.send(0, 3)  # 0->1->2->3, east direction
        assert mesh.link_traffic[0, 0] == 1
        assert mesh.link_traffic[1, 0] == 1
        assert mesh.link_traffic[2, 0] == 1

    def test_links_not_counted_by_default(self, mesh):
        mesh.send(0, 3)
        assert mesh.link_traffic.sum() == 0


class TestNonSquare:
    def test_2x8_mesh(self):
        mesh = Mesh(NocConfig(mesh_cols=8, mesh_rows=2, hop_cycles=1))
        assert mesh.num_nodes == 16
        assert mesh.distance(0, 15) == 8  # (0,0)->(7,1)
