"""Fault models, injector, and graceful LLC degradation."""

import numpy as np
import pytest

from repro.cache.cache import Cache
from repro.common.errors import ConfigError, SimulationError
from repro.config import FaultConfig, baseline_config
from repro.faults import (
    BankFailureSchedule,
    FaultInjector,
    StuckAtFaultModel,
    TransientFaultModel,
)
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.reram.wear import WearSnapshot, WearTracker


def build_llc(scheme, fault_config=None, *, seed=7, config=None):
    config = config or baseline_config()
    mesh = Mesh(config.noc)
    memory = MainMemory(config.memory)
    wear = WearTracker(config.num_banks, track_lines=True)
    policy = make_policy(scheme, config, mesh, wear)
    injector = (
        FaultInjector(config, fault_config, seed=seed)
        if fault_config is not None
        else None
    )
    return NucaLLC(config, policy, mesh, memory, wear, faults=injector)


def flat_snapshot(num_banks, writes=1000):
    return WearSnapshot(
        bank_writes=np.full(num_banks, writes, dtype=np.int64),
        line_writes=tuple({} for _ in range(num_banks)),
    )


class TestFaultConfig:
    def test_defaults_inactive(self):
        assert not FaultConfig().active

    def test_age_activates(self):
        assert FaultConfig(age_fraction=0.5).active

    def test_transient_activates(self):
        assert FaultConfig(transient_rate=1e-6).active

    def test_unreached_bank_failure_inactive(self):
        cfg = FaultConfig(bank_failures=((3, 0.9),))
        assert not cfg.active
        assert cfg.failed_banks() == frozenset()

    def test_reached_bank_failure_active(self):
        cfg = FaultConfig(age_fraction=1.0, bank_failures=((3, 0.9),))
        assert cfg.active
        assert cfg.failed_banks() == frozenset({3})

    def test_negative_age_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(age_fraction=-0.1)

    def test_bad_transient_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(transient_rate=1.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(remap_penalty_cycles=-1)

    def test_malformed_failure_entry_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(bank_failures=((1, 2, 3),))
        with pytest.raises(ConfigError):
            FaultConfig(bank_failures=((-1, 0.5),))


class TestStuckAtFaultModel:
    def test_thresholds_deterministic(self):
        a = StuckAtFaultModel(16, 4, wear_spread=0.5, seed=3)
        b = StuckAtFaultModel(16, 4, wear_spread=0.5, seed=3)
        assert np.array_equal(a.thresholds(2), b.thresholds(2))

    def test_banks_draw_independent_thresholds(self):
        model = StuckAtFaultModel(16, 4, wear_spread=0.5, seed=3)
        assert not np.array_equal(model.thresholds(0), model.thresholds(1))

    def test_thresholds_bounded_by_spread(self):
        model = StuckAtFaultModel(64, 8, wear_spread=0.3, seed=1)
        t = model.thresholds(0)
        assert t.shape == (64, 8)
        assert t.min() >= 0.3 and t.max() <= 1.0

    def test_no_deaths_below_spread(self):
        model = StuckAtFaultModel(16, 4, wear_spread=0.5, seed=3)
        assert model.dead_ways(0, 0.25).sum() == 0

    def test_everything_dead_at_full_consumption(self):
        model = StuckAtFaultModel(16, 4, wear_spread=0.5, seed=3)
        assert model.dead_ways(0, 1.0).sum() == 16 * 4

    def test_dead_ways_monotonic_in_consumption(self):
        model = StuckAtFaultModel(32, 8, wear_spread=0.4, seed=5)
        counts = [model.dead_ways(0, c).sum() for c in (0.3, 0.5, 0.7, 0.9, 1.0)]
        assert counts == sorted(counts)

    def test_per_set_consumption_vector(self):
        model = StuckAtFaultModel(4, 4, wear_spread=0.5, seed=9)
        dead = model.dead_ways(0, np.array([0.0, 0.0, 1.0, 1.0]))
        assert dead[0] == dead[1] == 0
        assert dead[2] == dead[3] == 4

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            StuckAtFaultModel(0, 4)
        with pytest.raises(ConfigError):
            StuckAtFaultModel(4, 4, wear_spread=0.0)

    def test_bad_vector_shape_rejected(self):
        model = StuckAtFaultModel(4, 2, seed=1)
        with pytest.raises(ConfigError):
            model.dead_ways(0, np.zeros(5))


class TestTransientFaultModel:
    def test_zero_rate_never_faults(self):
        model = TransientFaultModel(0.0, seed=1)
        assert not any(model.query() for _ in range(1000))
        assert model.faults == 0

    def test_stream_deterministic(self):
        a = TransientFaultModel(0.05, seed=11)
        b = TransientFaultModel(0.05, seed=11)
        assert [a.query() for _ in range(500)] == [b.query() for _ in range(500)]

    def test_observed_rate_tracks_configured(self):
        model = TransientFaultModel(0.1, seed=2)
        n = 20_000
        for _ in range(n):
            model.query()
        assert model.faults / n == pytest.approx(0.1, rel=0.15)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            TransientFaultModel(1.0)
        with pytest.raises(ConfigError):
            TransientFaultModel(-0.1)


class TestBankFailureSchedule:
    def test_failed_at_respects_ages(self):
        sched = BankFailureSchedule(((2, 0.5), (7, 0.9)), num_banks=16)
        assert sched.failed_at(0.4) == frozenset()
        assert sched.failed_at(0.5) == frozenset({2})
        assert sched.failed_at(1.0) == frozenset({2, 7})

    def test_out_of_range_bank_rejected(self):
        with pytest.raises(ConfigError):
            BankFailureSchedule(((16, 0.0),), num_banks=16)


class TestFaultInjector:
    def make(self, fault_config, *, seed=4):
        return FaultInjector(baseline_config(), fault_config, seed=seed)

    def test_inert_before_derive(self):
        inj = self.make(FaultConfig(age_fraction=1.0))
        assert not inj.derived
        assert not inj.is_bank_dead(0)
        assert inj.effective_capacity_fraction() == 1.0

    def test_snapshot_bank_mismatch_rejected(self):
        inj = self.make(FaultConfig(age_fraction=0.5))
        with pytest.raises(ConfigError):
            inj.derive(flat_snapshot(4))

    def test_derivation_deterministic(self):
        a = self.make(FaultConfig(age_fraction=0.9))
        b = self.make(FaultConfig(age_fraction=0.9))
        snap = flat_snapshot(a.num_banks)
        a.derive(snap)
        b.derive(snap)
        for bank in range(a.num_banks):
            assert np.array_equal(a.dead_ways_of(bank), b.dead_ways_of(bank))
        assert a.dead_banks == b.dead_banks

    def test_capacity_shrinks_with_age(self):
        caps = []
        for age in (0.3, 0.7, 1.0):
            inj = self.make(FaultConfig(age_fraction=age))
            inj.derive(flat_snapshot(inj.num_banks))
            caps.append(inj.effective_capacity_fraction())
        assert caps[0] > caps[1] > caps[2]
        assert caps[2] == pytest.approx(0.0)

    def test_hot_banks_age_faster(self):
        inj = self.make(FaultConfig(age_fraction=0.8))
        writes = np.full(inj.num_banks, 100, dtype=np.int64)
        writes[3] = 100 * inj.num_banks  # bank 3 absorbs most traffic
        snap = WearSnapshot(
            bank_writes=writes,
            line_writes=tuple({} for _ in range(inj.num_banks)),
        )
        inj.derive(snap)
        assert inj.consumed[3] > inj.consumed[0]
        assert inj.dead_ways_of(3).sum() > inj.dead_ways_of(0).sum()

    def test_scheduled_failure_kills_bank(self):
        inj = self.make(FaultConfig(age_fraction=0.5, bank_failures=((5, 0.5),)))
        inj.derive(flat_snapshot(inj.num_banks))
        assert inj.is_bank_dead(5)
        assert inj.dead_ways_of(5).sum() == inj.num_sets * inj.assoc

    def test_remap_avoids_dead_banks_deterministically(self):
        inj = self.make(FaultConfig(age_fraction=0.5, bank_failures=((5, 0.0),)))
        inj.derive(flat_snapshot(inj.num_banks))
        targets = {inj.remap_bank(5, line) for line in range(256)}
        assert 5 not in targets
        assert len(targets) > 1  # traffic spreads over survivors
        assert inj.remap_bank(5, 77) == inj.remap_bank(5, 77)

    def test_no_survivors_remap_is_none(self):
        failures = tuple((b, 0.0) for b in range(16))
        inj = self.make(FaultConfig(age_fraction=0.1, bank_failures=failures))
        inj.derive(flat_snapshot(inj.num_banks))
        assert inj.remap_bank(0, 123) is None
        assert inj.effective_capacity_fraction() == 0.0

    def test_bad_bank_query_rejected(self):
        inj = self.make(FaultConfig(age_fraction=0.1))
        with pytest.raises(SimulationError):
            inj.dead_ways_of(99)


class TestCacheWayLimits:
    def test_zero_limit_skips_fill(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        cache.set_way_limits([0, 2, 2, 2])
        res = cache.allocate(0)  # line 0 -> set 0
        assert not res.filled and not cache.contains(0)
        assert cache.stats.fills == 0
        assert cache.allocate(1).filled  # set 1 unaffected

    def test_limit_caps_occupancy(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        cache.set_way_limits([1, 2, 2, 2])
        cache.allocate(0)
        res = cache.allocate(4)  # same set: must evict line 0 at limit 1
        assert res.filled and res.victim_line == 0
        assert cache.occupancy() == 1

    def test_shrinking_drains_lru_first(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        cache.allocate(0, dirty=True, aux="a")
        cache.allocate(4)
        drained = cache.set_way_limits([1, 2, 2, 2])
        assert drained == [(0, True, "a")]  # LRU line left first
        assert cache.contains(4)

    def test_live_frames_and_limits(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        assert cache.live_frames() == 8
        cache.set_way_limits([0, 1, 2, 2])
        assert cache.live_frames() == 5
        assert cache.way_limit_of(0) == 0
        assert cache.way_limit_of(3) == 2
        cache.set_way_limits(None)
        assert cache.live_frames() == 8

    def test_bad_limits_rejected(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        with pytest.raises(ConfigError):
            cache.set_way_limits([1, 1])  # wrong length
        with pytest.raises(ConfigError):
            cache.set_way_limits([3, 0, 0, 0])  # above assoc

    def test_rotation_with_limits_rejected(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        cache.set_way_limits([1, 1, 1, 1])
        with pytest.raises(ConfigError):
            cache.rotate_sets(1)

    def test_drain_preserves_aux(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        cache.allocate(0, dirty=True, aux=(1, True))
        cache.allocate(5, aux=(2, False))
        drained = dict((line, (dirty, aux)) for line, dirty, aux in cache.drain())
        assert drained[0] == (True, (1, True))
        assert drained[5] == (False, (2, False))
        assert cache.occupancy() == 0


class TestLlcDegradation:
    SCHEMES = ("S-NUCA", "R-NUCA", "Re-NUCA")

    def warm(self, llc, n=200):
        # Knuth-hash the index so cores and lines decorrelate (a regular
        # stride can systematically alias with R-NUCA's rotational
        # interleave and miss entire banks).
        for k in range(n):
            h = (k * 2654435761) & 0xFFFFF
            llc.fetch((h >> 12) % 16, h, float(k), False)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_dead_bank_remaps_and_serves(self, scheme):
        llc = build_llc(scheme, FaultConfig(age_fraction=0.1,
                                            bank_failures=((0, 0.0),)))
        self.warm(llc)
        llc.apply_faults()
        assert llc.dead_bank_count == 1
        assert llc.banks[0].cache.occupancy() == 0
        self.warm(llc)  # traffic to the dead bank must keep working
        assert llc.stats.remap_traffic > 0
        assert llc.banks[0].cache.occupancy() == 0
        assert llc.effective_capacity_fraction() < 1.0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_total_failure_degrades_to_passthrough(self, scheme):
        failures = tuple((b, 0.0) for b in range(16))
        llc = build_llc(scheme, FaultConfig(age_fraction=0.1,
                                            bank_failures=failures))
        self.warm(llc)
        llc.apply_faults()
        assert llc.effective_capacity_fraction() == 0.0
        lat, hit = llc.fetch(0, 0x999, 1.0, False)
        assert not hit and lat > 0
        llc.writeback(0, 0x999, 2.0)  # dirty data must reach memory
        assert llc.stats.fills_skipped > 0
        assert llc.stats.memory_writes > 0
        assert llc.occupancy() == 0

    def test_worn_frames_reduce_capacity(self):
        llc = build_llc("S-NUCA", FaultConfig(age_fraction=0.9))
        self.warm(llc, n=2000)
        llc.apply_faults()
        assert 0.0 < llc.effective_capacity_fraction() < 1.0
        self.warm(llc, n=500)  # degraded cache still serves traffic

    def test_transient_fault_invalidates_hit(self):
        llc = build_llc("S-NUCA", FaultConfig(transient_rate=0.99))
        llc.apply_faults()
        llc.fetch(0, 0x40, 0.0, False)
        for k in range(20):
            llc.fetch(0, 0x40, 10.0 * (k + 1), False)
        assert llc.stats.transient_faults > 0
        # Each faulted read was re-served from memory, not crashed on.
        assert llc.stats.memory_reads >= 1 + llc.stats.transient_faults

    def test_apply_faults_without_injector_is_noop(self):
        llc = build_llc("S-NUCA")
        self.warm(llc)
        before = llc.occupancy()
        llc.apply_faults()
        assert llc.occupancy() == before
        assert llc.dead_bank_count == 0

    def test_dirty_lines_drained_to_memory(self):
        llc = build_llc("S-NUCA", FaultConfig(age_fraction=0.1,
                                              bank_failures=((0, 0.0),)))
        llc.writeback(0, 0x100, 0.0)  # line 0x100 -> bank 0, dirty
        assert llc.banks[0].cache.is_dirty(0x100)
        llc.apply_faults()
        assert llc.stats.memory_writes >= 1

    def test_same_seed_same_faults(self):
        results = []
        for _ in range(2):
            llc = build_llc("Re-NUCA", FaultConfig(age_fraction=0.85), seed=13)
            self.warm(llc, n=1500)
            llc.apply_faults()
            results.append((
                llc.effective_capacity_fraction(),
                sorted(llc.faults.dead_banks),
                [llc.faults.dead_ways_of(b).sum() for b in range(16)],
            ))
        assert results[0] == results[1]
