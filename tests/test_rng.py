"""Deterministic RNG derivation."""

from repro.common.rng import derive_rng, root_sequence


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(7, "trace", "mcf", 0)
        b = derive_rng(7, "trace", "mcf", 0)
        assert a.integers(0, 1 << 30, 16).tolist() == b.integers(0, 1 << 30, 16).tolist()

    def test_different_seed_different_stream(self):
        a = derive_rng(7, "trace", "mcf")
        b = derive_rng(8, "trace", "mcf")
        assert a.integers(0, 1 << 30, 16).tolist() != b.integers(0, 1 << 30, 16).tolist()

    def test_different_path_different_stream(self):
        a = derive_rng(7, "trace", "mcf")
        b = derive_rng(7, "trace", "lbm")
        assert a.integers(0, 1 << 30, 16).tolist() != b.integers(0, 1 << 30, 16).tolist()

    def test_string_hash_stable_across_processes(self):
        # The fold must not depend on PYTHONHASHSEED: check a fixed value.
        a = derive_rng(0, "x")
        b = derive_rng(0, "x")
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_none_seed_uses_default(self):
        a = derive_rng(None, "p")
        b = derive_rng(None, "p")
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_root_sequence_deterministic(self):
        assert root_sequence(5).entropy == root_sequence(5).entropy
