"""Experiment drivers and report rendering (small-scale runs)."""

import pytest

from repro.common.errors import ConfigError
from repro.config import baseline_config
from repro.experiments.criticality import run_criticality_sweep
from repro.experiments.fig5 import run_fig5
from repro.experiments.main_result import MOTIVATION_SCHEMES, run_main_matrix
from repro.experiments.report import (
    format_table,
    render_fig2,
    render_ipc_improvements,
    render_lifetime_bars,
    render_percent_map,
    render_table2,
    render_table3,
    render_threshold_sweep,
    render_tradeoff,
)
from repro.experiments.sensitivity import run_sensitivity, table3
from repro.experiments.table2 import run_table2
from repro.sim.runner import Stage1Cache

INSTR = 30_000
APPS = ("hmmer", "milc", "astar")


@pytest.fixture(scope="module")
def stage1():
    return Stage1Cache()


class TestTable2:
    def test_rows_carry_targets(self, stage1):
        rows = run_table2(apps=APPS, seed=5, n_instructions=INSTR, stage1=stage1)
        assert [r.app for r in rows] == list(APPS)
        for row in rows:
            assert row.target_ipc > 0
            assert row.wpki >= 0
        text = render_table2(rows)
        assert "hmmer" in text and "WPKI" in text

    def test_fig2_sorted_descending(self, stage1):
        rows = run_table2(apps=APPS, seed=5, n_instructions=INSTR, stage1=stage1)
        text = render_fig2(rows)
        assert text.index("milc") < text.index("astar")


class TestFig5:
    def test_percentages_valid(self, stage1):
        data = run_fig5(apps=APPS, seed=5, n_instructions=INSTR, stage1=stage1)
        assert set(data) == set(APPS)
        assert all(0 <= v <= 100 for v in data.values())
        text = render_percent_map("Fig5", data)
        assert "Average" in text


class TestCriticalitySweep:
    def test_sweep_structure(self, stage1):
        sweep = run_criticality_sweep(
            apps=APPS, seed=5, n_instructions=INSTR, stage1=stage1
        )
        assert set(sweep.accuracy) == set(APPS)
        avg = sweep.average(sweep.noncritical_blocks)
        assert set(avg) == set(sweep.thresholds)
        # Non-critical share grows (weakly) with the threshold.
        values = [avg[t] for t in sweep.thresholds]
        assert values[-1] >= values[0]
        text = render_threshold_sweep("Fig8", sweep.noncritical_blocks,
                                      sweep.thresholds)
        assert "Avg" in text


class TestMatrixDrivers:
    @pytest.fixture(scope="class")
    def matrix(self, stage1):
        return run_main_matrix(
            baseline_config(),
            schemes=("S-NUCA", "Re-NUCA"),
            num_workloads=2,
            seed=5,
            n_instructions=INSTR,
            stage1=stage1,
        )

    def test_matrix_covers_grid(self, matrix):
        assert len(matrix.results) == 4
        assert matrix.workloads == ("WL1", "WL2")

    def test_renders(self, matrix):
        assert "CB-0" in render_lifetime_bars(matrix, ("S-NUCA", "Re-NUCA"))
        assert "Avg" in render_ipc_improvements(matrix, ("S-NUCA", "Re-NUCA"))
        assert "S-NUCA" in render_tradeoff(matrix)

    def test_table3_assembly(self, matrix):
        t3 = table3({"Actual Results": matrix}, schemes=("S-NUCA", "Re-NUCA"))
        assert t3["Actual Results"]["S-NUCA"] > 0
        assert "Config" in render_table3(t3)


class TestSensitivity:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError):
            run_sensitivity("L4-64MB")

    def test_variant_runs(self, stage1):
        matrix = run_sensitivity(
            "ROB-168",
            schemes=("S-NUCA",),
            num_workloads=1,
            seed=5,
            n_instructions=INSTR,
            stage1=stage1,
        )
        assert matrix.label == "ROB-168"
        assert matrix.get("WL1", "S-NUCA").ipc > 0


class TestEndOfLife:
    def test_cliff_detection(self):
        from repro.experiments.endoflife import AgePoint, ipc_cliff_age

        def point(age, ipc):
            return AgePoint(scheme="X", age=age, ipc=ipc, llc_hit_rate=0.5,
                            effective_capacity=1.0, dead_banks=0,
                            remap_traffic=0, fills_skipped=0,
                            transient_faults=0)

        points = [point(0.0, 10.0), point(0.5, 9.5), point(0.9, 8.5)]
        assert ipc_cliff_age(points) == 0.9
        assert ipc_cliff_age(points, drop=0.20) is None
        assert ipc_cliff_age([]) is None

    def test_bad_workload_number_rejected(self):
        from repro.common.errors import ReproError
        from repro.experiments.endoflife import run_endoflife

        with pytest.raises(ReproError):
            run_endoflife(workload_number=0, n_instructions=INSTR)
        with pytest.raises(ReproError):
            run_endoflife(workload_number=1, ages=(), n_instructions=INSTR)

    def test_sweep_degrades_and_renders(self, stage1):
        from repro.experiments.endoflife import render_endoflife, run_endoflife

        curves = run_endoflife(
            workload_number=1,
            ages=(0.0, 1.1),
            schemes=("S-NUCA",),
            seed=5,
            n_instructions=INSTR,
            stage1=stage1,
        )
        points = curves["S-NUCA"]
        assert [p.age for p in points] == [0.0, 1.1]
        assert points[0].effective_capacity == 1.0
        assert points[0].remap_traffic == 0
        # Past rated endurance most frames are gone and IPC suffers.
        assert points[1].effective_capacity < points[0].effective_capacity
        assert points[1].ipc < points[0].ipc
        text = render_endoflife(curves)
        assert "IPC retention" in text
        assert "capacity" in text

    def test_sweep_deterministic(self, stage1):
        from repro.experiments.endoflife import run_endoflife

        kwargs = dict(
            workload_number=1, ages=(0.9,), schemes=("S-NUCA",),
            seed=5, n_instructions=INSTR, stage1=stage1,
        )
        a = run_endoflife(**kwargs)["S-NUCA"][0]
        b = run_endoflife(**kwargs)["S-NUCA"][0]
        assert a == b


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_floats_rounded(self):
        assert "2.50" in format_table(["x"], [[2.5]])

    def test_motivation_schemes_exclude_renuca(self):
        assert "Re-NUCA" not in MOTIVATION_SCHEMES
