"""Stage-1 application simulation: Table II stats, criticality, stream."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.trace.profiles import get_profile

INSTRUCTIONS = 120_000


@pytest.fixture(scope="module")
def mcf_result():
    return AppSimulator("mcf", baseline_config(), seed=7).run(INSTRUCTIONS)


@pytest.fixture(scope="module")
def hmmer_result():
    return AppSimulator("hmmer", baseline_config(), seed=7).run(INSTRUCTIONS)


class TestBasicOutputs:
    def test_instruction_count(self, mcf_result):
        assert mcf_result.instructions == pytest.approx(INSTRUCTIONS, rel=0.05)

    def test_positive_cycles_and_ipc(self, mcf_result):
        assert mcf_result.cycles > 0
        assert 0 < mcf_result.ipc < 4

    def test_stream_nonempty(self, mcf_result):
        assert len(mcf_result.stream) > 1000

    def test_stream_timestamps_monotone(self, mcf_result):
        ts = mcf_result.stream.ts
        assert np.all(np.diff(ts) >= 0)

    def test_stream_has_fetches_and_writebacks(self, mcf_result):
        s = mcf_result.stream
        assert s.is_wb.any() and (~s.is_wb).any()

    def test_wb_records_never_expose_latency(self, mcf_result):
        s = mcf_result.stream
        lat = np.full(len(s), 1e6, dtype=np.float32)
        delta = s.exposure_delta(lat)
        assert np.all(delta[s.is_wb] == 0)

    def test_deterministic(self):
        a = AppSimulator("hmmer", baseline_config(), seed=3).run(30_000)
        b = AppSimulator("hmmer", baseline_config(), seed=3).run(30_000)
        assert a.cycles == b.cycles
        assert np.array_equal(a.stream.line, b.stream.line)

    def test_seed_changes_stream(self):
        a = AppSimulator("hmmer", baseline_config(), seed=3).run(30_000)
        b = AppSimulator("hmmer", baseline_config(), seed=4).run(30_000)
        assert not np.array_equal(a.stream.line, b.stream.line)

    def test_zero_budget_rejected(self):
        with pytest.raises(SimulationError):
            AppSimulator("mcf", baseline_config()).run(0)


class TestTableTwoFidelity:
    def test_mcf_is_memory_bound(self, mcf_result):
        target = get_profile("mcf")
        assert mcf_result.mpki == pytest.approx(target.mpki, rel=0.35)
        assert mcf_result.wpki == pytest.approx(target.wpki, rel=0.35)

    def test_hmmer_is_cache_friendly(self, hmmer_result):
        target = get_profile("hmmer")
        assert hmmer_result.mpki < 1.0
        assert hmmer_result.l3_hitrate == pytest.approx(target.hitrate, abs=0.1)
        assert hmmer_result.wpki == pytest.approx(target.wpki, rel=0.5)

    def test_intensity_ordering_preserved(self, mcf_result, hmmer_result):
        assert mcf_result.wpki + mcf_result.mpki > 20 * (
            hmmer_result.wpki + hmmer_result.mpki
        )


class TestCriticalitySignals:
    def test_most_loads_noncritical(self, mcf_result):
        # Figure 5: the large majority of loads never block the ROB head.
        assert mcf_result.meters.noncritical_load_percent > 60

    def test_chase_heavy_app_has_critical_fetches(self, mcf_result):
        s = mcf_result.stream
        fetches = ~s.is_wb & s.is_load
        assert s.true_critical[fetches].mean() > 0.1

    def test_accuracy_declines_with_threshold(self, mcf_result):
        acc = mcf_result.meters.accuracy_percent()
        assert acc[3] > acc[100]
        assert acc[3] > 60

    def test_exposure_identity_at_nominal(self, mcf_result):
        """Replaying nominal latencies must yield (near-)zero deltas."""
        s = mcf_result.stream
        delta = s.exposure_delta(s.nominal_lat)
        assert np.all(np.abs(delta) < 1e-3)

    def test_exposure_monotone_in_latency(self, mcf_result):
        s = mcf_result.stream
        faster = s.exposure_delta(s.nominal_lat - 50)
        slower = s.exposure_delta(s.nominal_lat + 50)
        assert faster.sum() < 0 < slower.sum()

    def test_prefetcher_covers_streams(self, mcf_result):
        # mcf has a streaming component; coverage must be substantial.
        sim_stats = mcf_result
        # (coverage is visible through load-fetch fraction < 1)
        s = sim_stats.stream
        fetches = ~s.is_wb
        assert s.is_load[fetches].mean() < 0.95
