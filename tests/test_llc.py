"""NUCA LLC controller semantics across policies."""

import pytest

from repro.config import baseline_config
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.reram.wear import WearTracker


def build_llc(scheme, config=None):
    config = config or baseline_config()
    mesh = Mesh(config.noc)
    memory = MainMemory(config.memory)
    wear = WearTracker(config.num_banks)
    policy = make_policy(scheme, config, mesh, wear)
    return NucaLLC(config, policy, mesh, memory, wear)


class TestFetchSemantics:
    def test_miss_then_hit(self):
        llc = build_llc("S-NUCA")
        lat1, hit1 = llc.fetch(0, 0x123, 0.0, False)
        lat2, hit2 = llc.fetch(0, 0x123, 1000.0, False)
        assert not hit1 and hit2
        assert lat2 < lat1  # hit avoids memory

    def test_miss_pays_memory_latency(self):
        llc = build_llc("S-NUCA")
        lat, hit = llc.fetch(0, 0x123, 0.0, False)
        assert lat >= llc.config.memory.row_hit_latency_cycles

    def test_hit_latency_scales_with_distance(self):
        llc = build_llc("S-NUCA")
        # Line in bank 0 (line & 15 == 0); requesters at node 0 and 15.
        llc.fetch(0, 0x100, 0.0, False)
        near, _ = llc.fetch(0, 0x100, 100.0, False)
        far, _ = llc.fetch(15, 0x100, 200.0, False)
        hops = llc.mesh.distance(15, 0)
        assert far - near == pytest.approx(2 * hops * llc.config.noc.hop_cycles)

    def test_fill_counts_bank_write(self):
        llc = build_llc("S-NUCA")
        llc.fetch(0, 0x123, 0.0, False)
        assert llc.wear.writes_of(0x3) == 1

    def test_stats(self):
        llc = build_llc("S-NUCA")
        llc.fetch(0, 1, 0.0, False)
        llc.fetch(0, 1, 10.0, False)
        assert llc.stats.fetches == 2
        assert llc.stats.fetch_hits == 1
        assert llc.stats.memory_reads == 1
        assert llc.stats.fetch_hit_rate == pytest.approx(0.5)


class TestWritebackSemantics:
    def test_writeback_hit_counts_wear(self):
        llc = build_llc("S-NUCA")
        llc.fetch(0, 0x10, 0.0, False)     # fill: 1 write into bank 0
        llc.writeback(0, 0x10, 10.0)       # absorbed: +1 write
        assert llc.wear.writes_of(0) == 2
        assert llc.stats.writeback_hits == 1

    def test_writeback_miss_reallocates_dirty(self):
        llc = build_llc("S-NUCA")
        llc.writeback(0, 0x20, 0.0)
        bank = llc.resident_bank_of(0x20)
        assert bank == 0  # 0x20 & 15
        assert llc.banks[bank].cache.is_dirty(0x20)

    def test_dirty_victim_goes_to_memory(self, config):
        llc = build_llc("Private")
        assoc = config.l3_bank.assoc
        sets = llc.banks[0].cache.num_sets
        # Fill one set of core 0's bank beyond capacity with dirty lines.
        shift = 4  # bank index_shift for 16 banks
        for k in range(assoc + 2):
            llc.writeback(0, (k * sets) << shift, float(k))
        assert llc.stats.memory_writes == 2


class TestPolicyIntegration:
    def test_snuca_spreads_one_core(self):
        llc = build_llc("S-NUCA")
        for line in range(160):
            llc.fetch(0, line, float(line), False)
        writes = llc.bank_writes()
        assert min(writes) == max(writes) == 10

    def test_private_concentrates(self):
        llc = build_llc("Private")
        for line in range(160):
            llc.fetch(3, line, float(line), False)
        writes = llc.bank_writes()
        assert writes[3] == 160
        assert sum(writes) == 160

    def test_rnuca_stays_in_cluster(self):
        llc = build_llc("R-NUCA")
        for line in range(160):
            llc.fetch(5, line, float(line), False)
        cluster = set(llc.policy.clusters[5])
        for bank, count in enumerate(llc.bank_writes()):
            assert (count > 0) == (bank in cluster)

    def test_naive_perfectly_levels(self):
        llc = build_llc("Naive")
        for line in range(163):
            llc.fetch(0, line, float(line), False)
        writes = llc.bank_writes()
        assert max(writes) - min(writes) <= 1

    def test_naive_pays_directory_penalty(self, config):
        fast = build_llc("S-NUCA")
        slow = build_llc("Naive")
        line = 0x40
        fast.fetch(0, line, 0.0, False)
        slow.fetch(0, line, 0.0, False)
        lat_fast, _ = fast.fetch(0, line, 1e6, False)
        lat_slow, _ = slow.fetch(0, line, 1e6, False)
        assert lat_slow >= lat_fast + config.naive_directory_penalty - 64

    def test_renuca_critical_near_noncritical_spread(self):
        llc = build_llc("Re-NUCA")
        core = 5
        for line in range(0, 320, 2):
            llc.fetch(core, line, float(line), True)       # critical
            llc.fetch(core, line + 1, float(line), False)  # non-critical
        cluster = set(llc.policy._rnuca.clusters[core])
        outside = [b for b in range(16) if b not in cluster]
        writes = llc.bank_writes()
        # Non-critical lines must reach banks outside the cluster.
        assert sum(writes[b] for b in outside) > 0
        # Critical lines concentrate: cluster banks see more writes.
        assert sum(writes[b] for b in cluster) > sum(writes[b] for b in outside)


class TestPrefill:
    def test_prefill_installs_without_wear_after_reset(self):
        llc = build_llc("S-NUCA")
        for line in range(64):
            llc.prefill(0, line)
        llc.reset_measurement()
        assert llc.occupancy() == 64
        assert llc.wear.total_writes() == 0
        _lat, hit = llc.fetch(0, 5, 0.0, False)
        assert hit

    def test_prefill_idempotent(self):
        llc = build_llc("S-NUCA")
        llc.prefill(0, 7)
        llc.prefill(0, 7)
        assert llc.occupancy() == 1

    def test_prefill_critical_respects_policy(self):
        llc = build_llc("Re-NUCA")
        core, line = 5, 0x1000
        llc.prefill(core, line, critical=True)
        assert llc.resident_bank_of(line) in llc.policy._rnuca.clusters[core]
        assert llc.policy.tlbs[core].mapping_bit(line)


class TestConsistency:
    @pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "Private", "Naive", "Re-NUCA"])
    def test_no_duplicate_lines_and_locate_agrees(self, scheme, rng):
        llc = build_llc(scheme)
        for step in range(5000):
            core = int(rng.integers(0, 16))
            line = int(rng.integers(0, 3000)) + ((core + 1) << 44)
            if rng.random() < 0.3:
                llc.writeback(core, line, float(step))
            else:
                llc.fetch(core, line, float(step), bool(rng.random() < 0.5))
        from collections import Counter

        residents = Counter()
        for bank in llc.banks:
            residents.update(bank.cache.resident_lines())
        assert all(count == 1 for count in residents.values())
        for bank in llc.banks:
            for line in bank.cache.resident_lines():
                owner = bank.cache.aux_of(line)[0]
                assert llc.policy.locate(owner, line) == bank.node_id
