"""The parallel sweep engine: specs, result cache, journal, scheduler."""

import json

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.config import FaultConfig, baseline_config, scaled_config
from repro.jobs.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.jobs.journal import SweepJournal
from repro.jobs.scheduler import SweepJob, matrix_jobs, run_jobs
from repro.jobs.spec import JobSpec
from repro.sim.store import result_to_dict
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload

INSTR = 6_000

#: A tiny 4-core machine keeps the grid tests fast while exercising the
#: full stage-1 + stage-2 pipeline.
CONFIG = scaled_config(baseline_config(), cores=4)

#: Overlapping app sets so per-worker stage-1 caches actually get reuse.
GRID_WORKLOADS = [
    Workload("mixA", ("hmmer", "namd", "povray", "dealII")),
    Workload("mixB", ("hmmer", "sjeng", "gromacs", "namd")),
    Workload("mixC", ("soplex", "sphinx3", "povray", "hmmer")),
]
GRID_SCHEMES = ("S-NUCA", "R-NUCA", "Re-NUCA")


@pytest.fixture(scope="module")
def flat_cpi():
    """Skip the expensive calibration probes; preserves determinism."""
    mp = pytest.MonkeyPatch()
    mp.setattr(
        "repro.sim.runner.calibrated_base_cpi",
        lambda app, config, seed=None: 1.0,
    )
    yield
    mp.undo()


def grid_jobs(seed=7):
    return matrix_jobs(
        GRID_WORKLOADS, GRID_SCHEMES, CONFIG, seed=seed, n_instructions=INSTR
    )


def canned_result(workload="WL1", scheme="S-NUCA", *, ipc_per_core=1.0, n=4):
    from repro.sim.metrics import WorkloadSchemeResult

    return WorkloadSchemeResult(
        workload=workload,
        scheme=scheme,
        apps=("hmmer",) * n,
        per_core_ipc=np.full(n, ipc_per_core),
        per_core_instructions=np.full(n, 1000, dtype=np.int64),
        per_core_cycles=np.full(n, 1000.0 / ipc_per_core),
        bank_writes=np.arange(n, dtype=np.int64) + 1,
        bank_lifetimes=np.asarray([5.0] * n),
        elapsed_cycles=1000.0,
        llc_fetch_hit_rate=0.5,
        llc_mean_fetch_latency=100.0,
        noc_mean_hops=2.0,
    )


def spec_for(workload=None, scheme="S-NUCA", *, seed=7, fault=None):
    return JobSpec.for_run(
        workload or GRID_WORKLOADS[0], scheme, CONFIG,
        seed=seed, n_instructions=INSTR, fault_config=fault,
    )


class TestJobSpec:
    def test_fingerprint_stable(self):
        assert spec_for().fingerprint() == spec_for().fingerprint()

    def test_fingerprint_is_hex_sha256(self):
        fingerprint = spec_for().fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)

    @pytest.mark.parametrize("other", [
        spec_for(scheme="Re-NUCA"),
        spec_for(seed=8),
        spec_for(workload=GRID_WORKLOADS[1]),
        spec_for(fault=FaultConfig(age_fraction=0.9)),
    ])
    def test_fingerprint_sensitivity(self, other):
        assert other.fingerprint() != spec_for().fingerprint()

    def test_same_name_different_apps_differ(self):
        renamed = Workload("mixA", GRID_WORKLOADS[1].apps)
        assert (
            spec_for(workload=renamed).fingerprint()
            != spec_for().fingerprint()
        )

    def test_inactive_fault_normalises_to_pristine(self):
        idle = FaultConfig(age_fraction=0.0)
        assert not idle.active
        spec = spec_for(fault=idle)
        assert spec.fault is None
        assert spec.fingerprint() == spec_for().fingerprint()

    @pytest.mark.parametrize("fault", [
        None,
        FaultConfig(age_fraction=0.9, transient_rate=1e-6,
                    bank_failures=((3, 0.5),)),
    ])
    def test_dict_round_trip(self, fault):
        spec = spec_for(fault=fault)
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert JobSpec.from_dict(spec.to_dict()).fingerprint() == spec.fingerprint()

    def test_dict_round_trip_survives_json(self):
        spec = spec_for(fault=FaultConfig(age_fraction=1.1))
        thawed = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert thawed.fingerprint() == spec.fingerprint()

    def test_from_dict_rejects_unknown_version(self):
        payload = spec_for().to_dict()
        payload["format"] = 999
        with pytest.raises(ReproError, match="format"):
            JobSpec.from_dict(payload)

    def test_from_dict_rejects_missing_field(self):
        payload = spec_for().to_dict()
        del payload["apps"]
        with pytest.raises(ReproError, match="malformed"):
            JobSpec.from_dict(payload)

    def test_rejects_empty_apps(self):
        with pytest.raises(ReproError, match="no apps"):
            JobSpec(workload="w", apps=(), scheme="S-NUCA", seed=1,
                    n_instructions=INSTR, config_signature=("x",))

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ReproError, match="budget"):
            JobSpec(workload="w", apps=("hmmer",), scheme="S-NUCA", seed=1,
                    n_instructions=0, config_signature=("x",))

    def test_label_mentions_fault_age(self):
        assert spec_for().label() == "mixA/S-NUCA"
        aged = spec_for(fault=FaultConfig(age_fraction=0.9))
        assert aged.label() == "mixA/S-NUCA@age0.9"


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = spec_for()
        assert cache.get(spec) is None
        cache.put(spec, canned_result())
        hit = cache.get(spec)
        assert hit is not None
        assert hit.ipc == pytest.approx(canned_result().ipc)
        assert len(cache) == 1
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_distinct_specs_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec_for(), canned_result())
        assert cache.get(spec_for(scheme="Re-NUCA")) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, canned_result())
        path = cache.path_for(spec.fingerprint())
        payload = json.loads(path.read_text())
        payload["format_version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, canned_result())
        cache.path_for(spec.fingerprint()).write_text("{ truncated")
        assert cache.get(spec) is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec_for(), canned_result())
        assert [p.name for p in tmp_path.glob("*.tmp")] == []

    def test_bind_telemetry_counts(self, tmp_path):
        from repro.telemetry import StatsRegistry

        cache = ResultCache(tmp_path)
        registry = StatsRegistry()
        cache.bind_telemetry(registry)
        spec = spec_for()
        cache.get(spec)
        cache.put(spec, canned_result())
        cache.get(spec)
        snap = registry.snapshot()
        assert snap["jobs.cache.hits"] == 1
        assert snap["jobs.cache.misses"] == 1
        assert snap["jobs.cache.writes"] == 1

    def test_unwritable_root_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ReproError, match="cannot create"):
            ResultCache(blocker / "cache")


class TestSweepJournal:
    def test_record_load_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(spec_for(), canned_result())
            journal.record(spec_for(scheme="Re-NUCA"),
                           canned_result(scheme="Re-NUCA"))
        loaded = SweepJournal(path).load()
        assert set(loaded) == {
            spec_for().fingerprint(),
            spec_for(scheme="Re-NUCA").fingerprint(),
        }
        assert loaded[spec_for().fingerprint()].scheme == "S-NUCA"

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "nope.jsonl").load() == {}

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(spec_for(), canned_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "fingerprint": "abc", "resu')
        loaded = SweepJournal(path).load()
        assert set(loaded) == {spec_for().fingerprint()}

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(spec_for(), canned_result())
        text = path.read_text()
        path.write_text("not json\n" + text)
        with pytest.raises(ReproError, match="malformed"):
            SweepJournal(path).load()

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        record = {"v": 999, "fingerprint": "abc", "result": {}}
        path.write_text(json.dumps(record) + "\n\n")
        with pytest.raises(ReproError, match="unsupported journal format"):
            SweepJournal(path).load()

    def test_truncate_discards_previous_records(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record(spec_for(), canned_result())
        journal = SweepJournal(path)
        journal.open(truncate=True)
        journal.close()
        assert journal.load() == {}


class TestRunJobsValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ReproError, match="max_workers"):
            run_jobs([], max_workers=0)

    def test_negative_retries(self):
        with pytest.raises(ReproError, match="retries"):
            run_jobs([], retries=-1)

    def test_resume_requires_journal(self):
        with pytest.raises(ReproError, match="resume requires"):
            run_jobs([], resume=True)

    def test_duplicate_jobs_rejected(self):
        job = SweepJob(spec=spec_for(), config=CONFIG)
        with pytest.raises(ReproError, match="duplicate sweep job"):
            run_jobs([job, job])

    def test_empty_sweep_is_fine(self):
        results, report = run_jobs([])
        assert results == []
        assert report.total == 0


class TestRetries:
    """Transient failures retry; deterministic (ReproError) ones do not."""

    def _flaky(self, fail_times):
        calls = {"n": 0}

        def fake_run_workload(workload, scheme, config, **kwargs):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise OSError("transient")
            return canned_result(workload.name, scheme)

        return fake_run_workload, calls

    def test_serial_retry_recovers(self, monkeypatch):
        fake, calls = self._flaky(fail_times=1)
        monkeypatch.setattr("repro.jobs.scheduler.run_workload", fake)
        job = SweepJob(spec=spec_for(), config=CONFIG)
        results, report = run_jobs([job], retries=1)
        assert calls["n"] == 2
        assert report.retries == 1
        assert report.executed == 1
        assert results[0].scheme == "S-NUCA"

    def test_serial_retries_exhausted(self, monkeypatch):
        fake, _calls = self._flaky(fail_times=10)
        monkeypatch.setattr("repro.jobs.scheduler.run_workload", fake)
        job = SweepJob(spec=spec_for(), config=CONFIG)
        with pytest.raises(ReproError, match="failed after 2 attempt"):
            run_jobs([job], retries=1)

    def test_repro_error_is_not_retried(self, monkeypatch):
        calls = {"n": 0}

        def fake(workload, scheme, config, **kwargs):
            calls["n"] += 1
            raise ReproError("deterministic failure")

        monkeypatch.setattr("repro.jobs.scheduler.run_workload", fake)
        job = SweepJob(spec=spec_for(), config=CONFIG)
        with pytest.raises(ReproError, match="deterministic failure"):
            run_jobs([job], retries=5)
        assert calls["n"] == 1


@pytest.fixture(scope="module")
def serial_grid(flat_cpi):
    results, report = run_jobs(grid_jobs(), max_workers=1)
    return results, report


@pytest.fixture(scope="module")
def parallel_grid(flat_cpi):
    results, report = run_jobs(grid_jobs(), max_workers=4)
    return results, report


class TestDeterminism:
    """A parallel sweep must be field-for-field equal to the serial one."""

    def test_parallel_matches_serial(self, serial_grid, parallel_grid):
        serial, _ = serial_grid
        parallel, _ = parallel_grid
        assert len(serial) == len(parallel) == 9
        for a, b in zip(serial, parallel):
            assert result_to_dict(a) == result_to_dict(b)

    def test_results_follow_job_order(self, parallel_grid):
        results, _ = parallel_grid
        expected = [
            (workload.name, scheme)
            for workload in GRID_WORKLOADS
            for scheme in GRID_SCHEMES
        ]
        assert [(r.workload, r.scheme) for r in results] == expected

    def test_report_counts(self, parallel_grid):
        _, report = parallel_grid
        assert report.total == 9
        assert report.executed == 9
        assert report.cache_hits == report.resumed == report.retries == 0


class TestCacheAndResume:
    def test_warm_cache_skips_every_simulation(self, flat_cpi, tmp_path,
                                               serial_grid):
        cache = ResultCache(tmp_path / "cache")
        first, first_report = run_jobs(grid_jobs(), cache=cache)
        assert first_report.executed == 9
        warm, warm_report = run_jobs(grid_jobs(), cache=cache)
        assert warm_report.executed == 0
        assert warm_report.cache_hits == 9
        for a, b in zip(first, warm):
            assert result_to_dict(a) == result_to_dict(b)
        # And the cached grid equals the plain serial run.
        for a, b in zip(serial_grid[0], warm):
            assert result_to_dict(a) == result_to_dict(b)

    def test_resume_runs_only_the_remainder(self, flat_cpi, tmp_path):
        path = tmp_path / "sweep.jsonl"
        jobs = grid_jobs()
        _, partial = run_jobs(jobs[:4], journal=path)
        assert partial.executed == 4
        telemetry = Telemetry()
        results, report = run_jobs(jobs, journal=path, resume=True,
                                   telemetry=telemetry)
        assert report.resumed == 4
        assert report.executed == 5
        assert len(results) == 9
        snap = telemetry.registry.snapshot()
        assert snap["jobs.journal.resumed"] == 4
        assert snap["jobs.executed"] == 5

    def test_journal_restarts_without_resume(self, flat_cpi, tmp_path):
        path = tmp_path / "sweep.jsonl"
        jobs = grid_jobs()
        run_jobs(jobs[:2], journal=path)
        run_jobs(jobs[2:4], journal=path)  # no resume: truncates
        loaded = SweepJournal(path).load()
        assert set(loaded) == {job.spec.fingerprint() for job in jobs[2:4]}

    def test_cache_hits_are_journaled(self, flat_cpi, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = grid_jobs()[:2]
        run_jobs(jobs, cache=cache)
        path = tmp_path / "sweep.jsonl"
        _, report = run_jobs(jobs, cache=cache, journal=path)
        assert report.cache_hits == 2
        assert set(SweepJournal(path).load()) == {
            job.spec.fingerprint() for job in jobs
        }


class TestParallelTelemetry:
    def test_worker_events_are_stamped_and_counters_merged(self, flat_cpi):
        telemetry = Telemetry(trace=True)
        jobs = grid_jobs()[:3]  # mixA under all three schemes
        _, report = run_jobs(jobs, max_workers=2, telemetry=telemetry)
        assert report.executed == 3
        snap = telemetry.registry.snapshot()
        assert snap["jobs.executed"] == 3
        # Simulation counters from the workers landed in the parent.
        assert any(name.startswith("llc.") for name in snap)
        events = telemetry.trace.events()
        assert events
        schemes = {event.fields.get("scheme") for event in events}
        assert schemes <= set(GRID_SCHEMES)
        assert len(schemes) > 1
        assert all(
            event.fields.get("workload") == "mixA" for event in events
        )


class TestEndOfLifeParallel:
    def test_parallel_endoflife_matches_serial(self, flat_cpi):
        from repro.experiments.endoflife import run_endoflife

        kwargs = dict(
            workload_number=1,
            ages=(0.0, 0.9),
            schemes=("S-NUCA", "Re-NUCA"),
            config=CONFIG,
            seed=5,
            n_instructions=INSTR,
            transient_rate=1e-7,
        )
        serial = run_endoflife(**kwargs)
        parallel = run_endoflife(max_workers=4, **kwargs)
        assert serial == parallel
        assert [p.age for p in serial["S-NUCA"]] == [0.0, 0.9]


class TestObserverEvents:
    """The scheduler's live JobEvent stream (repro sweep --progress)."""

    def test_three_tier_event_stream(self, flat_cpi, tmp_path):
        from repro.jobs.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "sweep.jsonl"
        jobs = grid_jobs()[:3]
        run_jobs(jobs[:1], cache=cache)            # warm one cell
        run_jobs(jobs[1:2], journal=journal)       # journal another
        events = []
        _, report = run_jobs(
            jobs, cache=cache, journal=journal, resume=True,
            observer=events.append,
        )
        assert report.cache_hits == 1 and report.resumed == 1
        kinds = [e.kind for e in events]
        assert kinds.count("cache") == 1
        assert kinds.count("resumed") == 1
        assert kinds.count("dispatch") == kinds.count("done") == 1
        done = [e for e in events if e.kind == "done"]
        assert done[0].wall_time_s > 0
        assert all("/" in e.label for e in events)

    def test_parallel_emits_dispatch_and_done(self, flat_cpi):
        events = []
        run_jobs(grid_jobs()[:2], max_workers=2, observer=events.append)
        kinds = [e.kind for e in events]
        assert kinds.count("dispatch") == kinds.count("done") == 2
        indices = sorted(e.index for e in events if e.kind == "done")
        assert indices == [0, 1]


class TestRunJobsLedger:
    """One provenance record per job, in job order, source-stamped."""

    def test_sources_and_engine_counts(self, flat_cpi, tmp_path):
        from repro.jobs.cache import ResultCache
        from repro.obs.ledger import RunLedger

        cache = ResultCache(tmp_path / "cache")
        jobs = grid_jobs()[:2]
        run_jobs(jobs[:1], cache=cache)
        path = tmp_path / "ledger.jsonl"
        run_jobs(jobs, cache=cache, ledger=path)
        records = RunLedger(path).load()
        assert [r.source for r in records] == ["cache", "executed"]
        assert [r.fingerprint for r in records] == [
            job.spec.fingerprint() for job in jobs
        ]
        assert records[0].wall_time_s == 0.0      # served, not simulated
        assert records[1].wall_time_s > 0.0
        assert all(
            r.engine == {"total": 2, "executed": 1, "cache_hits": 1,
                         "resumed": 0, "retries": 0}
            for r in records
        )

    def test_ledger_metrics_match_results(self, flat_cpi, tmp_path):
        from repro.obs.ledger import RunLedger

        path = tmp_path / "ledger.jsonl"
        jobs = grid_jobs()[:2]
        results, _ = run_jobs(jobs, max_workers=2, ledger=path)
        records = RunLedger(path).load()
        for record, result in zip(records, results):
            assert record.workload == result.workload
            assert record.scheme == result.scheme
            assert record.metrics["ipc"] == pytest.approx(result.ipc)
            assert record.n_instructions == INSTR


class TestParallelProfilerMerge:
    """Worker profiler timings must land in the parent handle."""

    def test_parent_profiler_sees_worker_phases(self, flat_cpi, tmp_path):
        from repro.obs.ledger import RunLedger

        telemetry = Telemetry(profile=True)
        path = tmp_path / "ledger.jsonl"
        run_jobs(grid_jobs()[:2], max_workers=2, telemetry=telemetry,
                 ledger=path)
        phases = {tuple(p) for p, _c, _s in telemetry.profiler.export_state()}
        assert {("stage1",), ("measure",), ("reduce",)} <= phases
        # And the per-job phase split is in the ledger records.
        records = RunLedger(path).load()
        assert all("measure" in r.profile for r in records)

    def test_disabled_profiler_not_polluted(self, flat_cpi):
        from repro.telemetry import DISABLED_PROFILER

        telemetry = Telemetry()          # profiler disabled
        assert telemetry.profiler is not DISABLED_PROFILER or True
        run_jobs(grid_jobs()[:2], max_workers=2, telemetry=telemetry)
        assert DISABLED_PROFILER.export_state() == []
