"""Region-based stream prefetcher."""

import pytest

from repro.common.errors import ConfigError
from repro.cpu.prefetch import StreamPrefetcher


class TestDetection:
    def test_first_touch_not_covered(self):
        pf = StreamPrefetcher()
        assert not pf.covers(0x1000)

    def test_sequential_covered(self):
        pf = StreamPrefetcher()
        pf.covers(0x1000)
        assert pf.covers(0x1001)
        assert pf.covers(0x1002)

    def test_small_skip_covered(self):
        pf = StreamPrefetcher(max_stride=4)
        pf.covers(100)
        assert pf.covers(103)

    def test_large_skip_not_covered(self):
        pf = StreamPrefetcher(max_stride=4)
        pf.covers(100)
        assert not pf.covers(120)

    def test_backward_not_covered(self):
        pf = StreamPrefetcher()
        pf.covers(100)
        assert not pf.covers(99)

    def test_same_line_not_covered(self):
        pf = StreamPrefetcher()
        pf.covers(100)
        assert not pf.covers(100)

    def test_random_traffic_rarely_covered(self, rng):
        pf = StreamPrefetcher()
        covered = sum(pf.covers(int(line)) for line in rng.integers(0, 1 << 20, 2000))
        assert covered < 40  # pointer chases stay visible to the ROB

    def test_streams_in_different_regions_tracked_independently(self):
        pf = StreamPrefetcher(region_shift=10)
        pf.covers(0)
        pf.covers(1 << 10)
        assert pf.covers(1)
        assert pf.covers((1 << 10) + 1)

    def test_region_crossing_restarts(self):
        pf = StreamPrefetcher(region_shift=4)  # 16-line regions
        for line in range(15):
            pf.covers(line)
        assert not pf.covers(16)  # new region leader... (15 -> 16 crosses)

    def test_interleaved_stream_survives_noise(self, rng):
        pf = StreamPrefetcher(max_regions=64)
        cursor = 0
        covered = 0
        for i in range(600):
            if i % 3 == 0:
                covered += pf.covers(cursor)
                cursor += 1
            else:
                pf.covers(int(rng.integers(1 << 30, 1 << 31)))
        assert covered > 150  # the stream stays detected despite noise


class TestCapacity:
    def test_detector_capacity_evicts_lru_region(self):
        pf = StreamPrefetcher(region_shift=10, max_regions=2)
        pf.covers(0 << 10)
        pf.covers(1 << 10)
        pf.covers(2 << 10)  # evicts region 0
        assert not pf.covers((0 << 10) + 1)

    def test_stats(self):
        pf = StreamPrefetcher()
        pf.covers(1)
        pf.covers(2)
        assert pf.stats.queries == 2
        assert pf.stats.covered == 1
        assert pf.stats.coverage == pytest.approx(0.5)

    def test_reset(self):
        pf = StreamPrefetcher()
        pf.covers(1)
        pf.reset()
        assert pf.stats.queries == 0
        assert not pf.covers(2)

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            StreamPrefetcher(max_stride=0)
        with pytest.raises(ConfigError):
            StreamPrefetcher(max_regions=0)
