"""Warm-up prefill semantics (stage 1 and stage 2)."""

import pytest

from repro.config import baseline_config, sensitivity_l3_1m
from repro.cpu.core import AppSimulator
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.reram.wear import WearTracker
from repro.sim import runner as runner_mod
from repro.sim.runner import Stage1Cache
from repro.trace.profiles import get_profile
from repro.trace.synthetic import derive_params, warm_sets
from repro.trace.workloads import Workload


class TestStage1Warmup:
    def test_caches_warm_before_measurement(self):
        sim = AppSimulator("omnetpp", baseline_config(), seed=3)
        sim._warm_caches(0)
        sets = warm_sets(sim.params, l2_lines=sim.config.l2.num_lines)
        # L1 holds the hot tier.
        assert all(sim.l1d.contains(line) for line in sets["l1"])
        # L3 holds the full resident working set.
        for block in sets["l3"]:
            assert all(sim.l3.contains(line) for line in block)
        # Statistics were reset: the prefill is invisible.
        assert sim.l3.stats.fills == 0
        assert sim.l1d.stats.accesses == 0

    def test_dirty_window_produces_writebacks_immediately(self):
        """The L2's prefilled dirty tail makes WPKI correct from line 1."""
        sim = AppSimulator("omnetpp", baseline_config(), seed=3)
        result = sim.run(20_000)
        # omnetpp (WPKI target 16.2) must show write-backs even in a
        # short window, which only happens if the L2 starts full+dirty.
        assert result.wpki > 5.0

    def test_warm_l3_respects_capacity(self):
        """On the 1 MB sensitivity config the working set self-evicts."""
        config = sensitivity_l3_1m()
        sim = AppSimulator("omnetpp", config, seed=3)
        sim._warm_caches(0)
        assert sim.l3.occupancy() <= config.l3_bank.num_lines


class TestStage2Warmup:
    def _llc(self, scheme, workload, results, config, seed=3):
        mesh = Mesh(config.noc)
        wear = WearTracker(config.num_banks)
        policy = make_policy(scheme, config, mesh, wear)
        llc = NucaLLC(config, policy, mesh, MainMemory(config.memory), wear)
        runner_mod._warm_llc(llc, workload, config, results, seed=seed)
        # The runner resets meters after warm-up (and after any fault
        # application, which must see the warm-up wear); mirror it here.
        llc.reset_measurement()
        return llc

    @pytest.fixture(scope="class")
    def setup(self):
        config = baseline_config()
        workload = Workload("w4", ("omnetpp",) * 16)
        stage1 = Stage1Cache()
        results = [
            stage1.get(app, config, seed=3, n_instructions=15_000)
            for app in workload.apps
        ]
        return config, workload, results

    def test_prefill_installs_resident_sets(self, setup):
        config, workload, results = setup
        llc = self._llc("S-NUCA", workload, results, config)
        params = derive_params(get_profile("omnetpp"), config)
        expected_per_core = sum(
            len(b) for b in warm_sets(params, l2_lines=config.l2.num_lines)["l3"]
        )
        # Some set-conflict shortfall is expected at ~87% global load.
        assert llc.occupancy() >= 0.75 * 16 * expected_per_core

    def test_wear_zero_after_warmup(self, setup):
        config, workload, results = setup
        llc = self._llc("R-NUCA", workload, results, config)
        assert llc.wear.total_writes() == 0
        assert llc.stats.fetches == 0

    def test_renuca_prefill_mixes_mappings(self, setup):
        """Criticality-aware prefill: part near (R), part spread (S)."""
        config, workload, results = setup
        llc = self._llc("Re-NUCA", workload, results, config)
        policy = llc.policy
        core = 5
        cluster = set(policy._rnuca.clusters[core])
        in_cluster = out_cluster = 0
        params = derive_params(get_profile("omnetpp"), config)
        offset = runner_mod._core_base(core)
        sets = warm_sets(params, l2_lines=config.l2.num_lines)
        for line in list(sets["l3"][2])[:2000]:  # the mid region
            bank = llc.resident_bank_of(line + offset)
            if bank is None:
                continue
            if bank in cluster:
                in_cluster += 1
            else:
                out_cluster += 1
        assert in_cluster > 0 and out_cluster > 0

    def test_prefill_deterministic(self, setup):
        config, workload, results = setup
        a = self._llc("Re-NUCA", workload, results, config)
        b = self._llc("Re-NUCA", workload, results, config)
        lines_a = sorted(
            line for bank in a.banks for line in bank.cache.resident_lines()
        )
        lines_b = sorted(
            line for bank in b.banks for line in bank.cache.resident_lines()
        )
        assert lines_a == lines_b
