"""Main-memory model: row-buffer locality and bandwidth queueing."""

import pytest

from repro.common.errors import SimulationError
from repro.config import MemoryConfig
from repro.mem.model import MainMemory


@pytest.fixture
def memory():
    return MainMemory(
        MemoryConfig(
            latency_cycles=200,
            row_hit_latency_cycles=80,
            bandwidth_lines_per_cycle=0.5,
            lines_per_row=128,
            dram_banks=64,
        )
    )


class TestRowBuffer:
    def test_first_access_is_row_miss(self, memory):
        done = memory.request(0.0, line=0)
        assert done == pytest.approx(200.0)
        assert memory.stats.row_hits == 0

    def test_same_row_hits(self, memory):
        memory.request(0.0, line=0)
        done = memory.request(1000.0, line=1)  # same 128-line row
        assert done == pytest.approx(1080.0)
        assert memory.stats.row_hits == 1

    def test_row_crossing_misses(self, memory):
        memory.request(0.0, line=0)
        # Next row of the SAME dram bank: row 64 (64 banks), i.e. line 64*128.
        done = memory.request(1000.0, line=64 * 128)
        assert done == pytest.approx(1200.0)

    def test_different_banks_independent(self, memory):
        memory.request(0.0, line=0)        # bank 0, row 0
        memory.request(10.0, line=128)     # bank 1, row 1
        done = memory.request(1000.0, line=2)  # bank 0 row 0 still open
        assert done == pytest.approx(1080.0)

    def test_sequential_stream_mostly_row_hits(self, memory):
        t = 0.0
        for line in range(256):
            memory.request(t, line)
            t += 10
        # Two rows touched: 2 misses, 254 hits.
        assert memory.stats.row_hits == 254

    def test_addressless_request_is_row_miss(self, memory):
        done = memory.request(0.0)
        assert done == pytest.approx(200.0)


class TestBandwidthQueue:
    def test_burst_queues(self, memory):
        # 4 requests at t=0; service = 2 cycles each.
        done = [memory.request(0.0, line=i * 10_000) for i in range(4)]
        starts = [d - 200 for d in done]
        assert starts == [0.0, 2.0, 4.0, 6.0]
        assert memory.stats.mean_queue_cycles == pytest.approx(3.0)

    def test_spread_requests_do_not_queue(self, memory):
        memory.request(0.0, line=0)
        done = memory.request(100.0, line=10_000)
        assert done == pytest.approx(300.0)
        assert memory.stats.total_queue_cycles == 0.0

    def test_negative_time_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.request(-1.0, line=0)


class TestReset:
    def test_reset_clears_rows_and_queue(self, memory):
        memory.request(0.0, line=0)
        memory.reset()
        assert memory.stats.requests == 0
        done = memory.request(0.0, line=1)
        assert done == pytest.approx(200.0)  # row state forgotten
