"""Criticality Predictor Table and the multi-threshold meters."""

import pytest

from repro.config import CriticalityConfig
from repro.core.criticality import (
    STANDARD_THRESHOLDS,
    CriticalityMeters,
    CriticalityPredictor,
)


@pytest.fixture
def cpt():
    return CriticalityPredictor(CriticalityConfig(threshold_percent=3.0))


class TestCptProtocol:
    def test_unknown_pc_predicts_noncritical(self, cpt):
        assert cpt.ratio(0x400) is None
        assert not cpt.predict(0x401)

    def test_entry_inserted_at_commit(self, cpt):
        cpt.observe_commit(0x400, blocked=True)
        assert cpt.ratio(0x400) is not None
        assert cpt.stats.inserts == 1

    def test_always_blocking_pc_predicted_critical(self, cpt):
        pc = 0x10
        for _ in range(10):
            cpt.ratio(pc)
            cpt.observe_commit(pc, blocked=True)
        assert cpt.predict(pc)

    def test_never_blocking_pc_predicted_noncritical(self, cpt):
        pc = 0x10
        cpt.observe_commit(pc, blocked=False)
        for _ in range(50):
            cpt.ratio(pc)
            cpt.observe_commit(pc, blocked=False)
        assert not cpt.predict(pc)

    def test_threshold_boundary(self):
        """robBlockCount >= x% of numLoadsCount marks the load critical."""
        cpt = CriticalityPredictor(CriticalityConfig(threshold_percent=50.0))
        pc = 0x20
        cpt.observe_commit(pc, blocked=True)   # 1 load, 1 block
        for _ in range(2):
            cpt.ratio(pc)
            cpt.observe_commit(pc, blocked=False)
        # counters now: loads 3, blocks 1 -> ratio 1/3 < 50%
        assert not cpt.predict(pc)

    def test_issue_increments_num_loads(self, cpt):
        pc = 0x30
        cpt.observe_commit(pc, blocked=True)  # loads=1 blocks=1
        cpt.ratio(pc)                          # loads=2
        snap = cpt.snapshot()
        assert snap[pc] == (2, 1)

    def test_low_threshold_flags_rare_blockers(self):
        """A 3% threshold catches a PC that blocks once in 20 loads."""
        cpt = CriticalityPredictor(CriticalityConfig(threshold_percent=3.0))
        pc = 0x40
        cpt.observe_commit(pc, blocked=True)
        for _ in range(19):
            cpt.ratio(pc)
            cpt.observe_commit(pc, blocked=False)
        assert cpt.predict(pc)  # 1/20 = 5% >= 3%

    def test_high_threshold_ignores_rare_blockers(self):
        cpt = CriticalityPredictor(CriticalityConfig(threshold_percent=100.0))
        pc = 0x40
        cpt.observe_commit(pc, blocked=True)
        for _ in range(19):
            cpt.ratio(pc)
            cpt.observe_commit(pc, blocked=False)
        assert not cpt.predict(pc)


class TestCptCapacity:
    def test_eviction_when_full(self):
        cpt = CriticalityPredictor(CriticalityConfig(table_entries=4))
        for pc in range(6):
            cpt.observe_commit(pc, blocked=True)
        assert len(cpt) == 4
        assert cpt.stats.evictions == 2

    def test_lru_entry_evicted(self):
        cpt = CriticalityPredictor(CriticalityConfig(table_entries=2))
        cpt.observe_commit(1, blocked=True)
        cpt.observe_commit(2, blocked=True)
        cpt.ratio(1)  # touch pc 1
        cpt.observe_commit(3, blocked=True)  # evicts pc 2
        snap = cpt.snapshot()
        assert 1 in snap and 3 in snap and 2 not in snap


class TestMeters:
    def test_figure5_noncritical_percent(self):
        meters = CriticalityMeters()
        for _ in range(8):
            meters.load_committed(None, blocked=False)
        for _ in range(2):
            meters.load_committed(0.9, blocked=True)
        assert meters.noncritical_load_percent == pytest.approx(80.0)

    def test_figure7_accuracy_declines_with_threshold(self):
        meters = CriticalityMeters()
        # Blocked loads issued from PCs with a spread of ratios.
        for ratio in (0.04, 0.10, 0.30, 0.60, 1.00):
            for _ in range(10):
                meters.load_committed(ratio, blocked=True)
        acc = meters.accuracy_percent()
        assert acc[3] == pytest.approx(100.0)
        assert acc[50] == pytest.approx(40.0)
        assert acc[100] == pytest.approx(20.0)
        values = [acc[t] for t in STANDARD_THRESHOLDS]
        assert values == sorted(values, reverse=True)

    def test_figure8_noncritical_blocks(self):
        meters = CriticalityMeters()
        meters.block_fetched(None)    # unknown PC -> non-critical everywhere
        meters.block_fetched(0.5)     # critical up to the 50% threshold
        pct = meters.noncritical_block_percent()
        assert pct[3] == pytest.approx(50.0)
        assert pct[75] == pytest.approx(100.0)

    def test_figure9_noncritical_writes(self):
        meters = CriticalityMeters()
        meters.block_written(0.9)
        meters.block_written(0.01)
        meters.block_written(None)
        pct = meters.noncritical_write_percent()
        assert pct[3] == pytest.approx(100.0 * 2 / 3)

    def test_agreement_counts_both_classes(self):
        meters = CriticalityMeters()
        meters.load_committed(0.9, blocked=True)    # predicted+true critical
        meters.load_committed(None, blocked=False)  # predicted+true noncrit
        meters.load_committed(0.9, blocked=False)   # false positive
        agree = meters.agreement_percent()
        assert agree[3] == pytest.approx(100.0 * 2 / 3)

    def test_empty_meters_are_zero(self):
        meters = CriticalityMeters()
        assert meters.noncritical_load_percent == 0.0
        assert all(v == 0.0 for v in meters.accuracy_percent().values())
