"""The Re-NUCA hybrid policy (the paper's contribution)."""

import pytest

from repro.common.errors import SimulationError
from repro.core.renuca import ReNucaPolicy
from repro.noc.mesh import Mesh


@pytest.fixture
def policy(config):
    return ReNucaPolicy(config, Mesh(config.noc))


class TestPlacement:
    def test_critical_goes_to_cluster(self, policy):
        core = 6
        for line in range(32):
            bank = policy.place(core, line, critical=True)
            assert bank in policy._rnuca.clusters[core]

    def test_noncritical_goes_to_snuca(self, policy):
        for line in range(32):
            assert policy.place(0, line, critical=False) == line & 15

    def test_consumes_criticality_flag(self, policy):
        assert policy.consumes_criticality


class TestLookupViaMbv:
    def test_unknown_line_looked_up_snuca(self, policy):
        # "When a cache line is brought to the cache for the first time,
        # we assume a cache line is not critical."
        assert policy.locate(4, 0x77) == 0x77 & 15

    def test_critical_allocation_switches_lookup(self, policy):
        core, line = 4, 0x77
        bank = policy.place(core, line, critical=True)
        policy.on_allocate(core, line, bank, critical=True)
        assert policy.locate(core, line) == bank

    def test_eviction_resets_lookup(self, policy):
        core, line = 4, 0x77
        bank = policy.place(core, line, critical=True)
        policy.on_allocate(core, line, bank, critical=True)
        policy.on_evict(line, bank, aux=(core, True))
        assert policy.locate(core, line) == line & 15

    def test_mapping_is_per_core(self, policy):
        line = 0x88
        policy.on_allocate(2, line, policy.place(2, line, True), critical=True)
        # Another core's TLB knows nothing about it.
        assert policy.locate(3, line) == line & 15

    def test_writeback_follows_recorded_mapping(self, policy):
        core, line = 1, 0x99
        bank = policy.place(core, line, critical=True)
        policy.on_allocate(core, line, bank, critical=True)
        assert policy.writeback_bank(core, line) == bank

    def test_eviction_without_owner_aux_raises(self, policy):
        with pytest.raises(SimulationError):
            policy.on_evict(0x1, 0, aux=None)


class TestCriticalityLifetime:
    def test_mapping_fixed_until_eviction(self, policy):
        """A line keeps its mapping for its whole on-chip lifetime."""
        core, line = 3, 0x123
        bank = policy.place(core, line, critical=True)
        policy.on_allocate(core, line, bank, critical=True)
        # Even if the PC later turns non-critical, lookups keep using the
        # recorded mapping until the LLC evicts the line.
        for _ in range(5):
            assert policy.locate(core, line) == bank


class TestAccounting:
    def test_allocation_mix(self, policy):
        policy.on_allocate(0, 1, 0, critical=True)
        policy.on_allocate(0, 2, 0, critical=False)
        policy.on_allocate(0, 3, 0, critical=False)
        assert policy.critical_fraction == pytest.approx(1 / 3)

    def test_reset_counters_keeps_mapping_state(self, policy):
        core, line = 0, 0x55
        policy.on_allocate(core, line, policy.place(core, line, True), critical=True)
        policy.reset_counters()
        assert policy.critical_fraction == 0.0
        assert policy.tlbs[core].mapping_bit(line)

    def test_full_reset_clears_tlbs(self, policy):
        core, line = 0, 0x55
        policy.on_allocate(core, line, 0, critical=True)
        policy.reset()
        assert not policy.tlbs[core].mapping_bit(line)

    def test_storage_overhead_matches_paper(self, policy):
        # 1 KB per core (L1I + L1D TLB instances), 16 KB for 16 cores.
        assert policy.storage_overhead_bytes() == 16 * 1024
