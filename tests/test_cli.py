"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_parses_to_none(self):
        assert build_parser().parse_args([]).command is None

    def test_no_command_prints_help_and_exits_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage: repro" in err
        assert "endoflife" in err  # full help, not just the usage line

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.workload == 1
        assert args.interval == 50_000
        assert "Re-NUCA" in args.schemes
        assert args.trace_out is None and args.profile is False

    def test_telemetry_flags_on_compare(self):
        args = build_parser().parse_args(
            ["compare", "--trace-out", "t.jsonl", "--profile"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.profile is True

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.workload == 1
        assert "Re-NUCA" in args.schemes

    def test_endoflife_defaults(self):
        args = build_parser().parse_args(["endoflife"])
        assert args.workload == 1
        assert args.ages == (0.5, 0.9, 1.1)
        assert args.fail_bank == []
        assert args.transient_rate == 0.0

    def test_endoflife_ages_parsed(self):
        args = build_parser().parse_args(["endoflife", "--ages", "0.25,0.75"])
        assert args.ages == (0.25, 0.75)

    def test_endoflife_bad_ages_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["endoflife", "--ages", "young"])

    def test_endoflife_fail_bank_parsed(self):
        args = build_parser().parse_args(
            ["endoflife", "--fail-bank", "3", "--fail-bank", "7:0.9"]
        )
        assert args.fail_bank == [(3, 0.0), (7, 0.9)]

    def test_endoflife_bad_fail_bank_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["endoflife", "--fail-bank", "three"])


class TestCommands:
    def test_config(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "16 cores" in out
        assert "32MB total" in out

    def test_workloads(self, capsys):
        assert main(["workloads", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "WL1:" in out and "WL10:" in out
        assert "high" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "namd", "--instructions", "15000"]) == 0
        out = capsys.readouterr().out
        assert "namd" in out and "WPKI" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--schemes", "S-NUCA", "Private",
            "--instructions", "10000", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S-NUCA" in out and "Private" in out
        assert "min life" in out

    def test_compare_bad_workload(self, capsys):
        assert main(["compare", "--workload", "99"]) == 2

    def test_trace_generation(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        code = main(["trace", "milc", str(out_file), "--instructions", "5000"])
        assert code == 0
        from repro.trace.fileio import load_trace

        trace, meta = load_trace(out_file)
        assert len(trace) > 0
        assert meta["extra"]["app"] == "milc"

    def test_stats_small(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main([
            "stats", "--schemes", "R-NUCA", "Re-NUCA",
            "--instructions", "8000", "--seed", "2",
            "--interval", "20000", "--trace-out", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-interval per-bank LLC writes" in out
        assert "bank0" in out and "bank15" in out  # heatmap rows
        assert "per-bank write CoV" in out
        from repro.telemetry import load_events

        events = load_events(trace)
        assert events
        assert {e.fields["scheme"] for e in events} == {"R-NUCA", "Re-NUCA"}

    def test_compare_trace_and_profile(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main([
            "compare", "--schemes", "S-NUCA", "--instructions", "6000",
            "--trace-out", str(trace), "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events to" in out
        assert "measure" in out and "stage1" in out  # profiler report
        from repro.telemetry import load_events

        assert all(e.fields["scheme"] == "S-NUCA" for e in load_events(trace))

    def test_endoflife_small(self, capsys):
        code = main([
            "endoflife", "--ages", "1.1", "--schemes", "S-NUCA",
            "--instructions", "5000", "--seed", "2",
            "--fail-bank", "3",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "S-NUCA" in captured.out
        assert "capacity" in captured.out
        assert "IPC retention" in captured.out
        assert "running S-NUCA" in captured.err  # progress narration


class TestErrorReporting:
    """ReproError subclasses become `error: ...` + exit 2, not tracebacks."""

    def test_unknown_app(self, tmp_path, capsys):
        code = main(["trace", "no-such-app", str(tmp_path / "x.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no-such-app" in err

    def test_unknown_scheme(self, capsys):
        code = main([
            "compare", "--schemes", "no-such-scheme", "--instructions", "5000",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no-such-scheme" in err

    def test_unknown_app_in_table2(self, capsys):
        code = main(["table2", "no-such-app"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_endoflife_bad_workload(self, capsys):
        code = main(["endoflife", "--workload", "99", "--ages", "0.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "workload" in err


class TestObservabilityCommands:
    """repro diff / report / bench-record and the --ledger/--progress flags."""

    def _sweep(self, tmp_path, out_name="matrix.json", extra=()):
        out = tmp_path / out_name
        ledger = tmp_path / "ledger.jsonl"
        code = main([
            "sweep", "--workloads", "1", "--schemes", "S-NUCA", "Re-NUCA",
            "--instructions", "6000", "--seed", "1",
            "--ledger", str(ledger), "--out", str(out), *extra,
        ])
        assert code == 0
        return out, ledger

    def test_diff_unchanged_rerun_exits_zero(self, tmp_path, capsys):
        base, _ = self._sweep(tmp_path, "base.json")
        cur, _ = self._sweep(tmp_path, "cur.json")
        assert main(["diff", str(base), str(cur)]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_diff_drift_exits_one(self, tmp_path, capsys):
        import json

        base, _ = self._sweep(tmp_path, "base.json")
        drifted = json.loads(base.read_text())
        for cell in drifted["results"]:
            cell["per_core_ipc"] = [v * 1.2 for v in cell["per_core_ipc"]]
        cur = tmp_path / "drifted.json"
        cur.write_text(json.dumps(drifted))
        assert main(["diff", str(base), str(cur)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "violation" in out

    def test_diff_missing_file_exits_two(self, tmp_path, capsys):
        base, _ = self._sweep(tmp_path)
        assert main(["diff", str(base), str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_against_ledger(self, tmp_path, capsys):
        base, ledger = self._sweep(tmp_path)
        assert main(["diff", str(base), str(ledger)]) == 0

    def test_report_self_contained_html(self, tmp_path, capsys):
        matrix, ledger = self._sweep(tmp_path)
        html = tmp_path / "report.html"
        code = main([
            "report", "--matrix", str(matrix), "--ledger", str(ledger),
            "--html", str(html), "--title", "smoke",
        ])
        assert code == 0
        text = html.read_text()
        assert text.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in text and "smoke" in text
        for banned in ("http://", "https://", "<script", "<link"):
            assert banned not in text

    def test_bench_record_appends_points(self, tmp_path, capsys):
        matrix, ledger = self._sweep(tmp_path)
        out = tmp_path / "BENCH_sweep.json"
        for expected in (1, 2):
            code = main([
                "bench-record", "--matrix", str(matrix),
                "--ledger", str(ledger), "--out", str(out),
            ])
            assert code == 0
        from repro.obs.bench import load_bench_trajectory

        points = load_bench_trajectory(out)
        assert len(points) == 2
        assert "S-NUCA" in points[0]["schemes"]

    def test_sweep_progress_live_line(self, tmp_path, capsys):
        self._sweep(tmp_path, extra=("--progress",))
        err = capsys.readouterr().err
        assert "2/2 cells" in err
        assert "running" not in err.rsplit("\r", 1)[-1]  # final line settled

    def test_stats_registry_only_without_intervals(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        code = main([
            "stats", "--schemes", "Re-NUCA", "--instructions", "6000",
            "--seed", "2", "--interval", "0", "--ledger", str(ledger),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "registry-only view" in out
        assert "per-interval per-bank LLC writes" not in out
        from repro.obs.ledger import RunLedger

        records = RunLedger(ledger).load()
        assert len(records) == 1 and records[0].scheme == "Re-NUCA"
