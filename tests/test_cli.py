"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.workload == 1
        assert "Re-NUCA" in args.schemes


class TestCommands:
    def test_config(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "16 cores" in out
        assert "32MB total" in out

    def test_workloads(self, capsys):
        assert main(["workloads", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "WL1:" in out and "WL10:" in out
        assert "high" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "namd", "--instructions", "15000"]) == 0
        out = capsys.readouterr().out
        assert "namd" in out and "WPKI" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--schemes", "S-NUCA", "Private",
            "--instructions", "10000", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S-NUCA" in out and "Private" in out
        assert "min life" in out

    def test_compare_bad_workload(self, capsys):
        assert main(["compare", "--workload", "99"]) == 2

    def test_trace_generation(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        code = main(["trace", "milc", str(out_file), "--instructions", "5000"])
        assert code == 0
        from repro.trace.fileio import load_trace

        trace, meta = load_trace(out_file)
        assert len(trace) > 0
        assert meta["extra"]["app"] == "milc"
