"""Interval ROB model: head stalls, back-pressure, MLP hiding."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.cpu.rob import ReorderBuffer


def drain_all(rob):
    return rob.drain()


class TestDispatchCommit:
    def test_pure_compute_runs_at_base_rate(self):
        rob = ReorderBuffer(128, base_cpi=0.5)
        rob.dispatch(1000)
        rob.drain()
        assert rob.cycles == pytest.approx(500.0, rel=0.05)
        assert rob.ipc() == pytest.approx(2.0, rel=0.05)

    def test_fast_load_does_not_stall(self):
        rob = ReorderBuffer(128, base_cpi=0.5, pipeline_depth=12)
        rob.dispatch(10)
        rob.push_load(rob.dispatch_clock + 2.0, token=0)  # L1 hit
        events = rob.drain()
        assert len(events) == 1
        assert events[0].stall_cycles == 0.0

    def test_slow_isolated_load_stalls(self):
        rob = ReorderBuffer(128, base_cpi=0.5, pipeline_depth=12)
        rob.dispatch(10)
        t = rob.dispatch_clock
        rob.push_load(t + 300.0, token=7)
        events = rob.drain()
        assert events[0].token == 7
        assert events[0].stall_cycles == pytest.approx(300.0 - 12.0, abs=1.0)
        assert events[0].blocked_head

    def test_stall_extends_total_cycles(self):
        rob = ReorderBuffer(128, base_cpi=0.5)
        rob.dispatch(10)
        rob.push_load(rob.dispatch_clock + 300.0, token=0)
        rob.dispatch(10)
        rob.drain()
        assert rob.cycles >= 300.0

    def test_commit_order_is_program_order(self):
        rob = ReorderBuffer(128, base_cpi=0.5)
        tokens = []
        for i in range(5):
            rob.dispatch(3)
            # Completion times deliberately out of order.
            rob.push_load(rob.dispatch_clock + (100 - i * 20), token=i)
        events = rob.drain()
        assert [e.token for e in events] == [0, 1, 2, 3, 4]


class TestMlpHiding:
    def test_overlapped_misses_share_one_stall(self):
        """A burst of independent misses: only the leader pays heavily."""
        rob = ReorderBuffer(128, base_cpi=0.5)
        base_latency = 300.0
        for i in range(6):
            rob.dispatch(4)
            rob.push_load(rob.dispatch_clock + base_latency, token=i)
        events = rob.drain()
        stalls = [e.stall_cycles for e in events]
        assert stalls[0] > 200
        assert all(s < 30 for s in stalls[1:])

    def test_serial_chain_stalls_every_load(self):
        """Dependent misses (chase): each one blocks the head."""
        rob = ReorderBuffer(128, base_cpi=0.5)
        ready = 0.0
        for i in range(5):
            rob.dispatch(4)
            issue = max(rob.dispatch_clock, ready)
            complete = issue + 300.0
            rob.push_load(complete, token=i)
            ready = complete
        events = rob.drain()
        blocked = sum(e.blocked_head for e in events)
        assert blocked == 5


class TestBackPressure:
    def test_dispatch_blocked_by_full_rob(self):
        rob = ReorderBuffer(32, base_cpi=0.25)
        rob.dispatch(1)
        rob.push_load(rob.dispatch_clock + 1000.0, token=0)
        # Dispatch far beyond the ROB size: must wait for the load.
        rob.dispatch(100)
        assert rob.dispatch_clock >= 1000.0

    def test_dispatch_not_blocked_within_window(self):
        rob = ReorderBuffer(128, base_cpi=0.25)
        rob.dispatch(1)
        rob.push_load(rob.dispatch_clock + 1000.0, token=0)
        rob.dispatch(100)  # fits in the ROB alongside the load
        assert rob.dispatch_clock < 100

    def test_occupancy_bounded(self):
        rob = ReorderBuffer(16, base_cpi=0.5)
        for i in range(50):
            rob.dispatch(1)
            rob.push_load(rob.dispatch_clock + 5.0, token=i)
        assert rob.occupancy <= 16 + 1

    def test_gap_larger_than_rob(self):
        rob = ReorderBuffer(16, base_cpi=0.5)
        rob.dispatch(1000)  # must not corrupt state
        rob.drain()
        assert rob.commit_index == 1000
        assert rob.cycles == pytest.approx(500.0, rel=0.1)


class TestAccounting:
    def test_blocked_counter(self):
        rob = ReorderBuffer(128, base_cpi=0.5)
        rob.dispatch(5)
        rob.push_load(rob.dispatch_clock + 500.0, token=0)
        rob.dispatch(5)
        rob.push_load(rob.dispatch_clock + 1.0, token=1)
        rob.drain()
        assert rob.loads_committed == 2
        assert rob.loads_blocked == 1
        assert rob.total_stall_cycles > 400

    def test_errors(self):
        with pytest.raises(ConfigError):
            ReorderBuffer(4, base_cpi=0.5)
        with pytest.raises(ConfigError):
            ReorderBuffer(128, base_cpi=0.0)
        rob = ReorderBuffer(128, base_cpi=0.5)
        with pytest.raises(SimulationError):
            rob.dispatch(-1)

    def test_loads_must_be_in_program_order(self):
        rob = ReorderBuffer(128, base_cpi=0.5)
        rob.dispatch(1)
        rob.push_load(10.0, token=0)
        with pytest.raises(SimulationError):
            rob.push_load(10.0, token=1)  # no dispatch in between
