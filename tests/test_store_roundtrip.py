"""Property-style round-trip coverage for the result store.

Every field of :class:`~repro.sim.metrics.WorkloadSchemeResult` —
including the optional interval series and the fault/degradation
metrics — must survive ``save_matrix``/``load_matrix`` bit-for-bit;
these tests generate randomised results with hypothesis and assert the
round trip is the identity on the documented JSON view.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.sim.store import (
    atomic_write_text,
    load_matrix,
    result_from_dict,
    result_to_dict,
    save_matrix,
)
from repro.telemetry.intervals import IntervalSeries

finite = st.floats(min_value=-1e12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
rate = st.floats(min_value=0.0, max_value=1.0,
                 allow_nan=False, allow_infinity=False)
count = st.integers(min_value=0, max_value=2**48)


@st.composite
def interval_series(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    names = draw(st.lists(
        st.sampled_from(["llc.hits", "llc.misses", "noc.hops"]),
        min_size=1, max_size=3, unique=True,
    ))
    return IntervalSeries(
        interval_instructions=draw(st.integers(min_value=1, max_value=10**6)),
        accesses=[draw(count) for _ in range(n)],
        instructions=[draw(count) for _ in range(n)],
        cycles=[draw(finite) for _ in range(n)],
        samples=[
            {name: draw(finite) for name in names} for _ in range(n)
        ],
    )


@st.composite
def results(draw, workload="WL1", scheme="S-NUCA"):
    cores = draw(st.integers(min_value=1, max_value=8))
    banks = draw(st.integers(min_value=1, max_value=16))

    def farray(n, strategy=finite):
        return np.asarray([draw(strategy) for _ in range(n)])

    return WorkloadSchemeResult(
        workload=workload,
        scheme=scheme,
        apps=tuple(draw(st.sampled_from(["hmmer", "namd", "mcf", "milc"]))
                   for _ in range(cores)),
        per_core_ipc=farray(cores),
        per_core_instructions=np.asarray(
            [draw(count) for _ in range(cores)], dtype=np.int64),
        per_core_cycles=farray(cores),
        bank_writes=np.asarray(
            [draw(count) for _ in range(banks)], dtype=np.int64),
        bank_lifetimes=farray(banks),
        elapsed_cycles=draw(finite),
        llc_fetch_hit_rate=draw(rate),
        llc_mean_fetch_latency=draw(finite),
        noc_mean_hops=draw(finite),
        critical_fill_fraction=draw(rate),
        llc_fetches=draw(count),
        llc_writebacks=draw(count),
        noc_total_hops=draw(count),
        energy_mj=draw(finite),
        age_fraction=draw(rate),
        effective_capacity=draw(rate),
        dead_banks=draw(st.integers(min_value=0, max_value=16)),
        remap_traffic=draw(count),
        fills_skipped=draw(count),
        transient_faults=draw(count),
        intervals=draw(st.one_of(st.none(), interval_series())),
    )


class TestResultRoundTrip:
    @given(result=results())
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip_is_identity(self, result):
        thawed = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert result_to_dict(thawed) == result_to_dict(result)

    @given(result=results())
    @settings(max_examples=20, deadline=None)
    def test_every_scalar_field_survives(self, result):
        thawed = result_from_dict(result_to_dict(result))
        for name in (
            "workload", "scheme", "apps", "elapsed_cycles",
            "llc_fetch_hit_rate", "llc_mean_fetch_latency", "noc_mean_hops",
            "critical_fill_fraction", "llc_fetches", "llc_writebacks",
            "noc_total_hops", "energy_mj", "age_fraction",
            "effective_capacity",
            "dead_banks", "remap_traffic", "fills_skipped",
            "transient_faults",
        ):
            assert getattr(thawed, name) == getattr(result, name), name
        for name in ("per_core_ipc", "per_core_instructions",
                     "per_core_cycles", "bank_writes", "bank_lifetimes"):
            np.testing.assert_array_equal(
                getattr(thawed, name), getattr(result, name), err_msg=name
            )
        if result.intervals is None:
            assert thawed.intervals is None
        else:
            assert thawed.intervals.to_dict() == result.intervals.to_dict()

    @given(result=results())
    @settings(max_examples=10, deadline=None)
    def test_matrix_file_round_trip(self, result, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "matrix.json"
        matrix = MatrixResult(label="prop", schemes=(result.scheme,),
                              workloads=(result.workload,))
        matrix.add(result)
        save_matrix(path, matrix)
        loaded = load_matrix(path)
        assert loaded.label == "prop"
        assert loaded.schemes == (result.scheme,)
        assert loaded.workloads == (result.workload,)
        cell = loaded.get(result.workload, result.scheme)
        assert result_to_dict(cell) == result_to_dict(result)


class TestAtomicWrite:
    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_save_matrix_leaves_no_temp_files(self, tmp_path):
        matrix = MatrixResult(label="t", schemes=(), workloads=())
        save_matrix(tmp_path / "m.json", matrix)
        assert [p.name for p in tmp_path.iterdir()] == ["m.json"]
        assert load_matrix(tmp_path / "m.json").label == "t"

    def test_failed_write_keeps_previous_version(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("good")

        with pytest.raises(TypeError):
            atomic_write_text(path, None)  # .write(None) raises mid-write
        assert path.read_text() == "good"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
