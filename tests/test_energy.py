"""LLC energy model: coefficients, accumulation, SRAM-vs-ReRAM story."""

import pytest

from repro.common.errors import ConfigError
from repro.reram.energy import (
    RERAM,
    SRAM_32NM,
    EnergyCoefficients,
    LlcEnergyModel,
)


class TestCoefficients:
    def test_reram_write_tax(self):
        assert RERAM.write_pj > 5 * RERAM.read_pj

    def test_sram_leakage_dominates_reram(self):
        assert SRAM_32NM.leakage_mw_per_mb > 10 * RERAM.leakage_mw_per_mb

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            EnergyCoefficients("bad", read_pj=-1, write_pj=1, leakage_mw_per_mb=0)


class TestModel:
    def test_static_energy_scales_with_time_and_capacity(self):
        model = LlcEnergyModel(SRAM_32NM, capacity_mb=32)
        one = model.report(1.0)
        two = model.report(2.0)
        assert two.static_mj == pytest.approx(2 * one.static_mj)
        assert one.static_mj == pytest.approx(25.0 * 32 * 1.0)

    def test_dynamic_energy_counts_events(self):
        model = LlcEnergyModel(RERAM, capacity_mb=32)
        model.record(reads=1000, writes=100, noc_hops=500)
        report = model.report(0.0)
        assert report.read_mj == pytest.approx(60.0 * 1000 * 1e-9)
        assert report.write_mj == pytest.approx(600.0 * 100 * 1e-9)
        assert report.noc_mj == pytest.approx(12.0 * 500 * 1e-9)
        assert report.total_mj == pytest.approx(report.dynamic_mj)

    def test_record_accumulates(self):
        model = LlcEnergyModel(RERAM, capacity_mb=1)
        model.record(reads=1)
        model.record(reads=2)
        assert model.reads == 3

    def test_negative_counts_rejected(self):
        model = LlcEnergyModel(RERAM, capacity_mb=1)
        with pytest.raises(ConfigError):
            model.record(reads=-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LlcEnergyModel(RERAM, capacity_mb=0)


class TestPaperStory:
    def test_sram_llc_is_leakage_dominated(self):
        """Section I: 'standby power is up to 80% of their total power'."""
        sram = LlcEnergyModel(SRAM_32NM, capacity_mb=32)
        reram = LlcEnergyModel(RERAM, capacity_mb=32)
        # A second of moderately busy LLC: ~10M reads, 3M writes.
        for model in (sram, reram):
            model.record(reads=10_000_000, writes=3_000_000,
                         noc_hops=40_000_000)
        sram_report = sram.report(1.0)
        reram_report = reram.report(1.0)
        assert sram_report.static_fraction > 0.6
        assert reram_report.static_fraction < 0.35
        assert reram_report.total_mj < sram_report.total_mj

    def test_write_heavy_traffic_narrows_the_gap(self):
        """ReRAM's write energy erodes its advantage under write storms."""
        def totals(writes):
            sram = LlcEnergyModel(SRAM_32NM, capacity_mb=32)
            reram = LlcEnergyModel(RERAM, capacity_mb=32)
            for m in (sram, reram):
                m.record(reads=1_000_000, writes=writes)
            return (reram.report(0.05).total_mj, sram.report(0.05).total_mj)

        light_ratio = totals(100_000)[0] / totals(100_000)[1]
        heavy_ratio = totals(50_000_000)[0] / totals(50_000_000)[1]
        assert heavy_ratio > light_ratio


class TestResultIntegration:
    def test_energy_of_result(self):
        from repro.config import baseline_config
        from repro.reram.energy import energy_of_result
        from repro.sim.runner import Stage1Cache, run_workload
        from repro.trace.workloads import make_workloads

        config = baseline_config()
        workload = make_workloads(num_cores=16, count=1, seed=8)[0]
        result = run_workload(
            workload, "S-NUCA", config, seed=8,
            n_instructions=20_000, stage1=Stage1Cache(),
        )
        reram = energy_of_result(result, config, RERAM)
        sram = energy_of_result(result, config, SRAM_32NM)
        assert reram.total_mj > 0
        assert sram.static_fraction > reram.static_fraction
