"""The System façade."""

import pytest

from repro.common.errors import ReproError
from repro.sim.system import DEFAULT_SCHEMES, System
from repro.trace.workloads import Workload


@pytest.fixture(scope="module")
def system():
    return System(seed=7, n_instructions=15_000)


class TestWorkloadResolution:
    def test_by_index(self, system):
        assert system.workload(0).name == "WL1"

    def test_by_name(self, system):
        assert system.workload("WL3").name == "WL3"

    def test_passthrough(self, system):
        wl = system.workloads[1]
        assert system.workload(wl) is wl

    def test_bad_index(self, system):
        with pytest.raises(ReproError):
            system.workload(99)

    def test_bad_name(self, system):
        with pytest.raises(ReproError):
            system.workload("WL99")

    def test_wrong_size_workload(self, system):
        with pytest.raises(ReproError):
            system.workload(Workload("two", ("mcf", "namd")))


class TestSimulation:
    def test_characterize(self, system):
        result = system.characterize("namd")
        assert result.app == "namd"
        assert result.ipc > 0

    def test_characterize_memoised(self, system):
        assert system.characterize("namd") is system.characterize("namd")

    def test_run(self, system):
        result = system.run(0, "S-NUCA")
        assert result.scheme == "S-NUCA"
        assert result.ipc > 0

    def test_compare_and_summary(self, system):
        results = system.compare(0, schemes=("S-NUCA", "Private"))
        assert set(results) == {"S-NUCA", "Private"}
        text = system.summary(results)
        assert "Private" in text and "min life" in text

    def test_default_schemes_are_the_paper_five(self):
        assert set(DEFAULT_SCHEMES) == {
            "S-NUCA", "R-NUCA", "Re-NUCA", "Private", "Naive"
        }
