"""D-NUCA with migration (the motivational baseline) + its LLC integration."""

import pytest

from repro.common.errors import ConfigError, ReproError, SimulationError
from repro.config import baseline_config, scaled_config
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.nuca.dnuca import DNucaPolicy
from repro.nuca.kernel import kernel_supported
from repro.reram.wear import WearTracker
from repro.sim.runner import Stage1Cache, run_workload
from repro.sim.store import result_to_dict
from repro.trace.workloads import make_workloads


@pytest.fixture
def mesh(config):
    return Mesh(config.noc)


@pytest.fixture
def llc(config):
    mesh = Mesh(config.noc)
    wear = WearTracker(config.num_banks)
    policy = make_policy("D-NUCA", config, mesh, wear)
    return NucaLLC(config, policy, mesh, MainMemory(config.memory), wear)


class TestPolicy:
    def test_initial_placement_static_home(self, mesh):
        policy = DNucaPolicy(mesh)
        assert policy.place(5, 0x123, critical=False) == 0x3

    def test_migration_after_promotion_hits(self, mesh):
        policy = DNucaPolicy(mesh, promotion_hits=2)
        line = 0x3  # home bank 3; requester at node 12 (far corner)
        policy.on_allocate(12, line, 3, critical=False)
        assert policy.migration_target(12, line) is None  # 1st hit
        target = policy.migration_target(12, line)        # 2nd hit
        assert target is not None
        assert mesh.distance(target, 12) < mesh.distance(3, 12)
        assert policy.locate(12, line) == target
        assert policy.migrations == 1

    def test_no_migration_when_local(self, mesh):
        policy = DNucaPolicy(mesh, promotion_hits=1)
        policy.on_allocate(7, 0x7, 7, critical=False)
        assert policy.migration_target(7, 0x7) is None

    def test_line_eventually_reaches_requester(self, mesh):
        policy = DNucaPolicy(mesh, promotion_hits=1)
        policy.on_allocate(12, 0x3, 3, critical=False)
        for _ in range(mesh.distance(3, 12)):
            policy.migration_target(12, 0x3)
        assert policy.locate(12, 0x3) == 12

    def test_untracked_migration_rejected(self, mesh):
        with pytest.raises(SimulationError):
            DNucaPolicy(mesh).migration_target(0, 0x99)

    def test_bad_threshold_rejected(self, mesh):
        with pytest.raises(ConfigError):
            DNucaPolicy(mesh, promotion_hits=0)


class TestLlcIntegration:
    def test_hits_trigger_migration_and_wear(self, llc):
        core, line = 12, 0x3  # home bank 3, far from core 12
        llc.fetch(core, line, 0.0, False)          # fill at home (1 write)
        for t in range(1, 7):
            llc.fetch(core, line, float(t * 1000), False)
        # The line moved toward core 12, each hop a ReRAM write.
        assert llc.policy.migrations >= 2
        assert llc.wear.total_writes() == 1 + llc.policy.migrations
        bank = llc.resident_bank_of(line)
        assert llc.mesh.distance(bank, core) < llc.mesh.distance(3, core)

    def test_migrated_line_still_found(self, llc):
        core, line = 15, 0x0
        llc.fetch(core, line, 0.0, False)
        for t in range(1, 10):
            _lat, hit = llc.fetch(core, line, float(t * 1000), False)
            assert hit  # the location table always finds it

    def test_migration_wear_exceeds_rnuca(self, config):
        """The paper's point: migration adds write traffic R-NUCA avoids."""
        def total_wear(scheme):
            mesh = Mesh(config.noc)
            wear = WearTracker(config.num_banks)
            policy = make_policy(scheme, config, mesh, wear)
            llc = NucaLLC(config, policy, mesh, MainMemory(config.memory), wear)
            for line in range(64):
                for t in range(6):  # repeated far-core reuse
                    llc.fetch(12, line, float(t * 500 + line), False)
            return llc.wear.total_writes()

        assert total_wear("D-NUCA") > total_wear("R-NUCA")


class TestKernelGate:
    """The replay-kernel gate must route D-NUCA to the reference path.

    Migration rewrites line→bank residency mid-replay, which the
    vectorized kernel cannot reproduce; a silent kernel engagement here
    would produce wrong wear numbers, so the gate decision itself is
    pinned by these tests.
    """

    def test_kernel_unsupported_for_dnuca(self, llc):
        assert kernel_supported(llc) is False

    def test_kernel_supported_for_paper_schemes(self, config):
        for scheme in ("S-NUCA", "R-NUCA", "Re-NUCA", "Private", "Naive"):
            mesh = Mesh(config.noc)
            wear = WearTracker(config.num_banks)
            policy = make_policy(scheme, config, mesh, wear)
            plain = NucaLLC(config, policy, mesh, MainMemory(config.memory),
                            wear)
            assert kernel_supported(plain), scheme

    def test_forcing_kernel_on_dnuca_raises(self):
        config = scaled_config(baseline_config(), cores=4)
        workload = make_workloads(num_cores=4, seed=7)[0]
        with pytest.raises(ReproError, match="kernel"):
            run_workload(workload, "D-NUCA", config, seed=7,
                         n_instructions=2000, use_kernel=True)

    def test_dnuca_auto_matches_reference_path(self):
        """Auto kernel selection must equal the pinned reference replay."""
        config = scaled_config(baseline_config(), cores=4)
        workload = make_workloads(num_cores=4, seed=7)[0]
        stage1 = Stage1Cache()
        auto = run_workload(workload, "D-NUCA", config, seed=7,
                            n_instructions=4000, stage1=stage1)
        pinned = run_workload(workload, "D-NUCA", config, seed=7,
                              n_instructions=4000, stage1=stage1,
                              use_kernel=False)
        assert result_to_dict(auto) == result_to_dict(pinned)
