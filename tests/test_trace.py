"""Trace layer: profiles (Table II), parameter inversion, generation,
workload composition."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.common.rng import derive_rng
from repro.trace.generator import (
    KIND_CHASE_HIT,
    KIND_CHASE_MISS,
    KIND_HOT,
    KIND_MID,
    KIND_STREAM,
    PCS_PER_APP,
    TRACE_DTYPE,
    bundles_for_instructions,
    generate_trace,
    trace_instruction_count,
)
from repro.trace.profiles import (
    ALL_APPS,
    CRITICALITY_STUDY_APPS,
    apps_by_intensity,
    get_profile,
    intensity_class,
)
from repro.trace.synthetic import (
    CHASE_RES_BASE,
    derive_params,
    warm_sets,
)
from repro.trace.workloads import Workload, make_workloads, single_app_workload


class TestProfiles:
    def test_all_22_apps_present(self):
        assert len(ALL_APPS) == 22

    def test_table2_spot_values(self):
        mcf = get_profile("mcf")
        assert mcf.wpki == 68.67
        assert mcf.mpki == 55.29
        assert mcf.hitrate == 0.20
        assert mcf.ipc == 0.07

    def test_unknown_app_rejected(self):
        with pytest.raises(TraceError):
            get_profile("doom")

    def test_intensity_classification(self):
        assert intensity_class(get_profile("mcf")) == "high"
        assert intensity_class(get_profile("bzip2")) == "medium"
        assert intensity_class(get_profile("namd")) == "low"

    def test_intensity_groups_cover_everything(self):
        groups = apps_by_intensity()
        assert sum(len(v) for v in groups.values()) == 22
        assert len(groups["high"]) >= 7  # the paper's heavy hitters

    def test_study_apps_exist(self):
        for name in CRITICALITY_STUDY_APPS:
            get_profile(name)


class TestDerivation:
    def test_write_fraction_bounded(self):
        for profile in ALL_APPS:
            params = derive_params(profile)
            assert 0.0 <= params.write_fraction <= 1.0

    def test_miss_rates_follow_mpki(self):
        heavy = derive_params(get_profile("mcf"))
        light = derive_params(get_profile("namd"))
        assert heavy.stream_pki + heavy.chase_miss_pki > 20
        assert light.stream_pki + light.chase_miss_pki < 1

    def test_hit_traffic_follows_hitrate(self):
        omnetpp = derive_params(get_profile("omnetpp"))
        # hit-rate 0.96 -> resident traffic far exceeds miss traffic
        assert omnetpp.mid_pki + omnetpp.chase_hit_pki > 5 * (
            omnetpp.stream_pki + omnetpp.chase_miss_pki
        )

    def test_chase_share_splits_populations(self):
        profile = get_profile("mcf")  # chase_share 0.55
        params = derive_params(profile)
        assert params.chase_miss_pki > params.stream_pki

    def test_regions_defeat_l2(self):
        for profile in ALL_APPS:
            params = derive_params(profile)
            assert params.mid_lines >= 3 * 4096
            assert params.chase_res_lines >= 4096

    def test_record_pki_includes_rmw(self):
        params = derive_params(get_profile("streamL"))  # wf = 1.0
        assert params.record_pki > params.bundle_pki

    def test_warm_sets_fit_nominal_l3(self, config):
        for profile in ALL_APPS:
            params = derive_params(profile, config)
            total = sum(len(block) for block in warm_sets(params)["l3"])
            assert total <= config.l3_bank.num_lines


class TestGenerator:
    @pytest.fixture
    def params(self):
        return derive_params(get_profile("mcf"))

    def test_dtype(self, params, rng):
        trace = generate_trace(params, 1000, rng)
        assert trace.dtype == TRACE_DTYPE

    def test_deterministic(self, params):
        a = generate_trace(params, 500, derive_rng(1, "t"))
        b = generate_trace(params, 500, derive_rng(1, "t"))
        assert np.array_equal(a, b)

    def test_population_mix_matches_rates(self, params, rng):
        trace = generate_trace(params, 60_000, rng)
        primary = trace[~trace["is_write"] | (trace["kind"] == KIND_HOT)]
        frac_hot = np.mean(primary["kind"] == KIND_HOT)
        expected = params.hot_pki / params.bundle_pki
        assert frac_hot == pytest.approx(expected, abs=0.02)

    def test_stream_is_sequential(self, params, rng):
        trace = generate_trace(params, 20_000, rng)
        stream = trace[(trace["kind"] == KIND_STREAM) & ~trace["is_write"]]
        lines = stream["line"]
        assert np.all(np.diff(lines) == 1)

    def test_stream_cursor_continues(self, params):
        rng1, rng2 = derive_rng(0, "a"), derive_rng(0, "a")
        whole = generate_trace(params, 4000, rng1)
        first = generate_trace(params, 2000, rng2)
        n_stream = int(np.count_nonzero((first["kind"] == KIND_STREAM) & ~first["is_write"]))
        n_mid = int(np.count_nonzero((first["kind"] == KIND_MID) & ~first["is_write"]))
        second = generate_trace(params, 2000, rng2, stream_cursor=n_stream, mid_cursor=n_mid)
        w_stream = whole[(whole["kind"] == KIND_STREAM) & ~whole["is_write"]]["line"]
        c_stream = np.concatenate([
            first[(first["kind"] == KIND_STREAM) & ~first["is_write"]]["line"],
            second[(second["kind"] == KIND_STREAM) & ~second["is_write"]]["line"],
        ])
        # chunked generation continues the same ascending sequence
        assert np.all(np.diff(c_stream) == 1)
        assert c_stream[0] == w_stream[0]

    def test_chase_records_are_dependent(self, params, rng):
        trace = generate_trace(params, 10_000, rng)
        chase = trace[np.isin(trace["kind"], (KIND_CHASE_MISS, KIND_CHASE_HIT))]
        loads = chase[~chase["is_write"]]
        assert np.all(loads["dep"])

    def test_non_chase_loads_independent(self, params, rng):
        trace = generate_trace(params, 10_000, rng)
        others = trace[np.isin(trace["kind"], (KIND_HOT, KIND_MID, KIND_STREAM))]
        assert not np.any(others["dep"])

    def test_chase_hit_in_own_region(self, params, rng):
        trace = generate_trace(params, 20_000, rng)
        chit = trace[trace["kind"] == KIND_CHASE_HIT]["line"]
        assert np.all(chit >= CHASE_RES_BASE)
        assert np.all(chit < CHASE_RES_BASE + params.chase_res_lines)

    def test_chase_hit_popularity_skewed(self, params, rng):
        trace = generate_trace(params, 60_000, rng)
        chit = trace[(trace["kind"] == KIND_CHASE_HIT) & ~trace["is_write"]]["line"]
        # Log-uniform popularity: the hottest sqrt(N) lines draw about
        # half of all touches, under any rank-to-address scattering.
        _, counts = np.unique(chit, return_counts=True)
        counts = np.sort(counts)[::-1]
        head = int(np.sqrt(params.chase_res_lines))
        assert 0.3 < counts[:head].sum() / counts.sum() < 0.75

    def test_rmw_store_follows_load_same_line(self, params, rng):
        trace = generate_trace(params, 20_000, rng)
        stores = np.flatnonzero(trace["is_write"] & (trace["kind"] != KIND_HOT))
        assert len(stores) > 0
        for idx in stores[:200]:
            assert trace["line"][idx] == trace["line"][idx - 1]
            assert not trace["is_write"][idx - 1]

    def test_write_fraction_controls_stores(self, rng):
        params = derive_params(get_profile("streamL"))  # wf = 1.0
        trace = generate_trace(params, 5000, rng)
        stream_loads = np.count_nonzero((trace["kind"] == KIND_STREAM) & ~trace["is_write"])
        stream_stores = np.count_nonzero((trace["kind"] == KIND_STREAM) & trace["is_write"])
        assert stream_stores == stream_loads

    def test_base_line_offsets_everything(self, params, rng):
        trace = generate_trace(params, 1000, rng, base_line=1 << 40)
        assert np.all(trace["line"] >= 1 << 40)

    def test_pcs_within_app_budget(self, params, rng):
        trace = generate_trace(params, 10_000, rng)
        assert np.all(trace["pc"] < PCS_PER_APP)

    def test_instruction_count_near_target(self, params, rng):
        n_instr = 100_000
        bundles = bundles_for_instructions(params, n_instr)
        trace = generate_trace(params, bundles, rng)
        measured = trace_instruction_count(trace)
        assert measured == pytest.approx(n_instr, rel=0.05)

    def test_zero_bundles_rejected(self, params, rng):
        with pytest.raises(TraceError):
            generate_trace(params, 0, rng)


class TestWorkloads:
    def test_ten_workloads_of_16(self):
        wls = make_workloads(num_cores=16)
        assert len(wls) == 10
        assert all(wl.num_cores == 16 for wl in wls)

    def test_deterministic_given_seed(self):
        a = make_workloads(num_cores=16, seed=3)
        b = make_workloads(num_cores=16, seed=3)
        assert [wl.apps for wl in a] == [wl.apps for wl in b]

    def test_every_workload_mixes_intensities(self):
        for wl in make_workloads(num_cores=16):
            classes = {intensity_class(p) for p in wl.profiles()}
            assert "high" in classes
            assert classes & {"medium", "low"}

    def test_intensity_varies_across_workloads(self):
        wls = make_workloads(num_cores=16)
        high_counts = {
            sum(intensity_class(p) == "high" for p in wl.profiles()) for wl in wls
        }
        assert len(high_counts) >= 3

    def test_scaled_core_counts(self):
        wls = make_workloads(num_cores=4)
        assert all(wl.num_cores == 4 for wl in wls)

    def test_single_app_workload(self):
        wl = single_app_workload("mcf", num_cores=4)
        assert wl.apps == ("mcf",) * 4

    def test_invalid_app_in_workload_rejected(self):
        with pytest.raises(TraceError):
            Workload("bad", ("nonexistent",))

    def test_app_names_are_plain_strings(self):
        for wl in make_workloads(num_cores=16):
            assert all(type(a) is str for a in wl.apps)
