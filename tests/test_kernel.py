"""Vectorized stage-2 replay kernel: equivalence + engine unit tests.

The kernel's contract is *field-for-field identical* results to the
reference object-graph path for every supported scheme (see
``docs/PERFORMANCE.md``).  The equivalence class below drives both
paths from the same stage-1 memo and compares every result field,
including the float accumulations; the unit classes cover the array
engine's batched prefill, the support gate and the ``use_kernel``
tri-state.
"""

import dataclasses

import numpy as np
import pytest

from repro.common.errors import ReproError, SimulationError
from repro.config import baseline_config, scaled_config
from repro.nuca.kernel import ArrayBanks, kernel_supported
from repro.sim.calibrate import config_signature
from repro.sim.runner import Stage1Cache, prepare_replay, run_workload
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload

INSTR = 6_000
SCHEMES = ("S-NUCA", "Private", "R-NUCA", "Naive", "Re-NUCA")
SEEDS = (3, 11)

CFG8 = scaled_config(baseline_config(), cores=8)
MIX8 = Workload(
    "kmix8",
    ("mcf", "lbm", "omnetpp", "xalancbmk",
     "milc", "sjeng", "povray", "hmmer"),
)


@pytest.fixture(scope="module")
def stage1():
    return Stage1Cache()


@pytest.fixture(scope="module")
def pair():
    """Memoised (reference, kernel) result pairs per (scheme, seed)."""
    stage1 = Stage1Cache()
    cache: dict[tuple, tuple] = {}

    def get(scheme, seed):
        key = (scheme, seed)
        if key not in cache:
            cache[key] = tuple(
                run_workload(
                    MIX8, scheme, CFG8, seed=seed, n_instructions=INSTR,
                    stage1=stage1, use_kernel=use_kernel,
                )
                for use_kernel in (False, True)
            )
        return cache[key]

    return get


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme", SCHEMES)
class TestKernelEquivalence:
    def test_headline_metrics(self, pair, scheme, seed):
        ref, fast = pair(scheme, seed)
        assert np.array_equal(ref.bank_writes, fast.bank_writes)
        assert ref.noc_total_hops == fast.noc_total_hops
        assert ref.llc_fetch_hit_rate == fast.llc_fetch_hit_rate
        assert np.array_equal(ref.per_core_ipc, fast.per_core_ipc)

    def test_every_field_identical(self, pair, scheme, seed):
        ref, fast = pair(scheme, seed)
        for field in dataclasses.fields(ref):
            a = getattr(ref, field.name)
            b = getattr(fast, field.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), field.name
            else:
                assert a == b, field.name


class TestArrayBanks:
    def _state(self):
        return ArrayBanks(num_banks=2, num_sets=4, assoc=2, index_shift=6)

    def test_prefill_scatters_in_order(self):
        state = self._state()
        lines = np.array([0x100, 0x200, 0x300], dtype=np.int64)
        gsets = np.array([0, 0, 5], dtype=np.int64)
        state.prefill_many(lines, gsets, dirty=np.array([True, False, True]))
        assert state.tags[0].tolist() == [0x100, 0x200]
        assert state.tags[5].tolist() == [0x300, -1]
        # LRU -> MRU within the set follows input order.
        assert state.age[0, 0] < state.age[0, 1]
        assert state.dirty[0].tolist() == [True, False]
        assert state.occ.tolist() == [2, 0, 0, 0, 0, 1, 0, 0]
        assert state.index == {0x100: 0, 0x200: 1, 0x300: 10}

    def test_prefill_unsorted_batch_matches_sorted(self):
        a, b = self._state(), self._state()
        lines = np.array([1, 2, 3, 4], dtype=np.int64)
        gsets = np.array([0, 1, 0, 2], dtype=np.int64)
        a.prefill_many(lines, gsets)
        order = np.argsort(gsets, kind="stable")
        b.prefill_many(lines[order], gsets[order])
        assert np.array_equal(a.tags, b.tags)
        assert np.array_equal(a.occ, b.occ)
        assert a.index == b.index

    def test_prefill_overflow_raises(self):
        state = self._state()
        lines = np.arange(3, dtype=np.int64)
        gsets = np.zeros(3, dtype=np.int64)
        with pytest.raises(SimulationError, match="overflows"):
            state.prefill_many(lines, gsets)

    def test_prefill_duplicate_line_raises(self):
        state = self._state()
        lines = np.array([7, 7], dtype=np.int64)
        gsets = np.array([0, 1], dtype=np.int64)
        with pytest.raises(SimulationError, match="duplicate"):
            state.prefill_many(lines, gsets)

    def test_prefill_index_false_leaves_memo_empty(self):
        state = self._state()
        state.prefill_many(
            np.array([7, 7], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            index=False,
        )
        assert state.index == {}
        assert state.occ.tolist()[:2] == [1, 1]

    def test_from_llc_lazy_payloads_keeps_set_views(self, stage1):
        prep = prepare_replay(
            MIX8, "S-NUCA", CFG8, seed=3, n_instructions=INSTR, stage1=stage1
        )
        eager = ArrayBanks.from_llc(prep.llc)
        lazy = ArrayBanks.from_llc(prep.llc, index=False, lazy_payloads=True)
        assert np.array_equal(eager.tags, lazy.tags)
        assert np.array_equal(eager.occ, lazy.occ)
        assert lazy.index == {}
        assert eager.set_dicts is None
        # Way k of a warm set is the k-th value of its live dict, so the
        # lazy path can resolve dirty flags positionally.
        total_sets = lazy.num_banks * lazy.num_sets
        assert len(lazy.set_dicts) == total_sets
        for gs in range(total_sets):
            ways = list(lazy.set_dicts[gs].values())
            for way, payload in enumerate(ways):
                assert bool(payload[0]) == bool(eager.dirty[gs, way])


class TestKernelGate:
    def test_supported_on_pristine_run(self, stage1):
        prep = prepare_replay(
            MIX8, "S-NUCA", CFG8, seed=3, n_instructions=INSTR, stage1=stage1
        )
        assert kernel_supported(prep.llc)

    def test_unsupported_policy_rejected(self, stage1):
        with pytest.raises(ReproError, match="kernel cannot drive"):
            run_workload(
                MIX8, "D-NUCA", CFG8, seed=3, n_instructions=INSTR,
                stage1=stage1, use_kernel=True,
            )

    def test_telemetry_run_rejects_forced_kernel(self, stage1):
        with pytest.raises(ReproError, match="kernel cannot drive"):
            run_workload(
                MIX8, "S-NUCA", CFG8, seed=3, n_instructions=INSTR,
                stage1=stage1, telemetry=Telemetry(), use_kernel=True,
            )

    def test_auto_engagement_and_env_override(self, stage1, monkeypatch):
        calls = []
        import repro.sim.runner as runner

        real = runner.kernel_replay

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "kernel_replay", spy)
        run_workload(MIX8, "S-NUCA", CFG8, seed=3, n_instructions=INSTR,
                     stage1=stage1)
        assert len(calls) == 1
        monkeypatch.setenv("REPRO_KERNEL", "0")
        run_workload(MIX8, "S-NUCA", CFG8, seed=3, n_instructions=INSTR,
                     stage1=stage1)
        assert len(calls) == 1


class TestConfigSignatureMemo:
    def test_memoised_on_the_instance(self):
        cfg = baseline_config()
        sig = config_signature(cfg)
        assert cfg.__dict__["_signature"] is sig
        assert config_signature(cfg) is sig

    def test_equal_configs_equal_signatures(self):
        assert config_signature(baseline_config()) == config_signature(
            baseline_config()
        )
