"""Unit helpers: sizes, time conversion, power-of-two utilities."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import (
    GHZ,
    KIB,
    MIB,
    SECONDS_PER_YEAR,
    cycles_to_seconds,
    cycles_to_years,
    is_power_of_two,
    log2_exact,
    parse_size,
)


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(4096) == 4096

    def test_bytes_suffix(self):
        assert parse_size("512B") == 512

    def test_kb_is_binary(self):
        assert parse_size("256KB") == 256 * KIB

    def test_mb_is_binary(self):
        assert parse_size("2MB") == 2 * MIB

    def test_kib_alias(self):
        assert parse_size("1KiB") == KIB

    def test_case_insensitive(self):
        assert parse_size("32kb") == 32 * KIB

    def test_fractional_mb(self):
        assert parse_size("1.5MB") == int(1.5 * MIB)

    def test_bare_number_string(self):
        assert parse_size("128") == 128

    def test_whitespace_tolerated(self):
        assert parse_size("  64 KB ") == 64 * KIB

    def test_negative_integer_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots of bytes")

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("0.3B")


class TestTimeConversion:
    def test_one_second_at_1ghz(self):
        assert cycles_to_seconds(1e9, GHZ) == pytest.approx(1.0)

    def test_one_year(self):
        cycles = SECONDS_PER_YEAR * 2.4e9
        assert cycles_to_years(cycles, 2.4e9) == pytest.approx(1.0)

    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigError):
            cycles_to_seconds(100, 0)


class TestPowerOfTwo:
    def test_powers_accepted(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers_rejected(self):
        for v in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(v)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(4096) == 12

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigError):
            log2_exact(48)
