"""Directory MESI protocol: transitions, invariants, event accounting."""

import pytest

from repro.cache.coherence import (
    CoherenceReply,
    DirState,
    MesiDirectory,
    MesiState,
)
from repro.common.errors import SimulationError

LINE = 0x1000


@pytest.fixture
def directory():
    return MesiDirectory(num_cores=4)


class TestReadPath:
    def test_first_reader_gets_exclusive(self, directory):
        reply = directory.read(0, LINE)
        assert reply.granted is MesiState.EXCLUSIVE
        assert directory.directory_state(LINE) is DirState.SHARED
        assert directory.private_state(0, LINE) is MesiState.EXCLUSIVE

    def test_second_reader_demotes_to_shared(self, directory):
        directory.read(0, LINE)
        reply = directory.read(1, LINE)
        assert reply.granted is MesiState.SHARED
        assert 0 in reply.downgraded
        assert directory.private_state(0, LINE) is MesiState.SHARED

    def test_read_hit_no_transition(self, directory):
        directory.read(0, LINE)
        reply = directory.read(0, LINE)
        assert reply.granted is MesiState.EXCLUSIVE
        assert reply.downgraded == ()

    def test_read_from_modified_forwards_dirty(self, directory):
        directory.write(0, LINE)
        reply = directory.read(1, LINE)
        assert reply.dirty_forward
        assert reply.granted is MesiState.SHARED
        assert directory.private_state(0, LINE) is MesiState.SHARED
        assert directory.directory_state(LINE) is DirState.SHARED


class TestWritePath:
    def test_first_writer_gets_modified(self, directory):
        reply = directory.write(0, LINE)
        assert reply.granted is MesiState.MODIFIED
        assert directory.directory_state(LINE) is DirState.MODIFIED

    def test_silent_e_to_m_upgrade(self, directory):
        directory.read(0, LINE)  # E
        reply = directory.write(0, LINE)
        assert reply.granted is MesiState.MODIFIED
        assert reply.invalidated == ()
        assert directory.stats.silent_upgrades == 1

    def test_write_invalidates_sharers(self, directory):
        directory.read(0, LINE)
        directory.read(1, LINE)
        directory.read(2, LINE)
        reply = directory.write(3, LINE)
        assert set(reply.invalidated) == {0, 1, 2}
        for core in (0, 1, 2):
            assert directory.private_state(core, LINE) is MesiState.INVALID

    def test_write_steals_from_modified(self, directory):
        directory.write(0, LINE)
        reply = directory.write(1, LINE)
        assert reply.invalidated == (0,)
        assert reply.dirty_forward
        assert directory.private_state(1, LINE) is MesiState.MODIFIED

    def test_write_hit_on_own_modified(self, directory):
        directory.write(0, LINE)
        reply = directory.write(0, LINE)
        assert reply.granted is MesiState.MODIFIED
        assert directory.stats.write_requests == 2

    def test_sharer_upgrade_invalidates_others(self, directory):
        directory.read(0, LINE)
        directory.read(1, LINE)
        reply = directory.write(0, LINE)
        assert reply.invalidated == (1,)


class TestEviction:
    def test_modified_eviction_is_dirty(self, directory):
        directory.write(0, LINE)
        assert directory.evict(0, LINE) is True
        assert directory.directory_state(LINE) is DirState.UNCACHED
        assert directory.stats.writebacks_received == 1

    def test_shared_eviction_clean(self, directory):
        directory.read(0, LINE)
        directory.read(1, LINE)
        assert directory.evict(0, LINE) is False
        assert directory.directory_state(LINE) is DirState.SHARED
        assert directory.sharers(LINE) == frozenset({1})

    def test_last_sharer_eviction_uncaches(self, directory):
        directory.read(0, LINE)
        directory.evict(0, LINE)
        assert directory.directory_state(LINE) is DirState.UNCACHED

    def test_evict_invalid_is_noop(self, directory):
        assert directory.evict(0, LINE) is False


class TestInvariants:
    def test_invariants_hold_during_random_traffic(self, rng, directory):
        lines = [0x10, 0x20, 0x30]
        for _ in range(2000):
            core = int(rng.integers(0, 4))
            line = lines[int(rng.integers(0, len(lines)))]
            op = rng.random()
            if op < 0.45:
                directory.read(core, line)
            elif op < 0.9:
                directory.write(core, line)
            else:
                directory.evict(core, line)
            directory.check_invariants()

    def test_sharers_of_modified(self, directory):
        directory.write(2, LINE)
        assert directory.sharers(LINE) == frozenset({2})

    def test_sharers_of_unknown_line(self, directory):
        assert directory.sharers(0xDEAD) == frozenset()

    def test_bad_core_rejected(self, directory):
        with pytest.raises(SimulationError):
            directory.read(99, LINE)


def test_reply_is_immutable():
    reply = CoherenceReply(granted=MesiState.SHARED)
    with pytest.raises(AttributeError):
        reply.granted = MesiState.MODIFIED
