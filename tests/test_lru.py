"""Set-associative array: lookup, insertion, eviction order, invariants."""

import pytest

from repro.cache.lru import SetAssocArray
from repro.common.errors import ConfigError, SimulationError


class TestBasics:
    def test_miss_returns_none(self):
        arr = SetAssocArray(4, 2)
        assert arr.lookup(0, 0x10) is None

    def test_insert_then_hit(self):
        arr = SetAssocArray(4, 2)
        arr.insert(1, 0x10, "payload")
        assert arr.lookup(1, 0x10) == "payload"

    def test_sets_are_independent(self):
        arr = SetAssocArray(4, 2)
        arr.insert(0, 0x10, "a")
        assert arr.lookup(1, 0x10) is None

    def test_no_eviction_until_full(self):
        arr = SetAssocArray(2, 4)
        for i in range(4):
            assert arr.insert(0, i, i) is None
        assert arr.insert(0, 99, 99) is not None


class TestLruOrder:
    def test_evicts_least_recently_used(self):
        arr = SetAssocArray(1, 2)
        arr.insert(0, 1, "one")
        arr.insert(0, 2, "two")
        victim = arr.insert(0, 3, "three")
        assert victim == (1, "one")

    def test_lookup_promotes(self):
        arr = SetAssocArray(1, 2)
        arr.insert(0, 1, "one")
        arr.insert(0, 2, "two")
        arr.lookup(0, 1)  # promote 1; 2 becomes LRU
        victim = arr.insert(0, 3, "three")
        assert victim == (2, "two")

    def test_untouched_lookup_preserves_order(self):
        arr = SetAssocArray(1, 2)
        arr.insert(0, 1, "one")
        arr.insert(0, 2, "two")
        arr.lookup(0, 1, touch=False)
        victim = arr.insert(0, 3, "three")
        assert victim == (1, "one")

    def test_victim_candidate_peeks_without_evicting(self):
        arr = SetAssocArray(1, 2)
        arr.insert(0, 1, "one")
        assert arr.victim_candidate(0) is None  # not full
        arr.insert(0, 2, "two")
        assert arr.victim_candidate(0) == (1, "one")
        assert arr.lookup(0, 1, touch=False) == "one"  # still there

    def test_exhaustive_lru_against_reference(self):
        """Drive one set with a long access pattern vs a reference model."""
        arr = SetAssocArray(1, 4)
        reference: list[int] = []  # LRU -> MRU
        import random

        rnd = random.Random(42)
        for _ in range(2000):
            tag = rnd.randrange(12)
            found = arr.lookup(0, tag)
            if tag in reference:
                assert found == f"v{tag}"
                reference.remove(tag)
                reference.append(tag)
            else:
                assert found is None
                victim = arr.insert(0, tag, f"v{tag}")
                if len(reference) == 4:
                    expect = reference.pop(0)
                    assert victim is not None and victim[0] == expect
                else:
                    assert victim is None
                reference.append(tag)


class TestInvalidate:
    def test_invalidate_present(self):
        arr = SetAssocArray(2, 2)
        arr.insert(0, 5, "x")
        assert arr.invalidate(0, 5) == "x"
        assert arr.lookup(0, 5) is None

    def test_invalidate_absent_returns_none(self):
        arr = SetAssocArray(2, 2)
        assert arr.invalidate(0, 5) is None

    def test_invalidate_frees_way(self):
        arr = SetAssocArray(1, 2)
        arr.insert(0, 1, "a")
        arr.insert(0, 2, "b")
        arr.invalidate(0, 1)
        assert arr.insert(0, 3, "c") is None  # no eviction needed


class TestErrors:
    def test_double_insert_rejected(self):
        arr = SetAssocArray(2, 2)
        arr.insert(0, 1, "a")
        with pytest.raises(SimulationError):
            arr.insert(0, 1, "again")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocArray(3, 2)
        with pytest.raises(ConfigError):
            SetAssocArray(4, 0)


class TestOccupancyAndIteration:
    def test_occupancy_counts(self):
        arr = SetAssocArray(2, 2)
        arr.insert(0, 1, "a")
        arr.insert(1, 2, "b")
        assert arr.occupancy(0) == 1
        assert arr.total_occupancy() == 2

    def test_iter_all_covers_everything(self):
        arr = SetAssocArray(2, 4)
        arr.insert(0, 1, "a")
        arr.insert(1, 9, "b")
        entries = set(arr.iter_all())
        assert entries == {(0, 1, "a"), (1, 9, "b")}

    def test_flush_drains_and_clears(self):
        arr = SetAssocArray(2, 2)
        arr.insert(0, 1, "a")
        arr.insert(1, 2, "b")
        drained = arr.flush()
        assert len(drained) == 2
        assert arr.total_occupancy() == 0
