"""Trace file I/O and result persistence."""

import numpy as np
import pytest

from repro.common.errors import ReproError, TraceError
from repro.common.rng import derive_rng
from repro.trace.fileio import load_trace, params_from_meta, save_trace
from repro.trace.generator import generate_trace
from repro.trace.profiles import get_profile
from repro.trace.synthetic import derive_params


@pytest.fixture
def trace():
    params = derive_params(get_profile("milc"))
    return generate_trace(params, 2000, derive_rng(0, "io")), params


class TestTraceRoundTrip:
    def test_round_trip_exact(self, trace, tmp_path):
        arr, params = trace
        path = tmp_path / "milc.npz"
        save_trace(path, arr, params=params, extra={"app": "milc"})
        loaded, meta = load_trace(path)
        assert np.array_equal(loaded, arr)
        assert meta["records"] == len(arr)
        assert meta["extra"]["app"] == "milc"

    def test_params_round_trip(self, trace, tmp_path):
        arr, params = trace
        path = tmp_path / "t.npz"
        save_trace(path, arr, params=params)
        _loaded, meta = load_trace(path)
        assert params_from_meta(meta) == params

    def test_params_optional(self, trace, tmp_path):
        arr, _params = trace
        path = tmp_path / "t.npz"
        save_trace(path, arr)
        _loaded, meta = load_trace(path)
        assert params_from_meta(meta) is None

    def test_non_structured_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_trace(tmp_path / "x.npz", np.zeros(10))

    def test_random_npz_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)


class TestLoadTraceRobustness:
    """Every malformed input surfaces as TraceError, never a raw
    zipfile/KeyError/decoder exception."""

    def _saved(self, trace, tmp_path, name="t.npz"):
        arr, params = trace
        path = tmp_path / name
        save_trace(path, arr, params=params)
        return path, arr

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_file(self, trace, tmp_path):
        path, _arr = self._saved(trace, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(TraceError):
            load_trace(path)

    def _meta_bytes(self, meta):
        import json

        return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)

    def test_unsupported_format_version(self, trace, tmp_path):
        from repro.trace.fileio import FORMAT_VERSION
        from repro.trace.generator import TRACE_DTYPE

        arr, _params = trace
        path = tmp_path / "future.npz"
        meta = {"format_version": FORMAT_VERSION + 1, "records": len(arr)}
        columns = {n: arr[n] for n in TRACE_DTYPE.names}
        np.savez(path, _meta=self._meta_bytes(meta), **columns)
        with pytest.raises(TraceError, match="unsupported trace format"):
            load_trace(path)

    def test_missing_column(self, trace, tmp_path):
        from repro.trace.fileio import FORMAT_VERSION
        from repro.trace.generator import TRACE_DTYPE

        arr, _params = trace
        path = tmp_path / "partial.npz"
        meta = {"format_version": FORMAT_VERSION, "records": len(arr)}
        columns = {n: arr[n] for n in TRACE_DTYPE.names[1:]}  # drop one
        np.savez(path, _meta=self._meta_bytes(meta), **columns)
        with pytest.raises(TraceError, match="missing trace fields"):
            load_trace(path)

    def test_mismatched_column_lengths(self, trace, tmp_path):
        from repro.trace.fileio import FORMAT_VERSION
        from repro.trace.generator import TRACE_DTYPE

        arr, _params = trace
        path = tmp_path / "ragged.npz"
        meta = {"format_version": FORMAT_VERSION, "records": len(arr)}
        columns = {n: arr[n] for n in TRACE_DTYPE.names}
        short = TRACE_DTYPE.names[0]
        columns[short] = columns[short][:-5]
        np.savez(path, _meta=self._meta_bytes(meta), **columns)
        with pytest.raises(TraceError, match="metadata says"):
            load_trace(path)

    def test_corrupt_metadata_json(self, trace, tmp_path):
        from repro.trace.generator import TRACE_DTYPE

        arr, _params = trace
        path = tmp_path / "badmeta.npz"
        bad = np.frombuffer(b"{not json", dtype=np.uint8)
        columns = {n: arr[n] for n in TRACE_DTYPE.names}
        np.savez(path, _meta=bad, **columns)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_record_count(self, trace, tmp_path):
        from repro.trace.fileio import FORMAT_VERSION
        from repro.trace.generator import TRACE_DTYPE

        arr, _params = trace
        path = tmp_path / "badcount.npz"
        meta = {"format_version": FORMAT_VERSION, "records": "many"}
        columns = {n: arr[n] for n in TRACE_DTYPE.names}
        np.savez(path, _meta=self._meta_bytes(meta), **columns)
        with pytest.raises(TraceError, match="record count"):
            load_trace(path)


class TestMatrixStore:
    def test_round_trip(self, tmp_path):
        from repro.config import baseline_config
        from repro.sim.runner import Stage1Cache, run_workload
        from repro.sim.store import load_matrix, save_matrix
        from repro.sim.metrics import MatrixResult
        from repro.trace.workloads import make_workloads

        config = baseline_config()
        workload = make_workloads(num_cores=16, count=1, seed=6)[0]
        result = run_workload(
            workload, "S-NUCA", config, seed=6,
            n_instructions=15_000, stage1=Stage1Cache(),
        )
        matrix = MatrixResult(label="t", schemes=("S-NUCA",),
                              workloads=(workload.name,))
        matrix.add(result)
        path = tmp_path / "matrix.json"
        save_matrix(path, matrix)
        loaded = load_matrix(path)
        got = loaded.get(workload.name, "S-NUCA")
        assert got.ipc == pytest.approx(result.ipc)
        assert np.array_equal(got.bank_writes, result.bank_writes)
        assert loaded.raw_min_lifetime("S-NUCA") == pytest.approx(
            matrix.raw_min_lifetime("S-NUCA")
        )

    def test_interval_series_round_trip(self, tmp_path):
        from repro.config import baseline_config
        from repro.sim.metrics import MatrixResult
        from repro.sim.runner import Stage1Cache, run_workload
        from repro.sim.store import load_matrix, save_matrix
        from repro.telemetry import Telemetry
        from repro.trace.workloads import make_workloads

        config = baseline_config()
        workload = make_workloads(num_cores=16, count=1, seed=6)[0]
        result = run_workload(
            workload, "S-NUCA", config, seed=6,
            n_instructions=6000, stage1=Stage1Cache(),
            telemetry=Telemetry(interval_instructions=20_000),
        )
        assert result.intervals is not None
        matrix = MatrixResult(label="t", schemes=("S-NUCA",),
                              workloads=(workload.name,))
        matrix.add(result)
        path = tmp_path / "matrix.json"
        save_matrix(path, matrix)
        got = load_matrix(path).get(workload.name, "S-NUCA")
        assert got.intervals is not None
        assert got.intervals.to_dict() == result.intervals.to_dict()

    def test_intervals_key_optional(self, tmp_path):
        # Files written before (or without) telemetry lack "intervals";
        # they must still load, with the field defaulting to None.
        from repro.config import baseline_config
        from repro.sim.metrics import MatrixResult
        from repro.sim.runner import Stage1Cache, run_workload
        from repro.sim.store import load_matrix, save_matrix
        from repro.trace.workloads import make_workloads

        config = baseline_config()
        workload = make_workloads(num_cores=16, count=1, seed=6)[0]
        result = run_workload(
            workload, "S-NUCA", config, seed=6,
            n_instructions=6000, stage1=Stage1Cache(),
        )
        matrix = MatrixResult(label="t", schemes=("S-NUCA",),
                              workloads=(workload.name,))
        matrix.add(result)
        path = tmp_path / "matrix.json"
        save_matrix(path, matrix)
        assert "intervals" not in path.read_text()
        assert load_matrix(path).get(workload.name, "S-NUCA").intervals is None

    def test_bad_file_rejected(self, tmp_path):
        from repro.sim.store import load_matrix

        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ReproError):
            load_matrix(path)

    def test_missing_file_rejected(self, tmp_path):
        from repro.sim.store import load_matrix

        with pytest.raises(ReproError):
            load_matrix(tmp_path / "nope.json")
