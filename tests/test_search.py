"""Design-space exploration engine (``src/repro/search``).

Covers the space/sampler/pareto layers with pure unit tests, and the
driver layer with small simulation-backed searches on a 4-core machine:
serial == parallel determinism, rung-granular resume, and the paper's
qualitative Pareto claim (frontier points beat S-NUCA on lifetime and
Private on IPC, with the Re-NUCA default marked).
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError, ReproError
from repro.config import baseline_config, scaled_config
from repro.nuca import POLICY_NAMES
from repro.search import (
    ChoiceDimension,
    Evaluation,
    FloatDimension,
    IntDimension,
    SearchJournal,
    SearchOutcome,
    SearchSpace,
    dominates,
    grid_points,
    halton_points,
    hypervolume,
    load_space,
    mutate_point,
    pareto_indices,
    parse_objectives,
    point_id_of,
    preset_space,
    random_points,
    run_search,
)
from repro.search.drivers import _propose
from repro.search.samplers import evolve_points
from repro.sim.runner import Stage1Cache

CONFIG4 = scaled_config(baseline_config(), cores=4)

SPACE = SearchSpace((
    ChoiceDimension("scheme", ("S-NUCA", "Re-NUCA")),
    FloatDimension("criticality.threshold_percent", 1.0, 8.0, steps=3),
    IntDimension("rnuca_cluster_size", 2, 4, step=2),
))


# -- space --------------------------------------------------------------------


class TestSpace:
    def test_names_and_cardinality(self):
        assert SPACE.names == (
            "scheme", "criticality.threshold_percent", "rnuca_cluster_size",
        )
        assert SPACE.cardinality() == 2 * 3 * 2

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(SPACE.to_dict()))
        assert load_space(path).dimensions == SPACE.dimensions

    def test_round_trip_rejects_unknown_version(self):
        with pytest.raises(ReproError, match="format"):
            SearchSpace.from_dict({"format_version": 99, "dimensions": []})

    def test_encode_applies_fields(self):
        point = SPACE.encode({
            "scheme": "S-NUCA",
            "criticality.threshold_percent": 4.5,
            "rnuca_cluster_size": 2,
        }, base=CONFIG4)
        assert point.scheme == "S-NUCA"
        assert point.config.criticality.threshold_percent == 4.5
        assert point.config.rnuca_cluster_size == 2
        assert point.fault is None
        assert point.point_id == point_id_of(point.values)

    def test_encode_fault_dimension(self):
        space = SearchSpace((
            FloatDimension("fault.age_fraction", 0.0, 1.0),
        ))
        active = space.encode({"fault.age_fraction": 0.5}, base=CONFIG4)
        assert active.fault is not None and active.fault.age_fraction == 0.5
        idle = space.encode({"fault.age_fraction": 0.0}, base=CONFIG4)
        assert idle.fault is None  # inactive faults collapse to None

    def test_encode_num_banks_rebuilds_mesh(self):
        space = SearchSpace((ChoiceDimension("num_banks", (4, 16)),))
        point = space.encode({"num_banks": 16})
        assert point.config.num_banks == 16
        assert point.config.noc.mesh_cols * point.config.noc.mesh_rows == 16

    def test_invalid_corner_names_offending_field(self):
        space = SearchSpace((
            ChoiceDimension("l3_replacement", ("srrip",)),
            ChoiceDimension("l3_way_limit", (8,)),
        ))
        with pytest.raises(ConfigError, match="l3_way_limit"):
            space.encode(
                {"l3_replacement": "srrip", "l3_way_limit": 8}, base=CONFIG4,
            )

    def test_unknown_field_rejected(self):
        space = SearchSpace((ChoiceDimension("no.such.field", (1,)),))
        with pytest.raises(ConfigError, match="no.such.field"):
            space.encode({"no.such.field": 1}, base=CONFIG4)

    def test_key_mismatch_rejected(self):
        with pytest.raises(ReproError, match="do not match"):
            SPACE.encode({"scheme": "S-NUCA"})

    def test_unknown_scheme_choice_rejected(self):
        with pytest.raises(ReproError, match="unknown schemes"):
            SearchSpace((ChoiceDimension("scheme", ("T-NUCA",)),))

    def test_presets(self):
        assert preset_space("nuca").cardinality() > 0
        assert preset_space("schemes").cardinality() == 15
        with pytest.raises(ReproError, match="preset"):
            preset_space("nope")


# -- samplers -----------------------------------------------------------------


class TestSamplers:
    def test_grid_is_full_factorial(self):
        points = grid_points(SPACE)
        assert len(points) == SPACE.cardinality()
        assert len({point_id_of(p) for p in points}) == len(points)

    def test_random_deterministic_and_in_range(self):
        a = random_points(SPACE, 20, seed=3)
        b = random_points(SPACE, 20, seed=3)
        assert a == b
        assert random_points(SPACE, 20, seed=4) != a
        for p in a:
            assert p["scheme"] in ("S-NUCA", "Re-NUCA")
            assert 1.0 <= p["criticality.threshold_percent"] <= 8.0
            assert p["rnuca_cluster_size"] in (2, 4)

    def test_halton_deterministic_and_seed_shifts(self):
        a = halton_points(SPACE, 16, seed=1)
        assert a == halton_points(SPACE, 16, seed=1)
        assert halton_points(SPACE, 16, seed=2) != a

    def test_halton_dimension_limit(self):
        wide = SearchSpace(tuple(
            IntDimension(f"d{i}", 0, 1) for i in range(16)
        ))
        with pytest.raises(ReproError, match="dimensions"):
            halton_points(wide, 4)

    def test_log_float_dimension_stays_in_range(self):
        dim = FloatDimension("reram.write_penalty_cycles", 1.0, 100.0,
                             log=True)
        space = SearchSpace((dim,))
        for p in halton_points(space, 32):
            assert 1.0 <= p[dim.name] <= 100.0
        grid = dim.grid()
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(100.0)

    def test_mutation_stays_inside_space(self, rng):
        values = grid_points(SPACE)[0]
        for _ in range(50):
            values = mutate_point(SPACE, values, rng)
            SPACE.encode(values, base=CONFIG4)  # must stay valid

    def test_evolve_deterministic(self):
        parents = grid_points(SPACE)[:2]
        a = evolve_points(SPACE, parents, 10, seed=5)
        assert a == evolve_points(SPACE, parents, 10, seed=5)
        assert len(a) == 10


# -- pareto -------------------------------------------------------------------


class TestPareto:
    OBJ = parse_objectives(("ipc", "lifetime"))

    def test_parse_objectives_errors(self):
        with pytest.raises(ReproError, match="unknown objective"):
            parse_objectives(("ipc", "bogus"))
        with pytest.raises(ReproError, match="duplicate"):
            parse_objectives(("ipc", "ipc"))
        with pytest.raises(ReproError, match="at least one"):
            parse_objectives(())

    def test_dominates_senses(self):
        objectives = parse_objectives(("ipc", "energy"))
        a = {"ipc": 2.0, "energy": 1.0}
        b = {"ipc": 1.0, "energy": 2.0}
        assert dominates(a, b, objectives)  # higher ipc, lower energy
        assert not dominates(b, a, objectives)
        assert not dominates(a, a, objectives)  # equal: no strict gain

    def test_pareto_indices(self):
        points = [
            {"ipc": 3.0, "lifetime": 1.0},
            {"ipc": 1.0, "lifetime": 3.0},
            {"ipc": 2.0, "lifetime": 2.0},
            {"ipc": 1.0, "lifetime": 1.0},   # dominated by all others
            {"ipc": 2.0, "lifetime": 2.0},   # duplicate survives
        ]
        assert pareto_indices(points, self.OBJ) == [0, 1, 2, 4]

    def test_hypervolume_2d_exact(self):
        points = [
            {"ipc": 3.0, "lifetime": 1.0},
            {"ipc": 1.0, "lifetime": 3.0},
            {"ipc": 2.0, "lifetime": 2.0},
        ]
        reference = {"ipc": 0.0, "lifetime": 0.0}
        # Union of [0,3]x[0,1], [0,1]x[0,3], [0,2]x[0,2] = 6.
        assert hypervolume(points, self.OBJ, reference) == pytest.approx(6.0)

    def test_hypervolume_3d_single_box(self):
        objectives = parse_objectives(("ipc", "lifetime", "energy"))
        point = {"ipc": 2.0, "lifetime": 3.0, "energy": 1.0}
        reference = {"ipc": 0.0, "lifetime": 0.0, "energy": 5.0}
        # 2 x 3 x (5 - 1) = 24.
        assert hypervolume([point], objectives, reference) \
            == pytest.approx(24.0)

    def test_hypervolume_grows_with_frontier(self):
        base = [{"ipc": 2.0, "lifetime": 2.0}]
        more = base + [{"ipc": 3.0, "lifetime": 1.0}]
        reference = {"ipc": 0.0, "lifetime": 0.0}
        assert hypervolume(more, self.OBJ, reference) \
            > hypervolume(base, self.OBJ, reference)


# -- journal ------------------------------------------------------------------


def _evaluation(i: int = 0, budget: int = 1000) -> Evaluation:
    return Evaluation(
        point_id=f"p{i}", values={"scheme": "S-NUCA"}, scheme="S-NUCA",
        rung=0, budget=budget,
        metrics={"ipc": 1.0 + i, "lifetime": 2.0, "energy": 3.0,
                 "wear_cov": 0.5},
    )


class TestSearchJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "search.jsonl"
        with SearchJournal(path) as journal:
            journal.record(_evaluation(0))
            journal.record(_evaluation(1, budget=2000))
        loaded = SearchJournal(path).load()
        assert set(loaded) == {("p0", 1000), ("p1", 2000)}
        assert loaded[("p0", 1000)].metrics["ipc"] == 1.0

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "search.jsonl"
        with SearchJournal(path) as journal:
            journal.record(_evaluation(0))
            journal.record(_evaluation(1))
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # tear the last record
        assert set(SearchJournal(path).load()) == {("p0", 1000)}

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "search.jsonl"
        with SearchJournal(path) as journal:
            journal.record(_evaluation(0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"v": 1, **_evaluation(1).to_dict()}) + "\n")
        with pytest.raises(ReproError, match="malformed"):
            SearchJournal(path).load()

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "search.jsonl"
        path.write_text(json.dumps({"v": 99, **_evaluation().to_dict()}) + "\n")
        with pytest.raises(ReproError, match="format"):
            SearchJournal(path).load()

    def test_truncate_starts_fresh(self, tmp_path):
        path = tmp_path / "search.jsonl"
        with SearchJournal(path) as journal:
            journal.record(_evaluation(0))
        journal = SearchJournal(path)
        journal.open(truncate=True)
        journal.close()
        assert SearchJournal(path).load() == {}


# -- candidate proposal -------------------------------------------------------


class TestPropose:
    def test_invalid_corners_filtered_deterministically(self):
        space = SearchSpace((
            ChoiceDimension("l3_replacement", ("lru", "srrip")),
            ChoiceDimension("l3_way_limit", (8,)),
        ))
        points, invalid = _propose(
            space, "grid", 4, seed=1, base=CONFIG4,
        )
        assert [p.values for p in points] == [
            {"l3_replacement": "lru", "l3_way_limit": 8},
        ]
        assert invalid == 1

    def test_all_invalid_raises(self):
        space = SearchSpace((
            ChoiceDimension("l3_replacement", ("srrip",)),
            ChoiceDimension("l3_way_limit", (8,)),
        ))
        with pytest.raises(ReproError, match="no valid points"):
            _propose(space, "grid", 4, seed=1, base=CONFIG4)

    def test_unique_by_point_id(self):
        points, _ = _propose(
            preset_space("schemes"), "halton", 64, seed=1,
            base=CONFIG4,
        )
        ids = [p.point_id for p in points]
        assert len(ids) == len(set(ids))


# -- the drivers (simulation-backed) ------------------------------------------

SMALL_BUDGETS = (400, 1200)


def _outcome_key(outcome: SearchOutcome):
    return (
        [e.to_dict() for e in outcome.evaluations],
        [e.point_id for e in outcome.frontier],
        outcome.hypervolume,
    )


class TestRunSearch:
    def test_validation_errors(self):
        space = preset_space("schemes")
        with pytest.raises(ReproError, match="driver"):
            run_search(space, driver="bogus")
        with pytest.raises(ReproError, match="distinct"):
            run_search(space, budget_schedule=(1000, 1000))
        with pytest.raises(ReproError, match="positive"):
            run_search(space, budget_schedule=(0,))
        with pytest.raises(ReproError, match="journal"):
            run_search(space, resume=True)
        with pytest.raises(ReproError, match="promote"):
            run_search(space, promote=0.0)

    def test_serial_equals_parallel(self):
        """Acceptance: a >=16-point search is bit-identical at -j4."""
        space = preset_space("nuca")
        kwargs = dict(
            driver="halving", sampler="halton", n_points=16,
            budget_schedule=SMALL_BUDGETS, objectives=("ipc", "lifetime"),
            workload_numbers=(1,), seed=1, base=CONFIG4,
        )
        serial = run_search(space, max_workers=1, stage1=Stage1Cache(),
                            **kwargs)
        parallel = run_search(space, max_workers=4, **kwargs)
        assert len(serial.evaluations) >= 16
        assert _outcome_key(serial) == _outcome_key(parallel)

    def test_resume_reruns_only_the_remainder(self, tmp_path):
        """Acceptance: kill mid-rung, --resume re-simulates only the rest."""
        space = preset_space("schemes")
        kwargs = dict(
            driver="halving", sampler="halton", n_points=5,
            budget_schedule=SMALL_BUDGETS, objectives=("ipc", "lifetime"),
            workload_numbers=(1,), seed=1, base=CONFIG4,
        )
        journal = tmp_path / "search.jsonl"
        stage1 = Stage1Cache()
        first = run_search(space, journal=journal, stage1=stage1, **kwargs)
        evals_total = first.report["evals_total"]

        # Simulate a SIGKILL after the final rung started: drop the last
        # two evaluation records (their simulations stay journaled in the
        # rung sweep journal).
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:-2]))

        resumed = run_search(space, journal=journal, resume=True,
                             stage1=stage1, **kwargs)
        assert resumed.report["evals_resumed"] == evals_total - 2
        # The two replayed evaluations came from the rung journal — no
        # job was re-simulated.
        assert resumed.report["jobs_total"] == 2
        assert resumed.report["jobs_executed"] == 0
        assert resumed.report["jobs_resumed"] == 2
        assert _outcome_key(first) == _outcome_key(resumed)

    def test_grid_driver_covers_the_space(self):
        space = SearchSpace((ChoiceDimension("scheme", ("S-NUCA", "Naive")),))
        outcome = run_search(
            space, driver="grid", n_points=0,
            budget_schedule=(400,), objectives=("ipc", "lifetime"),
            workload_numbers=(1,), seed=1, base=CONFIG4,
            include_reference=False, stage1=Stage1Cache(),
        )
        assert sorted(e.scheme for e in outcome.evaluations) \
            == ["Naive", "S-NUCA"]

    def test_outcome_json_round_trip(self, tmp_path):
        space = preset_space("schemes")
        outcome = run_search(
            space, driver="random", sampler="random", n_points=2,
            budget_schedule=(400,), objectives=("ipc", "lifetime"),
            workload_numbers=(1,), seed=1, base=CONFIG4,
            stage1=Stage1Cache(),
        )
        clone = SearchOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict()))
        )
        assert _outcome_key(clone) == _outcome_key(outcome)
        assert clone.reference_point_id == outcome.reference_point_id


class TestProvenance:
    """Fingerprint linkage and commit stamps on search artefacts."""

    def test_evaluation_fingerprints_round_trip(self):
        evaluation = _evaluation()
        stamped = Evaluation(
            **{**evaluation.__dict__, "fingerprints": ("fp1", "fp2")})
        clone = Evaluation.from_dict(
            json.loads(json.dumps(stamped.to_dict())))
        assert clone.fingerprints == ("fp1", "fp2")

    def test_evaluation_tolerates_prelinkage_payload(self):
        payload = _evaluation().to_dict()
        del payload["fingerprints"]
        assert Evaluation.from_dict(payload).fingerprints == ()

    def test_outcome_provenance_round_trip(self):
        outcome = _synthetic_outcome()
        payload = json.loads(json.dumps(outcome.to_dict()))
        clone = SearchOutcome.from_dict(payload)
        assert clone.git_sha is None and clone.created_at is None
        payload["git_sha"] = "a" * 40
        payload["created_at"] = 123.5
        stamped = SearchOutcome.from_dict(payload)
        assert stamped.git_sha == "a" * 40
        assert stamped.created_at == pytest.approx(123.5)

    def test_outcome_tolerates_prestamp_payload(self):
        payload = _synthetic_outcome().to_dict()
        del payload["git_sha"], payload["created_at"]
        clone = SearchOutcome.from_dict(payload)
        assert clone.git_sha is None and clone.created_at is None

    def test_run_search_stamps_fingerprints_and_commit(self):
        outcome = run_search(
            preset_space("schemes"), driver="grid", n_points=3,
            budget_schedule=(400,), objectives=("ipc", "lifetime"),
            workload_numbers=(1, 2), seed=1, base=CONFIG4,
            stage1=Stage1Cache(),
        )
        for evaluation in outcome.evaluations:
            # One simulated job per requested workload.
            assert len(evaluation.fingerprints) == 2
            assert all(
                isinstance(f, str) and len(f) == 64
                for f in evaluation.fingerprints
            )
        assert outcome.created_at is not None and outcome.created_at > 0
        # This test runs inside the repo checkout, so the sha resolves.
        assert outcome.git_sha is None or len(outcome.git_sha) == 40


class TestPaperClaim:
    """The paper's qualitative Pareto story, reproduced by the engine."""

    @pytest.fixture(scope="class")
    def outcome(self):
        space = SearchSpace((ChoiceDimension("scheme", POLICY_NAMES),))
        return run_search(
            space, driver="grid", n_points=0,
            budget_schedule=(20_000,), objectives=("ipc", "lifetime"),
            workload_numbers=(1,), seed=1, base=CONFIG4,
            stage1=Stage1Cache(),
        )

    def test_frontier_beats_snuca_on_lifetime_and_private_on_ipc(self, outcome):
        final = {e.scheme: e for e in outcome.final_evaluations()
                 if not e.reference}
        snuca, private = final["S-NUCA"], final["Private"]
        frontier = outcome.frontier
        assert any(
            e.metrics["lifetime"] > snuca.metrics["lifetime"]
            for e in frontier
        ), "no frontier point beats S-NUCA on lifetime"
        assert any(
            e.metrics["ipc"] > private.metrics["ipc"] for e in frontier
        ), "no frontier point beats Private on IPC"

    def test_reference_point_marked(self, outcome):
        assert outcome.reference_point_id is not None
        marked = [e for e in outcome.final_evaluations() if e.reference]
        assert len(marked) == 1
        assert marked[0].point_id == outcome.reference_point_id
        assert marked[0].scheme == "Re-NUCA"

    def test_energy_metric_flows_through(self, outcome):
        # Satellite: reram energy is a headline metric on every result.
        for e in outcome.final_evaluations():
            assert e.metrics["energy"] > 0.0

    def test_html_report_renders_the_frontier(self, outcome):
        from repro.obs.html_report import render_search_report

        html = render_search_report(outcome)
        assert "pt-ref" in html and "pt-front" in html
        assert "Re-NUCA default" in html
        for e in outcome.frontier:
            assert e.point_id in html


# -- report/bench/CLI glue (synthetic, no simulation) -------------------------


def _synthetic_outcome() -> SearchOutcome:
    metrics = [
        ("a" * 12, "S-NUCA", 2.0, 1.0),
        ("b" * 12, "Naive", 1.0, 3.0),
        ("c" * 12, "Private", 0.5, 0.2),   # dominated
    ]
    evaluations = [
        Evaluation(point_id=pid, values={"scheme": scheme}, scheme=scheme,
                   rung=0, budget=1000,
                   metrics={"ipc": ipc, "lifetime": life, "energy": 1.0,
                            "wear_cov": 0.5},
                   reference=(scheme == "S-NUCA"))
        for pid, scheme, ipc, life in metrics
    ]
    objectives = parse_objectives(("ipc", "lifetime"))
    front = pareto_indices([e.metrics for e in evaluations], objectives)
    return SearchOutcome(
        driver="grid", seed=1, objectives=("ipc", "lifetime"),
        budget_schedule=(1000,), workload_numbers=(1,),
        evaluations=evaluations,
        frontier=[evaluations[i] for i in front],
        hypervolume=4.0, reference={"ipc": 0.0, "lifetime": 0.0},
        reference_point_id="a" * 12,
        report={"points": 3, "evals_total": 3},
    )


class TestGlue:
    def test_render_search_report_dims_dominated(self):
        from repro.obs.html_report import render_search_report

        html = render_search_report(_synthetic_outcome())
        assert html.count("pt-dim") >= 1     # Private is dominated
        assert "pt-front" in html and "pt-ref" in html

    def test_search_bench_point(self):
        from repro.obs.bench import search_bench_point

        point = search_bench_point(_synthetic_outcome(), label="t")
        assert point["bench"] == "search"
        assert point["frontier_size"] == 2
        assert point["hypervolume"] == 4.0

    def test_cli_bench_record_search(self, tmp_path, capsys):
        from repro.cli import main

        outcome_path = tmp_path / "outcome.json"
        outcome_path.write_text(json.dumps(_synthetic_outcome().to_dict()))
        bench_path = tmp_path / "BENCH_search.json"
        assert main(["bench-record", "--search", str(outcome_path),
                     "--out", str(bench_path), "--label", "smoke"]) == 0
        payload = json.loads(bench_path.read_text())
        assert payload["points"][0]["label"] == "smoke"
        assert payload["points"][0]["frontier_size"] == 2

    def test_cli_bench_record_needs_a_source(self, capsys):
        from repro.cli import main

        assert main(["bench-record"]) == 2

    def test_cli_search_unknown_preset_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["search", "--space", "nope"]) == 2
        assert "preset" in capsys.readouterr().err
