"""Address arithmetic: line/page decomposition and set/tag extraction."""

import pytest

from repro.common.addr import (
    DEFAULT_ADDRESS_MAP,
    AddressMap,
    set_index,
    tag_bits,
)
from repro.common.errors import ConfigError


class TestDefaultGeometry:
    def test_offset_bits(self):
        assert DEFAULT_ADDRESS_MAP.offset_bits == 6

    def test_page_offset_bits(self):
        assert DEFAULT_ADDRESS_MAP.page_offset_bits == 12

    def test_lines_per_page_is_64(self):
        assert DEFAULT_ADDRESS_MAP.lines_per_page == 64

    def test_line_addr_round_trip(self):
        addr = 0x1234_5678
        line = DEFAULT_ADDRESS_MAP.line_addr(addr)
        assert DEFAULT_ADDRESS_MAP.line_to_byte(line) == addr & ~0x3F

    def test_line_in_page_matches_figure10(self):
        # Figure 10: bits 6..11 index the line within a 4 KB page.
        addr = (7 << 6) | 3  # line 7 of page 0, byte offset 3
        assert DEFAULT_ADDRESS_MAP.line_in_page(addr) == 7

    def test_page_of_line_consistent(self):
        addr = 0xABCD_E000 + 5 * 64
        line = DEFAULT_ADDRESS_MAP.line_addr(addr)
        assert DEFAULT_ADDRESS_MAP.page_of_line(line) == DEFAULT_ADDRESS_MAP.page_number(addr)

    def test_line_index_in_page_covers_all_slots(self):
        page_base_line = 0x1000 * 64 // 64 * 64  # any aligned base
        seen = {DEFAULT_ADDRESS_MAP.line_index_in_page(page_base_line + i) for i in range(64)}
        assert seen == set(range(64))


class TestValidation:
    def test_non_power_line_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(line_bytes=48)

    def test_page_smaller_than_line_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(line_bytes=4096, page_bytes=64)


class TestSetTag:
    def test_set_index_masks_low_bits(self):
        assert set_index(0b101101, 8) == 0b101

    def test_tag_shifts_out_set(self):
        assert tag_bits(0b101101, 8) == 0b101

    def test_set_tag_uniquely_identify_line(self):
        num_sets = 64
        seen = set()
        for line in range(4096):
            key = (set_index(line, num_sets), tag_bits(line, num_sets))
            assert key not in seen
            seen.add(key)

    def test_non_power_sets_rejected(self):
        with pytest.raises(ConfigError):
            set_index(10, 12)
