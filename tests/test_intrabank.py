"""Intra-bank wear levelling: set rotation + wear metering."""

import pytest

from repro.cache.cache import Cache
from repro.common.errors import ConfigError
from repro.config import CacheConfig
from repro.reram.intrabank import IntraBankLeveler, SetWearMeter


@pytest.fixture
def cache():
    return Cache(CacheConfig(64 * 8 * 2, 2, 1, name="bank"))  # 8 sets, 2 ways


class TestRotation:
    def test_rotation_changes_set_mapping(self, cache):
        before = cache.set_of(0x10)
        cache.rotate_sets(1)
        assert cache.set_of(0x10) == (before + 1) % cache.num_sets

    def test_resident_lines_survive_rotation(self, cache):
        for line in range(10):
            cache.access(line, line % 2 == 0)
        resident = sorted(cache.resident_lines())
        dirty = {line for line in resident if cache.is_dirty(line)}
        cache.rotate_sets(1)
        assert sorted(cache.resident_lines()) == resident
        for line in resident:
            assert cache.contains(line)
            assert cache.is_dirty(line) == (line in dirty)

    def test_full_cycle_restores_mapping(self, cache):
        original = [cache.set_of(line) for line in range(32)]
        for _ in range(cache.num_sets):
            cache.rotate_sets(1)
        assert [cache.set_of(line) for line in range(32)] == original

    def test_zero_step_noop(self, cache):
        cache.access(1, False)
        cache.rotate_sets(0)
        assert cache.rotation == 0
        assert cache.contains(1)


class TestMeter:
    def test_counts_and_imbalance(self):
        meter = SetWearMeter(4)
        for _ in range(6):
            meter.record(0)
        meter.record(1)
        meter.record(2)
        assert meter.total == 8
        assert meter.imbalance == pytest.approx(6 / 2.0)
        assert meter.variation > 0

    def test_perfectly_level(self):
        meter = SetWearMeter(4)
        for s in range(4):
            meter.record(s)
        assert meter.imbalance == 1.0
        assert meter.variation == 0.0

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            SetWearMeter(0)


class TestLeveler:
    def hammer(self, period: int) -> SetWearMeter:
        """Write-hammer a few hot lines, optionally with rotation."""
        cache = Cache(CacheConfig(64 * 8 * 2, 2, 1, name="bank"))
        meter = SetWearMeter(cache.num_sets)
        leveler = IntraBankLeveler(cache, period, meter)
        hot_lines = [0, 8, 16]  # all map to set 0 without rotation
        for i in range(1200):
            line = hot_lines[i % 3]
            if not cache.contains(line):
                cache.allocate(line, dirty=True)
            else:
                cache.mark_dirty(line)
            leveler.on_write(line)
        return meter

    def test_rotation_levels_hot_sets(self):
        static = self.hammer(period=0)
        rotated = self.hammer(period=50)
        assert static.imbalance > 4.0       # hot set dominates
        assert rotated.imbalance < static.imbalance / 2
        assert rotated.variation < static.variation

    def test_disabled_never_rotates(self, cache):
        leveler = IntraBankLeveler(cache, 0)
        for i in range(500):
            leveler.on_write(i)
        assert leveler.rotations == 0
        assert cache.rotation == 0

    def test_rotation_cadence(self, cache):
        leveler = IntraBankLeveler(cache, 10)
        for i in range(35):
            leveler.on_write(i)
        assert leveler.rotations == 3

    def test_meter_mismatch_rejected(self, cache):
        with pytest.raises(ConfigError):
            IntraBankLeveler(cache, 10, SetWearMeter(cache.num_sets * 2))

    def test_negative_period_rejected(self, cache):
        with pytest.raises(ConfigError):
            IntraBankLeveler(cache, -1)
