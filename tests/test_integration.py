"""End-to-end shape tests: the paper's qualitative claims on small runs.

These are the repo's acceptance tests: every claim checked here is a
sentence from the paper's evaluation, verified on a reduced instruction
budget with a fixed seed.
"""

import numpy as np
import pytest

from repro.config import baseline_config
from repro.sim.runner import Stage1Cache, run_workload
from repro.trace.workloads import Workload, make_workloads

INSTR = 60_000
SEED = 11

#: A deliberately imbalanced mix: heavy writers clustered on low cores.
MIX = Workload(
    "accept16",
    (
        "mcf", "lbm", "omnetpp", "xalancbmk",
        "milc", "leslie3d", "bzip2", "soplex",
        "hmmer", "h264ref", "astar", "dealII",
        "sjeng", "povray", "namd", "GemsFDTD",
    ),
)


@pytest.fixture(scope="module")
def results():
    config = baseline_config()
    stage1 = Stage1Cache()
    return {
        scheme: run_workload(
            MIX, scheme, config, seed=SEED, n_instructions=INSTR, stage1=stage1
        )
        for scheme in ("Naive", "S-NUCA", "Re-NUCA", "R-NUCA", "Private")
    }


def cv(values) -> float:
    values = np.asarray(values, dtype=float)
    return float(values.std() / values.mean())


class TestWearShapes:
    def test_naive_levels_perfectly(self, results):
        """'This approach leads to near-ideal wear-leveling ... 0% variation.'"""
        assert cv(results["Naive"].bank_writes) < 0.02

    def test_snuca_nearly_uniform(self, results):
        """'All cache banks have very similar lifetime in S-NUCA.'"""
        assert cv(results["S-NUCA"].bank_writes) < 0.25

    def test_rnuca_concentrates_wear(self, results):
        """'R-NUCA has relatively large variation between lifetimes.'"""
        assert cv(results["R-NUCA"].bank_writes) > 2 * cv(results["S-NUCA"].bank_writes)

    def test_private_is_worst(self, results):
        """'Private cache ... offers maximum variation in lifetime.'"""
        assert cv(results["Private"].bank_writes) > cv(results["R-NUCA"].bank_writes)

    def test_renuca_between_snuca_and_rnuca(self, results):
        """Re-NUCA 'wear-levels the cache in a performance-conscious fashion'."""
        assert (
            cv(results["S-NUCA"].bank_writes)
            < cv(results["Re-NUCA"].bank_writes)
            < cv(results["R-NUCA"].bank_writes)
        )


class TestLifetimeShapes:
    def test_minimum_lifetime_ordering(self, results):
        """Table III ordering: Naive > S-NUCA > Re-NUCA > R-NUCA > Private."""
        life = {s: r.min_lifetime for s, r in results.items()}
        assert life["Naive"] >= life["S-NUCA"] * 0.9
        assert life["S-NUCA"] > life["R-NUCA"]
        assert life["Re-NUCA"] > life["R-NUCA"]
        assert life["R-NUCA"] >= life["Private"] * 0.9

    def test_headline_42_percent_shape(self, results):
        """'Re-NUCA improves the minimum lifetime by 42% over R-NUCA.'"""
        gain = results["Re-NUCA"].min_lifetime / results["R-NUCA"].min_lifetime
        assert gain > 1.2  # the paper's 1.42x, with laptop-scale tolerance

    def test_lifetimes_in_plausible_range(self, results):
        """Paper values are single-digit years; accept 0.1-100."""
        for result in results.values():
            assert 0.05 < result.min_lifetime < 200


class TestPerformanceShapes:
    def test_private_and_rnuca_beat_snuca(self, results):
        """'R-NUCA beats S-NUCA by 4.7% ... private ~8% improvement.'

        The paper itself notes Private loses on some mixes ("private
        cache configurations suffer from the capacity utilization
        problem ... IPC is lower in some workloads"), and this
        deliberately capacity-hungry mix is one of them — so Private is
        only required not to lose materially here.
        """
        assert results["R-NUCA"].ipc > results["S-NUCA"].ipc
        assert results["Private"].ipc > results["S-NUCA"].ipc * 0.97

    def test_naive_is_slowest(self, results):
        """'The Naive scheme degrades performance.'"""
        assert results["Naive"].ipc < results["S-NUCA"].ipc

    def test_renuca_does_not_lose_to_snuca(self, results):
        """Re-NUCA keeps performance while wear-levelling."""
        assert results["Re-NUCA"].ipc > results["S-NUCA"].ipc * 0.99

    def test_renuca_uses_both_mappings(self, results):
        frac = results["Re-NUCA"].critical_fill_fraction
        assert 0.05 < frac < 0.95


class TestCapacityEffects:
    def test_private_loses_capacity_sharing(self):
        """'Private cache configurations suffer from the capacity
        utilization problem' — a big-footprint app surrounded by idle
        ones can borrow shared capacity under S-NUCA but is pinned to
        2 MB under Private."""
        config = baseline_config()
        stage1 = Stage1Cache()
        mix = make_workloads(num_cores=16, count=1, seed=1)[0]
        hits = {}
        for scheme in ("S-NUCA", "Private"):
            r = run_workload(
                mix, scheme, config, seed=1,
                n_instructions=40_000, stage1=stage1,
            )
            hits[scheme] = r.llc_fetch_hit_rate
        assert hits["S-NUCA"] > hits["Private"] + 0.05


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = baseline_config()
        runs = []
        for _ in range(2):
            stage1 = Stage1Cache()
            runs.append(
                run_workload(
                    MIX, "Re-NUCA", config, seed=SEED,
                    n_instructions=20_000, stage1=stage1,
                )
            )
        assert np.array_equal(runs[0].bank_writes, runs[1].bank_writes)
        assert np.array_equal(runs[0].per_core_ipc, runs[1].per_core_ipc)


class TestSensitivityShapes:
    def test_smaller_l3_lowers_lifetime(self):
        from repro.config import sensitivity_l3_1m

        stage1 = Stage1Cache()
        mix = make_workloads(num_cores=16, count=1, seed=SEED)[0]
        base = run_workload(
            mix, "S-NUCA", baseline_config(), seed=SEED,
            n_instructions=30_000, stage1=stage1,
        )
        small = run_workload(
            mix, "S-NUCA", sensitivity_l3_1m(), seed=SEED,
            n_instructions=30_000, stage1=stage1,
        )
        # Half the lines per bank -> roughly half the write budget.
        assert small.min_lifetime < base.min_lifetime

    def test_smaller_l2_raises_writebacks(self):
        from repro.config import sensitivity_l2_128k
        from repro.cpu.core import AppSimulator

        base = AppSimulator("omnetpp", baseline_config(), seed=SEED).run(40_000)
        small = AppSimulator("omnetpp", sensitivity_l2_128k(), seed=SEED).run(40_000)
        assert small.wpki >= base.wpki * 0.9  # never collapses; usually rises
