"""Replacement policies: random, SRRIP, clean-first."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import (
    CleanFirstReplacement,
    RandomReplacement,
    SrripReplacement,
    make_replacement,
)
from repro.common.errors import ConfigError
from repro.config import CacheConfig


def small_cache(policy: str) -> Cache:
    """1 set x 4 ways."""
    return Cache(CacheConfig(64 * 4, 4, 1, name="t"), replacement=policy)


class TestFactory:
    def test_lru_is_native(self):
        assert make_replacement("lru") is None

    def test_known_names(self):
        assert isinstance(make_replacement("random"), RandomReplacement)
        assert isinstance(make_replacement("srrip"), SrripReplacement)
        assert isinstance(make_replacement("clean-first"), CleanFirstReplacement)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_replacement("plru")


class TestRandom:
    def test_deterministic(self):
        def victims():
            cache = small_cache("random")
            out = []
            for line in range(40):
                res = cache.access(line, False)
                if res.victim_line is not None:
                    out.append(res.victim_line)
            return out

        assert victims() == victims()

    def test_capacity_respected(self):
        cache = small_cache("random")
        for line in range(100):
            cache.access(line, False)
        assert cache.occupancy() == 4

    def test_stats_consistent(self):
        cache = small_cache("random")
        for line in range(50):
            cache.access(line, line % 2 == 0)
        s = cache.stats
        assert s.fills == s.misses
        assert s.writebacks + s.clean_evictions == s.fills - cache.occupancy()


class TestSrrip:
    def test_scan_resistance(self):
        """A reused line survives a one-shot scan that defeats LRU."""
        lru = small_cache("lru")
        srrip = small_cache("srrip")
        for cache in (lru, srrip):
            for _ in range(4):
                cache.access(0xA0, False)  # establish a hot line
            for line in range(1, 9):       # scan of never-reused lines
                cache.access(line, False)
                cache.access(0xA0, False)  # hot line stays hot
        assert srrip.contains(0xA0)
        # (plain LRU also keeps it under this interleaving; the stronger
        # SRRIP property is below)

    def test_victims_are_distant_lines(self):
        cache = small_cache("srrip")
        cache.access(0xA0, False)
        cache.access(0xA0, False)  # RRPV 0
        for line in (1, 2, 3):
            cache.access(line, False)  # RRPV 2 each
        res = cache.access(4, False)  # must evict a distant line, not 0xA0
        assert res.victim_line != 0xA0
        assert cache.contains(0xA0)

    def test_aging_finds_victim_eventually(self):
        cache = small_cache("srrip")
        for line in range(4):
            cache.access(line, False)
            cache.access(line, False)  # all RRPV 0
        res = cache.access(99, False)  # aging loop must terminate
        assert res.victim_line is not None


class TestCleanFirst:
    def test_prefers_clean_victim(self):
        cache = small_cache("clean-first")
        cache.access(0, True)    # dirty, LRU position
        cache.access(1, False)   # clean
        cache.access(2, True)    # dirty
        cache.access(3, False)   # clean
        res = cache.access(4, False)
        assert res.victim_line == 1  # LRU clean, not the older dirty 0
        assert not res.victim_dirty

    def test_falls_back_to_lru_when_all_dirty(self):
        cache = small_cache("clean-first")
        for line in range(4):
            cache.access(line, True)
        res = cache.access(9, False)
        assert res.victim_line == 0
        assert res.victim_dirty

    def test_reduces_writebacks_on_mixed_traffic(self, rng):
        """The design goal: fewer write-backs than LRU on mixed traffic."""
        def writebacks(policy):
            cache = Cache(CacheConfig(64 * 16 * 4, 4, 1, name="t"),
                          replacement=policy)
            lines = rng.integers(0, 512, size=6000)
            writes = rng.random(6000) < 0.3
            for line, w in zip(lines.tolist(), writes.tolist()):
                cache.access(line, w)
            return cache.stats.writebacks

        assert writebacks("clean-first") <= writebacks("lru")


class TestRotationInteraction:
    def test_rotation_requires_lru(self):
        cache = small_cache("srrip")
        with pytest.raises(ConfigError):
            cache.rotate_sets(1)
