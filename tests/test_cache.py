"""Write-back write-allocate cache behaviour."""

import pytest

from repro.cache.cache import Cache
from repro.common.errors import SimulationError
from repro.config import CacheConfig


@pytest.fixture
def cache(tiny_cache_config):
    """4 sets x 2 ways."""
    return Cache(tiny_cache_config)


class TestHitMiss:
    def test_cold_miss_allocates(self, cache):
        res = cache.access(0x100, False)
        assert not res.hit
        assert cache.contains(0x100)

    def test_second_access_hits(self, cache):
        cache.access(0x100, False)
        assert cache.access(0x100, False).hit

    def test_stats_track_hits_misses(self, cache):
        cache.access(1, False)
        cache.access(1, False)
        cache.access(2, True)
        assert cache.stats.demand_reads == 2
        assert cache.stats.demand_writes == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_hit_rate(self, cache):
        cache.access(1, False)
        cache.access(1, False)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestWriteBack:
    def test_write_marks_dirty(self, cache):
        cache.access(0x40, True)
        assert cache.is_dirty(0x40)

    def test_read_leaves_clean(self, cache):
        cache.access(0x40, False)
        assert not cache.is_dirty(0x40)

    def test_dirty_victim_reported(self, cache):
        # Same set (4 sets): lines 0, 4, 8 all map to set 0.
        cache.access(0, True)
        cache.access(4, False)
        res = cache.access(8, False)  # evicts line 0 (dirty)
        assert res.victim_line == 0
        assert res.victim_dirty
        assert cache.stats.writebacks == 1

    def test_clean_victim_not_written_back(self, cache):
        cache.access(0, False)
        cache.access(4, False)
        res = cache.access(8, False)
        assert res.victim_line == 0
        assert not res.victim_dirty
        assert cache.stats.clean_evictions == 1

    def test_write_hit_after_clean_fill_dirties(self, cache):
        cache.access(0x80, False)
        cache.access(0x80, True)
        assert cache.is_dirty(0x80)


class TestProbeAllocate:
    def test_probe_does_not_allocate(self, cache):
        assert not cache.probe(0x7)
        assert not cache.contains(0x7)
        assert cache.stats.misses == 1

    def test_probe_write_hit_dirties(self, cache):
        cache.allocate(0x7)
        assert cache.probe(0x7, is_write=True)
        assert cache.is_dirty(0x7)

    def test_allocate_dirty(self, cache):
        cache.allocate(0x9, dirty=True)
        assert cache.is_dirty(0x9)

    def test_allocate_carries_aux(self, cache):
        cache.allocate(0x9, aux=("core", True))
        assert cache.aux_of(0x9) == ("core", True)

    def test_victim_aux_returned(self, cache):
        cache.allocate(0, aux="first")
        cache.allocate(4)
        res = cache.allocate(8)
        assert res.victim_aux == "first"


class TestIndexShift:
    def test_shifted_sets_balance(self):
        """With index_shift=4, lines sharing low 4 bits spread over sets."""
        cfg = CacheConfig(64 * 16 * 4, 4, 1)  # 16 sets, 4 ways
        cache = Cache(cfg, index_shift=4)
        # 64 lines that all have low nibble 0 (same S-NUCA bank).
        for i in range(64):
            cache.access(i << 4, False)
        assert cache.occupancy() == 64  # no conflict evictions at all

    def test_distinct_lines_never_alias(self):
        cfg = CacheConfig(64 * 8 * 2, 2, 1)
        cache = Cache(cfg, index_shift=4)
        cache.access(0x10, False)
        assert not cache.access(0x1010, False).hit  # same set, different line


class TestMaintenance:
    def test_invalidate(self, cache):
        cache.access(5, True)
        present, dirty = cache.invalidate(5)
        assert present and dirty
        assert not cache.contains(5)

    def test_invalidate_absent(self, cache):
        assert cache.invalidate(5) == (False, False)

    def test_mark_dirty_requires_presence(self, cache):
        with pytest.raises(SimulationError):
            cache.mark_dirty(0x123)

    def test_set_aux_requires_presence(self, cache):
        with pytest.raises(SimulationError):
            cache.set_aux(0x123, None)

    def test_flush_reports_dirty_lines(self, cache):
        cache.access(1, True)
        cache.access(2, False)
        drained = dict(cache.flush())
        assert drained == {1: True, 2: False}
        assert cache.occupancy() == 0

    def test_resident_lines(self, cache):
        cache.access(1, False)
        cache.access(9, False)
        assert sorted(cache.resident_lines()) == [1, 9]


class TestCapacityBehaviour:
    def test_working_set_fits(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)  # 8 lines total
        for _round in range(3):
            for line in range(8):
                cache.access(line, False)
        # After warm-up rounds every access hits.
        assert cache.stats.misses == 8

    def test_working_set_exceeds(self, tiny_cache_config):
        cache = Cache(tiny_cache_config)
        for _round in range(3):
            for line in range(16):  # 2x capacity, cyclic -> always miss
                cache.access(line, False)
        assert cache.stats.hits == 0


def test_stats_merge():
    from repro.cache.cache import CacheStats

    a = CacheStats(demand_reads=2, hits=1, misses=1)
    b = CacheStats(demand_reads=3, hits=3, writebacks=2)
    a.merge(b)
    assert a.demand_reads == 5
    assert a.hits == 4
    assert a.writebacks == 2
