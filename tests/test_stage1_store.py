"""On-disk stage-1 store: round-trips, invalidation, signature guard.

Three contracts (see ``docs/PERFORMANCE.md`` "Stage-1 kernel & store"):

* **Bit-exactness**: a stored :class:`~repro.cpu.core.Stage1Result`
  round-trips field-for-field identical, arrays dtype-preserving.
* **Corruption safety**: stale-version, truncated and unreadable
  entries read as *misses*, never errors, and a warm store skips the
  calibration probes entirely (zero stage-1 simulations).
* **Signature completeness**: the content address covers *every*
  configuration field stage 1 reads and *none* it ignores, so sweeps
  over stage-2 knobs (NUCA topology, ReRAM, TLB) share one
  characterisation while any stage-1-relevant change invalidates it.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    CoreConfig,
    CriticalityConfig,
    MemoryConfig,
    NocConfig,
    ReRamConfig,
    TlbConfig,
    baseline_config,
)
from repro.cpu.core import AppSimulator
from repro.sim.calibrate import config_signature
from repro.sim.runner import Stage1Cache
from repro.sim.stage1_store import (
    STAGE1_FORMAT_VERSION,
    Stage1Store,
    as_stage1_store,
)
from repro.telemetry import Telemetry
from tests.test_stage1_kernel import assert_identical

APP = "milc"
SEED = 3
INSTR = 4_000
CFG = baseline_config()


def _simulate():
    return AppSimulator(APP, CFG, seed=SEED, base_cpi=1.0).run(INSTR)


class TestStage1StoreRoundTrip:
    def test_round_trip_bit_exact(self, tmp_path):
        store = Stage1Store(tmp_path)
        result = _simulate()
        store.put(result, CFG, seed=SEED, n_instructions=INSTR)
        loaded = store.get(APP, CFG, seed=SEED, n_instructions=INSTR)
        assert loaded is not None
        assert_identical(result, loaded)
        assert len(store) == 1

    def test_missing_entry_is_miss(self, tmp_path):
        store = Stage1Store(tmp_path)
        assert store.get(APP, CFG, seed=SEED, n_instructions=INSTR) is None
        assert store.misses == 1
        assert store.hits == 0

    def test_as_stage1_store_coercion(self, tmp_path):
        assert as_stage1_store(None) is None
        store = Stage1Store(tmp_path)
        assert as_stage1_store(store) is store
        coerced = as_stage1_store(str(tmp_path))
        assert isinstance(coerced, Stage1Store)
        assert coerced.root == store.root

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = Stage1Store(tmp_path)
        store.put(_simulate(), CFG, seed=SEED, n_instructions=INSTR)
        store.corrupt(APP, CFG, seed=SEED, n_instructions=INSTR)
        assert store.get(APP, CFG, seed=SEED, n_instructions=INSTR) is None
        assert store.corrupt_entries == 1
        assert store.misses == 1

    def test_stale_version_reads_as_plain_miss(self, tmp_path):
        store = Stage1Store(tmp_path)
        store.put(_simulate(), CFG, seed=SEED, n_instructions=INSTR)
        path = store.path_for(
            store.fingerprint(APP, CFG, seed=SEED, n_instructions=INSTR)
        )
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files if k != "meta"}
            meta = json.loads(str(data["meta"]))
        assert meta["format_version"] == STAGE1_FORMAT_VERSION
        meta["format_version"] = STAGE1_FORMAT_VERSION + 1
        with open(path, "wb") as fh:
            np.savez(fh, meta=json.dumps(meta), **arrays)
        assert store.get(APP, CFG, seed=SEED, n_instructions=INSTR) is None
        assert store.corrupt_entries == 0  # well-formed, just incompatible
        assert store.misses == 1


class TestStage1CacheStoreTier:
    def test_warm_store_skips_simulation_and_calibration(
        self, tmp_path, monkeypatch
    ):
        Stage1Cache(store=tmp_path).get(
            APP, CFG, seed=SEED, n_instructions=INSTR
        )
        # A fresh in-memory cache over the same store must never reach
        # the calibration probes or the simulator.
        import repro.sim.runner as runner

        def boom(*args, **kwargs):
            raise AssertionError("warm store must not calibrate")

        monkeypatch.setattr(runner, "calibrated_base_cpi", boom)
        monkeypatch.setattr(
            runner.AppSimulator, "run",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("warm store must not simulate")
            ),
        )
        warm = Stage1Cache(store=tmp_path)
        result = warm.get(APP, CFG, seed=SEED, n_instructions=INSTR)
        assert result.app == APP
        assert warm.store.hits == 1
        assert warm.store.misses == 0

    def test_warm_result_identical_to_fresh(self, tmp_path):
        fresh = Stage1Cache(store=tmp_path).get(
            APP, CFG, seed=SEED, n_instructions=INSTR
        )
        warm = Stage1Cache(store=tmp_path).get(
            APP, CFG, seed=SEED, n_instructions=INSTR
        )
        assert_identical(fresh, warm)

    def test_telemetry_counters(self, tmp_path):
        telemetry = Telemetry()
        cache = Stage1Cache(store=tmp_path)
        cache.bind_telemetry(telemetry.registry)
        cache.get(APP, CFG, seed=SEED, n_instructions=INSTR)  # cold
        cache.get(APP, CFG, seed=SEED, n_instructions=INSTR)  # LRU hit
        jobs = telemetry.registry.subtree("jobs")
        assert jobs["jobs.stage1.hits"] == 1
        assert jobs["jobs.stage1.misses"] == 1
        assert jobs["jobs.stage1.store.misses"] == 1
        assert jobs["jobs.stage1.store.writes"] == 1
        assert jobs["jobs.stage1.store.hits"] == 0
        assert jobs["jobs.stage1.store.corrupt"] == 0


# ---------------------------------------------------------------------------
# Signature-completeness guard: one perturbation per stage-1-relevant
# field (the signature must change) and one per stage-2-only knob (it
# must not).  Perturbations go through the real constructors, so every
# variant is a valid SystemConfig.

def _base(**kw):
    return dataclasses.replace(baseline_config(), **kw)


SENSITIVE = {
    "num_cores": lambda: _base(
        num_cores=8, noc=NocConfig(mesh_cols=4, mesh_rows=2)
    ),
    "core.clock_hz": lambda: _base(core=CoreConfig(clock_hz=3.0e9)),
    "core.rob_entries": lambda: _base(core=CoreConfig(rob_entries=64)),
    "l1.size_bytes": lambda: _base(l1=CacheConfig(64 * 1024, 4, 2)),
    "l1.assoc": lambda: _base(l1=CacheConfig(32 * 1024, 8, 2)),
    "l1.latency": lambda: _base(l1=CacheConfig(32 * 1024, 4, 3)),
    # Line size is one global knob (all levels must agree), spanning the
    # three per-level line_bytes slots of the signature.
    "line_bytes": lambda: _base(
        l1=CacheConfig(32 * 1024, 4, 2, line_bytes=128),
        l2=CacheConfig(256 * 1024, 8, 5, line_bytes=128),
        l3_bank=CacheConfig(2 * 1024 * 1024, 16, 100, line_bytes=128),
    ),
    "l2.size_bytes": lambda: _base(l2=CacheConfig(512 * 1024, 8, 5)),
    "l2.assoc": lambda: _base(l2=CacheConfig(256 * 1024, 4, 5)),
    "l2.latency": lambda: _base(l2=CacheConfig(256 * 1024, 8, 6)),
    "l3_bank.size_bytes": lambda: _base(
        l3_bank=CacheConfig(4 * 1024 * 1024, 16, 100)
    ),
    "l3_bank.assoc": lambda: _base(
        l3_bank=CacheConfig(2 * 1024 * 1024, 8, 100)
    ),
    "l3_bank.latency": lambda: _base(
        l3_bank=CacheConfig(2 * 1024 * 1024, 16, 90)
    ),
    "noc.hop_cycles": lambda: _base(noc=NocConfig(hop_cycles=8)),
    "memory.latency_cycles": lambda: _base(
        memory=MemoryConfig(latency_cycles=300)
    ),
    "memory.row_hit_latency_cycles": lambda: _base(
        memory=MemoryConfig(row_hit_latency_cycles=90)
    ),
    "memory.bandwidth_lines_per_cycle": lambda: _base(
        memory=MemoryConfig(bandwidth_lines_per_cycle=0.4)
    ),
    "memory.lines_per_row": lambda: _base(
        memory=MemoryConfig(lines_per_row=64)
    ),
    "memory.dram_banks": lambda: _base(memory=MemoryConfig(dram_banks=32)),
    "criticality.threshold_percent": lambda: _base(
        criticality=CriticalityConfig(threshold_percent=5.0)
    ),
    "criticality.block_cycles": lambda: _base(
        criticality=CriticalityConfig(block_cycles=32.0)
    ),
    "criticality.table_entries": lambda: _base(
        criticality=CriticalityConfig(table_entries=2048)
    ),
}

INSENSITIVE = {
    "noc.mesh_shape": lambda: _base(
        noc=NocConfig(mesh_cols=8, mesh_rows=2)
    ),
    "rnuca_cluster_size": lambda: _base(rnuca_cluster_size=8),
    "naive_directory_penalty": lambda: _base(naive_directory_penalty=100),
    "l3_replacement": lambda: _base(l3_replacement="srrip"),
    "l3_way_limit": lambda: _base(l3_way_limit=8),
    "reram.cell_endurance": lambda: _base(
        reram=ReRamConfig(cell_endurance=1e9)
    ),
    "reram.write_penalty_cycles": lambda: _base(
        reram=ReRamConfig(write_penalty_cycles=32)
    ),
    "tlb.entries": lambda: _base(tlb=TlbConfig(entries=128)),
    "core.issue_width": lambda: _base(core=CoreConfig(issue_width=2)),
    "core.commit_width": lambda: _base(core=CoreConfig(commit_width=2)),
}


class TestConfigSignatureCompleteness:
    def test_signature_field_count_matches_guard(self):
        # One SENSITIVE perturbation per signature field, except the
        # global line size, whose single knob spans three per-level
        # slots: extending the signature must extend this guard too.
        assert len(config_signature(baseline_config())) == len(SENSITIVE) + 2

    @pytest.mark.parametrize("field", sorted(SENSITIVE))
    def test_stage1_relevant_field_changes_signature(self, field):
        assert config_signature(SENSITIVE[field]()) != config_signature(
            baseline_config()
        ), field

    @pytest.mark.parametrize("field", sorted(INSENSITIVE))
    def test_stage2_only_knob_keeps_signature(self, field):
        assert config_signature(INSENSITIVE[field]()) == config_signature(
            baseline_config()
        ), field

    @pytest.mark.parametrize("field", sorted(INSENSITIVE))
    def test_stage2_only_knob_shares_store_entry(self, field, tmp_path):
        store = Stage1Store(tmp_path)
        base_fp = store.fingerprint(APP, CFG, seed=SEED, n_instructions=INSTR)
        assert store.fingerprint(
            APP, INSENSITIVE[field](), seed=SEED, n_instructions=INSTR
        ) == base_fp, field

    def test_different_budget_or_seed_different_entry(self, tmp_path):
        store = Stage1Store(tmp_path)
        base = store.fingerprint(APP, CFG, seed=SEED, n_instructions=INSTR)
        assert store.fingerprint(
            APP, CFG, seed=SEED + 1, n_instructions=INSTR
        ) != base
        assert store.fingerprint(
            APP, CFG, seed=SEED, n_instructions=INSTR * 2
        ) != base
        assert store.fingerprint(
            "mcf", CFG, seed=SEED, n_instructions=INSTR
        ) != base
