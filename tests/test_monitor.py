"""Live sweep monitoring: spans, HTTP monitor, Perfetto export, top."""

import io
import json
import sys
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.common.errors import ReproError
from repro.config import baseline_config, scaled_config
from repro.jobs.scheduler import matrix_jobs, run_jobs
from repro.obs.chrome_trace import (
    chrome_trace,
    export_chrome_trace,
    span_event_count,
    validate_chrome_trace,
)
from repro.obs.progress import JobEvent, SweepProgress, tee_observers
from repro.obs.server import (
    MonitorServer,
    MonitorState,
    prometheus_name,
    render_prometheus,
)
from repro.obs.spans import (
    DISABLED_SPANS,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanObserver,
    SpanRecorder,
    SpanWriter,
    canonical_key,
    canonical_span_set,
    load_spans,
    phase_wall_table,
)
from repro.obs.top import (
    fetch_status,
    render_dashboard,
    run_top,
    status_from_files,
)
from repro.telemetry import Telemetry
from repro.telemetry.registry import StatsRegistry
from repro.trace.workloads import Workload

INSTR = 6_000

CONFIG = scaled_config(baseline_config(), cores=4)

GRID_WORKLOADS = [
    Workload("mixA", ("hmmer", "namd", "povray", "dealII")),
    Workload("mixB", ("hmmer", "sjeng", "gromacs", "namd")),
]
GRID_SCHEMES = ("S-NUCA", "Re-NUCA")


@pytest.fixture(scope="module")
def flat_cpi():
    """Skip the expensive calibration probes; preserves determinism."""
    mp = pytest.MonkeyPatch()
    mp.setattr(
        "repro.sim.runner.calibrated_base_cpi",
        lambda app, config, seed=None: 1.0,
    )
    yield
    mp.undo()


def grid_jobs(seed=7):
    return matrix_jobs(
        GRID_WORKLOADS, GRID_SCHEMES, CONFIG, seed=seed, n_instructions=INSTR
    )


def make_span(name="measure", category="phase", *, span_id="s1",
              parent_id=None, start=1.0, end=2.0, pid=100, **attrs):
    return Span(
        trace_id="tfixed", span_id=span_id, parent_id=parent_id,
        name=name, category=category, start_s=start, end_s=end,
        pid=pid, attrs=attrs,
    )


# -- the span recorder -------------------------------------------------------


class TestSpanRecorder:
    def test_span_nesting_parents_and_records(self):
        rec = SpanRecorder(trace_id="tfixed")
        with rec.span("cell", "job", label="WL1/S-NUCA") as outer:
            with rec.span("measure") as inner:
                assert inner.parent_id == outer.span_id
        # Inner span finishes (and is recorded) first.
        assert [s.name for s in rec.spans] == ["measure", "cell"]
        measure, cell = rec.spans
        assert measure.parent_id == cell.span_id
        assert cell.category == "job" and measure.category == "phase"
        # The context frame's attributes flow down to nested spans.
        assert measure.attrs["label"] == "WL1/S-NUCA"
        assert cell.trace_id == "tfixed"

    def test_ids_deterministic_across_recorders(self):
        def record(trace_id):
            rec = SpanRecorder(trace_id=trace_id)
            with rec.span("cell", "job"):
                with rec.span("measure"):
                    pass
                with rec.span("measure"):
                    pass
            return [s.span_id for s in rec.spans]

        assert record("tsame") == record("tsame")
        assert record("tsame") != record("tother")

    def test_repeated_names_get_distinct_ids(self):
        rec = SpanRecorder(trace_id="tfixed")
        with rec.span("measure"):
            pass
        with rec.span("measure"):
            pass
        first, second = rec.spans
        assert first.span_id != second.span_id

    def test_scope_sets_parent_and_attrs_without_recording(self):
        rec = SpanRecorder(trace_id="tfixed")
        with rec.scope(parent_id="p0", workload="mixA", scheme="S-NUCA"):
            with rec.span("stage1"):
                pass
        assert len(rec.spans) == 1
        span = rec.spans[0]
        assert span.parent_id == "p0"
        assert span.attrs["workload"] == "mixA"
        assert span.attrs["scheme"] == "S-NUCA"

    def test_event_is_an_instant(self):
        rec = SpanRecorder(trace_id="tfixed")
        span = rec.event("retry", label="WL1/S-NUCA")
        assert span.category == "event"
        assert span.start_s == span.end_s
        assert span.duration_s == 0.0

    def test_timestamps_monotonic_within_recorder(self):
        rec = SpanRecorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        a, b = rec.spans
        assert a.end_s >= a.start_s
        assert b.start_s >= a.start_s

    def test_sink_sees_each_finished_span(self):
        seen = []
        rec = SpanRecorder(trace_id="tfixed", sink=seen.append)
        with rec.span("cell", "job"):
            rec.event("retry")
        assert [s.name for s in seen] == ["retry", "cell"]

    def test_disabled_recorder_records_nothing(self):
        assert DISABLED_SPANS.enabled is False
        with DISABLED_SPANS.span("measure") as got:
            assert got is None
        assert DISABLED_SPANS.event("retry") is None
        with DISABLED_SPANS.scope(parent_id="p"):
            pass
        assert DISABLED_SPANS.spans == []

    def test_disabled_span_context_is_shared(self):
        # The no-op context manager is a singleton: entering a span on a
        # disabled recorder must not allocate per call.
        rec = SpanRecorder(enabled=False)
        assert rec.span("a") is rec.span("b")

    def test_merge_state_stamps_extra_and_flows_to_sink(self):
        worker = SpanRecorder(trace_id="tfixed")
        with worker.span("measure", workload="mixA"):
            pass
        seen = []
        parent = SpanRecorder(trace_id="tfixed", sink=seen.append)
        parent.merge_state(worker.export_state(), extra={"scheme": "S-NUCA"})
        assert len(parent.spans) == 1
        merged = parent.spans[0]
        assert merged.span_id == worker.spans[0].span_id
        assert merged.attrs["workload"] == "mixA"
        assert merged.attrs["scheme"] == "S-NUCA"
        assert seen == parent.spans

    def test_merge_state_rejects_bad_record(self):
        parent = SpanRecorder(trace_id="tfixed")
        with pytest.raises(ReproError):
            parent.merge_state([{"v": SPAN_SCHEMA_VERSION, "trace": "t"}])


class TestCanonicalKeys:
    def test_volatile_attrs_excluded(self):
        a = make_span(attempt=0, pid=100, workers=1, wall_time_s=1.0,
                      scheme="S-NUCA")
        b = make_span(attempt=2, pid=999, workers=4, wall_time_s=9.0,
                      scheme="S-NUCA", start=5.0, end=9.0, span_id="s2")
        assert canonical_key(a) == canonical_key(b)

    def test_differing_stable_attrs_split_keys(self):
        a = make_span(scheme="S-NUCA")
        b = make_span(scheme="Re-NUCA")
        assert canonical_key(a) != canonical_key(b)

    def test_event_spans_excluded_from_canonical_set(self):
        spans = [
            make_span("cell", "job"),
            make_span("retry", "event", span_id="s2"),
        ]
        keys = canonical_span_set(spans)
        assert len(keys) == 1
        assert keys[0][0] == "job"


class TestSpanObserver:
    def test_dispatch_done_brackets_a_job_span(self):
        rec = SpanRecorder(trace_id="tfixed")
        obs = SpanObserver(rec, parent_id="root")
        obs(JobEvent("dispatch", "WL1/S-NUCA", 0))
        assert obs.open_span_id(0) is not None
        obs(JobEvent("done", "WL1/S-NUCA", 0, wall_time_s=0.5))
        assert obs.open_span_id(0) is None
        (span,) = rec.spans
        assert span.category == "job"
        assert span.parent_id == "root"
        assert span.attrs["status"] == "ok"
        assert span.attrs["label"] == "WL1/S-NUCA"

    def test_failed_closes_with_failed_status(self):
        rec = SpanRecorder(trace_id="tfixed")
        obs = SpanObserver(rec)
        obs(JobEvent("dispatch", "WL1/S-NUCA", 0))
        obs(JobEvent("failed", "WL1/S-NUCA", 0))
        (span,) = rec.spans
        assert span.attrs["status"] == "failed"

    def test_retry_instant_parents_under_open_job(self):
        rec = SpanRecorder(trace_id="tfixed")
        obs = SpanObserver(rec, parent_id="root")
        obs(JobEvent("dispatch", "WL1/S-NUCA", 0))
        obs(JobEvent("retry", "WL1/S-NUCA", 0))
        retry = rec.spans[0]
        assert retry.category == "event"
        assert retry.parent_id == obs.open_span_id(0)

    def test_cache_and_resumed_instants_under_root(self):
        rec = SpanRecorder(trace_id="tfixed")
        obs = SpanObserver(rec, parent_id="root")
        obs(JobEvent("cache", "WL1/S-NUCA", 0))
        obs(JobEvent("resumed", "WL2/S-NUCA", 1))
        assert [s.name for s in rec.spans] == ["cache", "resumed"]
        assert all(s.parent_id == "root" for s in rec.spans)


class TestSpanPersistence:
    def _write(self, tmp_path, spans):
        path = tmp_path / "spans.jsonl"
        with SpanWriter(path) as writer:
            writer.open()
            for span in spans:
                writer.record(span)
        return path

    def test_round_trip(self, tmp_path):
        spans = [make_span("cell", "job"),
                 make_span("measure", span_id="s2", parent_id="s1", k=1)]
        loaded = load_spans(self._write(tmp_path, spans))
        assert loaded == spans

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_spans(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = self._write(tmp_path, [make_span(), make_span(span_id="s2")])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "trace": "t", "id')  # interrupted append
        assert len(load_spans(path)) == 2

    def test_malformed_middle_line_raises(self, tmp_path):
        path = self._write(tmp_path, [make_span()])
        text = path.read_text()
        path.write_text("not json\n" + text)
        with pytest.raises(ReproError, match="malformed"):
            load_spans(path)

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        record = make_span().to_dict()
        record["v"] = 99
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ReproError, match="unsupported span schema"):
            load_spans(path)

    def test_truncate_starts_fresh_append_continues(self, tmp_path):
        path = self._write(tmp_path, [make_span()])
        writer = SpanWriter(path)
        writer.open()  # append mode by default (resume semantics)
        writer.record(make_span(span_id="s2"))
        writer.close()
        assert len(load_spans(path)) == 2
        fresh = SpanWriter(path)
        fresh.open(truncate=True)
        fresh.record(make_span(span_id="s3"))
        fresh.close()
        assert [s.span_id for s in load_spans(path)] == ["s3"]


class TestPhaseWallTable:
    def test_aggregates_phase_spans_only(self):
        spans = [
            make_span("measure", start=0.0, end=2.0),
            make_span("measure", start=0.0, end=4.0, span_id="s2"),
            make_span("stage1", start=0.0, end=1.0, span_id="s3"),
            make_span("cell", "job", span_id="s4"),
            make_span("retry", "event", span_id="s5"),
        ]
        rows = phase_wall_table(spans)
        assert [(r[0], r[1]) for r in rows] == [("measure", 2), ("stage1", 1)]
        name, calls, total, mean = rows[0]
        assert total == pytest.approx(6.0)
        assert mean == pytest.approx(3.0)

    def test_empty_input_empty_table(self):
        assert phase_wall_table([]) == []


# -- the monitor state and HTTP server ---------------------------------------


class TestMonitorState:
    def _drive(self, state):
        state.observe(JobEvent("dispatch", "a", 0))
        state.observe(JobEvent("done", "a", 0, wall_time_s=2.0))
        state.observe(JobEvent("cache", "b", 1))
        state.observe(JobEvent("dispatch", "c", 2))
        state.observe(JobEvent("retry", "c", 2))
        state.observe(JobEvent("failed", "c", 2))

    def test_snapshot_counts_and_counters(self):
        state = MonitorState(4, workers=2, label="unit")
        self._drive(state)
        snap = state.snapshot()
        assert snap["v"] == 1
        assert snap["total"] == 4 and snap["completed"] == 3
        assert snap["counts"]["done"] == 1
        assert snap["counts"]["cached"] == 1
        assert snap["counts"]["failed"] == 1
        assert snap["counts"]["pending"] == 1
        assert snap["counters"]["retries"] == 1
        assert snap["workers"]["configured"] == 2
        assert snap["finished"] is False

    def test_eta_excludes_failed_cells(self):
        # 4 cells: 1 done (2 s), 1 cached, 1 failed, 1 pending.  Only the
        # pending cell is future work: ETA = 1 * 2 s / 2 workers.
        state = MonitorState(4, workers=2)
        self._drive(state)
        assert state.eta_seconds() == pytest.approx(1.0)

    def test_eta_none_before_first_duration(self):
        state = MonitorState(2)
        state.observe(JobEvent("dispatch", "a", 0))
        assert state.eta_seconds() is None

    def test_finish_marks_finished(self):
        state = MonitorState(1)
        state.observe(JobEvent("done", "a", 0, wall_time_s=1.0))
        state.finish()
        snap = state.snapshot()
        assert snap["finished"] is True and snap["eta_s"] == 0.0


class TestPrometheus:
    def test_name_mangling(self):
        assert prometheus_name("jobs.executed") == "repro_jobs_executed"
        assert prometheus_name("llc.fetch-hits") == "repro_llc_fetch_hits"

    def _registry(self):
        registry = StatsRegistry()
        registry.counter("jobs.executed").inc(4)
        registry.counter("jobs.retry.valueerror").inc(2)
        registry.counter("jobs.retry.timeout").inc(1)
        registry.counter("wear.bank3.writes").inc(7)
        registry.gauge("sweep.workers").set(2.0)
        hist = registry.histogram("jobs.wall_time_s")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        return registry

    def test_exposition_families(self):
        text = render_prometheus(self._registry())
        assert "# TYPE repro_jobs_executed_total counter" in text
        assert "repro_jobs_executed_total 4" in text
        # Retry kinds collapse onto one labelled family.
        assert 'repro_jobs_retry_total{kind="valueerror"} 2' in text
        assert 'repro_jobs_retry_total{kind="timeout"} 1' in text
        # Per-bank names collapse onto a bank label.
        assert 'repro_wear_writes_total{bank="3"} 7' in text
        assert "repro_sweep_workers 2" in text

    def test_histogram_renders_as_summary(self):
        text = render_prometheus(self._registry())
        assert "# TYPE repro_jobs_wall_time_s summary" in text
        assert 'repro_jobs_wall_time_s{quantile="0.5"}' in text
        assert 'repro_jobs_wall_time_s{quantile="0.99"}' in text
        assert "repro_jobs_wall_time_s_sum 10" in text
        assert "repro_jobs_wall_time_s_count 4" in text
        assert "repro_jobs_wall_time_s_window 4" in text

    def test_snapshot_exposes_window_size(self):
        # The ``.window`` key states how many samples back the quantiles
        # (satellite of the Prometheus ``_window`` gauge).
        registry = self._registry()
        snap = registry.snapshot()
        assert snap["jobs.wall_time_s.window"] == 4.0
        assert snap["jobs.wall_time_s.count"] == 4.0


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=5) as response:
        return response.status, response.read()


class TestMonitorServer:
    def test_status_metrics_healthz(self):
        state = MonitorState(2, workers=2, label="unit")
        state.observe(JobEvent("done", "a", 0, wall_time_s=1.0))
        registry = StatsRegistry()
        registry.counter("jobs.executed").inc(1)
        with MonitorServer(state, registry=registry) as server:
            assert server.port > 0
            code, body = _get(server.url, "/status")
            assert code == 200
            status = json.loads(body)
            assert status["total"] == 2 and status["counts"]["done"] == 1
            code, body = _get(server.url, "/metrics")
            assert code == 200
            assert b"repro_jobs_executed_total 1" in body
            code, body = _get(server.url, "/healthz")
            assert code == 200 and body == b"ok\n"

    def test_metrics_404_without_registry(self):
        with MonitorServer(MonitorState(1)) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(server.url, "/metrics")
            assert exc.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(server.url, "/nope")
            assert exc.value.code == 404

    def test_stop_is_idempotent_and_releases_port(self):
        server = MonitorServer(MonitorState(1))
        port = server.start()
        server.stop()
        server.stop()
        rebound = MonitorServer(MonitorState(1), port=port)
        try:
            assert rebound.start() == port
        finally:
            rebound.stop()


# -- the Chrome trace exporter -----------------------------------------------


class TestChromeTrace:
    def _spans(self):
        return [
            make_span("sweep", "sweep", span_id="s0", pid=100,
                      start=0.0, end=10.0, total=2),
            make_span("WL1/S-NUCA", "job", span_id="s1", parent_id="s0",
                      pid=100, start=1.0, end=4.0),
            make_span("measure", "phase", span_id="s2", parent_id="s1",
                      pid=200, start=2.0, end=3.0),
            make_span("retry", "event", span_id="s3", parent_id="s1",
                      pid=100, start=2.5, end=2.5),
        ]

    def test_span_backed_event_count_matches(self):
        trace = chrome_trace(self._spans())
        validate_chrome_trace(trace)
        assert span_event_count(trace) == 4
        assert trace["otherData"]["spans"] == 4

    def test_durable_spans_complete_events_instants_markers(self):
        events = chrome_trace(self._spans())["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 3 and len(instants) == 1
        assert instants[0]["name"] == "retry" and instants[0]["s"] == "t"
        measure = next(e for e in complete if e["name"] == "measure")
        assert measure["dur"] == pytest.approx(1.0 * 1e6)
        assert measure["args"]["parent_id"] == "s1"

    def test_worker_tracks_named_via_metadata(self):
        events = chrome_trace(self._spans())["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {100: "sweep", 200: "worker 200"}

    def test_timestamps_rebased_to_zero(self):
        events = chrome_trace(self._spans()[1:3])["traceEvents"]
        first = next(e for e in events if e["ph"] == "X")
        assert first["ts"] == pytest.approx(0.0)

    def test_validate_rejects_bad_traces(self):
        with pytest.raises(ReproError):
            validate_chrome_trace([])
        with pytest.raises(ReproError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "Z", "pid": 1, "tid": 1, "ts": 0, "name": "x"},
            ]})
        with pytest.raises(ReproError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "name": "x"},
            ]})

    def test_export_writes_valid_file(self, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        with SpanWriter(spans_path) as writer:
            writer.open()
            for span in self._spans():
                writer.record(span)
        out = tmp_path / "trace.json"
        count = export_chrome_trace(spans_path, out)
        assert count == 4
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        assert span_event_count(trace) == len(load_spans(spans_path))


# -- repro top ---------------------------------------------------------------


class TestTop:
    def _status(self):
        state = MonitorState(4, workers=2, label="unit")
        state.observe(JobEvent("done", "WL1/S-NUCA", 0, wall_time_s=1.0))
        state.observe(JobEvent("cache", "WL1/Re-NUCA", 1))
        state.observe(JobEvent("dispatch", "WL2/S-NUCA", 2))
        state.observe(JobEvent("failed", "WL2/Re-NUCA", 3))
        return state.snapshot()

    def test_render_dashboard_grid_and_counters(self):
        frame = render_dashboard(self._status())
        assert "repro top — unit" in frame
        assert "cells 3/4" in frame
        assert "#crF" in frame  # the cell grid in submission order
        assert "[  2] WL2/S-NUCA" in frame  # the running lane
        assert "FAILED:" in frame

    def test_run_top_requires_a_source(self):
        with pytest.raises(ReproError, match="--url"):
            run_top()

    def test_offline_mode_renders_once(self, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        with SpanWriter(spans_path) as writer:
            writer.open()
            writer.record(make_span("sweep", "sweep", span_id="s0",
                                    start=0.0, end=9.0, total=2))
            writer.record(make_span("WL1/S-NUCA", "job", span_id="s1",
                                    parent_id="s0", label="WL1/S-NUCA",
                                    index=0))
            writer.record(make_span("cache", "event", span_id="s2",
                                    parent_id="s0", label="WL1/Re-NUCA",
                                    index=1))
        stream = io.StringIO()
        assert run_top(spans=spans_path, stream=stream) == 0
        frame = stream.getvalue()
        assert "cells 2/2" in frame and "FINISHED" in frame
        assert "#c" in frame

    def test_status_from_files_folds_journal_and_spans(self, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        with SpanWriter(spans_path) as writer:
            writer.open()
            writer.record(make_span("sweep", "sweep", span_id="s0",
                                    total=3, label="unit"))
            writer.record(make_span("WL1/S-NUCA", "job", span_id="s1",
                                    parent_id="s0", label="WL1/S-NUCA",
                                    index=0, status="failed"))
            writer.record(make_span("retry", "event", span_id="s2",
                                    parent_id="s1", index=0))
        status = status_from_files(None, spans_path)
        assert status["total"] == 3
        assert status["label"] == "unit"
        assert status["counts"]["failed"] == 1
        assert status["counts"]["pending"] == 2
        assert status["counters"]["retries"] == 1
        assert status["finished"] is False

    def test_live_mode_polls_until_finished(self):
        state = MonitorState(1, workers=1)
        state.observe(JobEvent("done", "a", 0, wall_time_s=0.1))
        state.finish()
        with MonitorServer(state) as server:
            stream = io.StringIO()
            assert run_top(url=server.url, interval_s=0.01,
                           stream=stream) == 0
            assert "FINISHED" in stream.getvalue()

    def test_fetch_status_rejects_unreachable_and_bad_version(self):
        with pytest.raises(ReproError, match="cannot reach"):
            fetch_status("http://127.0.0.1:1/status", timeout_s=0.2)


class TestSweepProgressServing:
    def test_serving_suffix_and_remaining(self):
        progress = SweepProgress(total=4, stream=io.StringIO(), workers=2)
        progress.serving = 8123
        progress(JobEvent("done", "a", 0, wall_time_s=1.0))
        progress(JobEvent("failed", "b", 1))
        line = progress.status_line()
        assert "serving :8123" in line
        # The failed cell is resolved, never future work.
        assert progress.remaining == 2

    def test_tee_observers_fan_out(self):
        seen_a, seen_b = [], []

        def observe_a(event):
            seen_a.append(event)

        assert tee_observers(None, None) is None
        assert tee_observers(observe_a, None) is observe_a
        fan = tee_observers(observe_a, seen_b.append)
        event = JobEvent("done", "a", 0)
        fan(event)
        assert seen_a == [event] and seen_b == [event]


# -- engine integration ------------------------------------------------------


class TestSchedulerSpans:
    def test_serial_sweep_records_span_tree(self, flat_cpi, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        run_jobs(grid_jobs(), spans=spans_path)
        spans = load_spans(spans_path)
        roots = [s for s in spans if s.category == "sweep"]
        jobs = [s for s in spans if s.category == "job"]
        phases = [s for s in spans if s.category == "phase"]
        assert len(roots) == 1
        assert roots[0].attrs["total"] == 4
        assert len(jobs) == 4
        assert all(j.parent_id == roots[0].span_id for j in jobs)
        assert all(j.attrs["status"] == "ok" for j in jobs)
        job_ids = {j.span_id for j in jobs}
        assert phases and all(p.parent_id in job_ids for p in phases)
        assert {p.name for p in phases} >= {"stage1", "measure", "reduce"}
        # Phases inherit the cell context pushed by the scheduler scope.
        assert all("workload" in p.attrs and "scheme" in p.attrs
                   for p in phases)
        # One shared trace id across the whole sweep.
        assert len({s.trace_id for s in spans}) == 1

    def test_parallel_chaos_kill_matches_serial_spans(self, flat_cpi,
                                                      tmp_path):
        serial_rec = SpanRecorder(trace_id="tserial")
        serial_results, _ = run_jobs(grid_jobs(), spans=serial_rec)

        parallel_rec = SpanRecorder(trace_id="tparallel")
        parallel_results, _ = run_jobs(
            grid_jobs(), max_workers=2, spans=parallel_rec,
            chaos="mixA/S-NUCA@0=kill", retries=1, backoff_s=0.0,
        )
        # Identical simulation results...
        for a, b in zip(serial_results, parallel_results):
            assert a.ipc == b.ipc and a.scheme == b.scheme
        # ...and an identical durable span structure, even though one
        # worker was SIGKILLed mid-cell and the cell re-ran elsewhere.
        assert canonical_span_set(parallel_rec.spans) == \
            canonical_span_set(serial_rec.spans)
        # The incident trail differs by design: the kill left a trace.
        incidents = {s.name for s in parallel_rec.spans
                     if s.category == "event"}
        assert "requeue" in incidents

    def test_cache_hits_record_instants(self, flat_cpi, tmp_path):
        cache_dir = tmp_path / "cache"
        run_jobs(grid_jobs(), cache=cache_dir)
        rec = SpanRecorder(trace_id="twarm")
        run_jobs(grid_jobs(), cache=cache_dir, spans=rec)
        cached = [s for s in rec.spans
                  if s.category == "event" and s.name == "cache"]
        assert len(cached) == 4
        assert len([s for s in rec.spans if s.category == "job"]) == 0

    def test_metrics_match_final_registry_snapshot(self, flat_cpi):
        telemetry = Telemetry()
        state = MonitorState(4, workers=2, registry=telemetry.registry)
        with MonitorServer(state, registry=telemetry.registry) as server:
            run_jobs(grid_jobs(), max_workers=2, telemetry=telemetry,
                     observer=state.observe)
            state.finish()
            _, body = _get(server.url, "/metrics")
            assert _get(server.url, "/status")[1]
        text = body.decode()
        snap = telemetry.registry.snapshot()
        assert snap["jobs.executed"] == 4.0
        assert f"repro_jobs_executed_total {int(snap['jobs.executed'])}" \
            in text
        # The endpoint is a pure render of the registry: at rest the two
        # views agree byte for byte.
        assert text == render_prometheus(telemetry.registry)

    def test_spans_file_appends_on_resume(self, flat_cpi, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        journal = tmp_path / "journal.jsonl"
        run_jobs(grid_jobs(), journal=journal, spans=spans_path)
        first = len(load_spans(spans_path))
        run_jobs(grid_jobs(), journal=journal, resume=True, spans=spans_path)
        spans = load_spans(spans_path)
        assert len(spans) > first  # resume appended, did not truncate
        resumed = [s for s in spans if s.name == "resumed"]
        assert len(resumed) == 4


# -- CLI end to end ----------------------------------------------------------


class TestMonitoredSweepE2E:
    @pytest.fixture()
    def small_machine(self, flat_cpi, monkeypatch):
        """Shrink the CLI's machine so the E2E sweep stays fast."""
        monkeypatch.setattr("repro.cli.baseline_config", lambda: CONFIG)

    def test_cli_sweep_serve_spans_trace_export(self, small_machine,
                                                tmp_path, monkeypatch,
                                                capsys):
        spans_path = tmp_path / "spans.jsonl"
        journal = tmp_path / "journal.jsonl"
        out = tmp_path / "matrix.json"
        stderr = io.StringIO()
        monkeypatch.setattr(sys, "stderr", stderr)
        codes = []
        thread = threading.Thread(target=lambda: codes.append(main([
            "sweep", "--workloads", "1", "--schemes",
            "S-NUCA", "R-NUCA", "Re-NUCA",
            "--instructions", str(INSTR), "--seed", "1", "-j", "2",
            "--serve", "0", "--spans", str(spans_path),
            "--journal", str(journal), "--out", str(out),
        ])))
        thread.start()
        try:
            # The monitor URL is announced on stderr before the sweep runs.
            url = None
            deadline = time.monotonic() + 60
            while url is None and time.monotonic() < deadline:
                for token in stderr.getvalue().split():
                    if token.startswith("http://127.0.0.1:"):
                        url = token
                        break
                time.sleep(0.02)
            assert url is not None, stderr.getvalue()

            # Poll /status until at least one cell resolved.
            status = None
            metrics = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    status = fetch_status(url)
                    if status["completed"] >= 1:
                        _, body = _get(url, "/metrics")
                        metrics = body.decode()
                        break
                except (ReproError, OSError):
                    if not thread.is_alive():
                        break
                time.sleep(0.05)
        finally:
            thread.join(timeout=300)
        assert not thread.is_alive()
        assert codes == [0]
        assert status is not None and status["completed"] >= 1
        assert status["total"] == 3
        # /metrics spoke Prometheus for the live registry.
        assert metrics is not None
        assert "repro_jobs_" in metrics

        # The span file holds the whole sweep; the exported Chrome trace
        # carries exactly one event per span record.
        spans = load_spans(spans_path)
        assert [s.category for s in spans].count("sweep") == 1
        trace_out = tmp_path / "trace.json"
        assert main(["trace", "export", str(trace_out),
                     "--spans", str(spans_path)]) == 0
        trace = json.loads(trace_out.read_text())
        validate_chrome_trace(trace)
        assert span_event_count(trace) == len(spans)

        # The offline dashboard and the per-phase table read the same files.
        assert main(["top", "--journal", str(journal),
                     "--spans", str(spans_path), "--once"]) == 0
        assert main(["stats", "--from-spans", str(spans_path)]) == 0
        captured = capsys.readouterr().out
        assert "3/3" in captured
        assert "measure" in captured

    def test_stats_from_spans_empty_file(self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        spans_path.write_text("")
        assert main(["stats", "--from-spans", str(spans_path)]) == 0
        assert "no phase spans" in capsys.readouterr().out

    def test_top_cli_requires_a_source(self, capsys):
        assert main(["top"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTelemetrySpansHandle:
    def test_telemetry_spans_flag(self):
        assert Telemetry().spans is None
        assert Telemetry(spans=False).spans is None
        handle = Telemetry(spans=True)
        assert isinstance(handle.spans, SpanRecorder)
        rec = SpanRecorder(trace_id="tfixed")
        assert Telemetry(spans=rec).spans is rec
