"""ASCII plotting helpers."""

import pytest

from repro.common.errors import ReproError
from repro.experiments.ascii_plot import (
    bar_chart,
    grouped_bars,
    interval_heatmap,
    scatter,
    wear_heatmap,
)


class TestBarChart:
    def test_peak_gets_full_bar(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert 4 <= lines[1].count("█") <= 5

    def test_title_and_unit(self):
        out = bar_chart({"x": 1.0}, title="T", unit="y")
        assert out.startswith("T\n")
        assert "y |" in out

    def test_zero_values_ok(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({"a": -1.0})


class TestGroupedBars:
    def test_groups_share_scale(self):
        out = grouped_bars(
            {"g1": {"a": 10.0}, "g2": {"a": 5.0}}, width=10
        )
        blocks = out.split("--- ")
        assert blocks[1].count("█") == 10
        assert blocks[2].count("█") == 5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            grouped_bars({})


class TestScatter:
    def test_markers_and_legend(self):
        out = scatter({"S-NUCA": (1.0, 2.0), "Private": (2.0, 1.0)},
                      xlabel="IPC", ylabel="life")
        assert "A=S-NUCA" in out and "B=Private" in out
        assert "A" in out.splitlines()[1] or any(
            "A" in line for line in out.splitlines()
        )

    def test_extremes_at_corners(self):
        out = scatter({"lo": (0.0, 0.0), "hi": (1.0, 1.0)}, cols=20, rows=5)
        rows = [line for line in out.splitlines() if line.startswith("  |")]
        assert "B" in rows[0]      # hi at the top
        assert "A" in rows[-1]     # lo at the bottom

    def test_single_point_ok(self):
        assert "A=only" in scatter({"only": (3.0, 4.0)})

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            scatter({})


class TestHeatmap:
    def test_mesh_shape(self):
        out = wear_heatmap([1, 2, 3, 4] * 4, cols=4)
        assert len(out.splitlines()) == 4

    def test_peak_is_full_shade(self):
        out = wear_heatmap([0.0, 10.0, 0.0, 0.0], cols=4)
        assert "███ 100%" in out
        assert "100%" in out

    def test_bad_shape_rejected(self):
        with pytest.raises(ReproError):
            wear_heatmap([1, 2, 3], cols=4)


class TestIntervalHeatmap:
    def test_one_line_per_row_plus_axis(self):
        out = interval_heatmap([[1, 2], [3, 4], [0, 8]])
        lines = out.splitlines()
        assert len(lines) == 4  # 3 banks + axis footer
        assert lines[0].startswith("bank0")
        assert "3 intervals" not in out  # columns are intervals: 2 here
        assert "2 intervals" in out

    def test_peak_cell_full_shade_and_row_sums(self):
        out = interval_heatmap([[0.0, 8.0], [1.0, 1.0]])
        lines = out.splitlines()
        assert "█" in lines[0]
        assert lines[0].rstrip().endswith("8")
        assert lines[1].rstrip().endswith("2")

    def test_custom_row_label_and_title(self):
        out = interval_heatmap([[1.0]], row_label="set", title="t")
        assert out.splitlines()[0] == "t"
        assert "set0" in out

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            interval_heatmap([])
        with pytest.raises(ReproError):
            interval_heatmap([[]])

    def test_ragged_rejected(self):
        with pytest.raises(ReproError):
            interval_heatmap([[1, 2], [3]])
