"""Observability layer: run ledger, diff gate, HTML report, progress."""

import io
import json

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.obs.bench import (
    BENCH_FORMAT_VERSION,
    append_bench_point,
    bench_point,
    load_bench,
    load_bench_trajectory,
    validate_bench_point,
)
from repro.obs.diff import (
    DEFAULT_RULES,
    ToleranceRule,
    diff_metric_maps,
    ledger_metric_map,
    load_comparable,
    load_rules,
    matrix_metric_map,
    render_findings,
)
from repro.obs.html_report import _scatter_chart, render_html_report
from repro.obs.ledger import (
    LEDGER_FORMAT_VERSION,
    RunLedger,
    RunRecord,
    new_run_id,
)
from repro.obs.progress import JobEvent, SweepProgress
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.telemetry.intervals import IntervalSeries


def make_result(workload="WL1", scheme="S-NUCA", *, ipc_per_core=1.0, n=4,
                with_intervals=False):
    result = WorkloadSchemeResult(
        workload=workload,
        scheme=scheme,
        apps=("hmmer",) * n,
        per_core_ipc=np.full(n, ipc_per_core),
        per_core_instructions=np.full(n, 1000, dtype=np.int64),
        per_core_cycles=np.full(n, 1000.0 / ipc_per_core),
        bank_writes=np.arange(n, dtype=np.int64) + 1,
        bank_lifetimes=np.asarray([5.0] * n),
        elapsed_cycles=1000.0,
        llc_fetch_hit_rate=0.5,
        llc_mean_fetch_latency=100.0,
        noc_mean_hops=2.0,
    )
    if with_intervals:
        series = IntervalSeries(1000)
        for i in range(1, 4):
            series.record(
                accesses=i * 100, instructions=i * 1000, cycles=i * 500.0,
                sample={f"wear.bank{b}.writes": float(i * 10 + b)
                        for b in range(n)},
            )
        result.intervals = series
    return result


def make_matrix(schemes=("S-NUCA", "Re-NUCA"), workloads=("WL1", "WL2"),
                **kwargs):
    matrix = MatrixResult(
        label="unit", schemes=tuple(schemes), workloads=tuple(workloads),
    )
    for i, workload in enumerate(workloads):
        for j, scheme in enumerate(schemes):
            matrix.add(make_result(
                workload, scheme, ipc_per_core=1.0 + 0.1 * i + 0.01 * j,
                **kwargs,
            ))
    return matrix


def make_record(workload="WL1", scheme="S-NUCA", **kwargs):
    return RunRecord.for_result(
        make_result(workload, scheme),
        seed=7, n_instructions=6000, wall_time_s=1.5, **kwargs,
    )


class TestRunRecord:
    def test_for_result_carries_headline_metrics(self):
        record = make_record()
        result = make_result()
        assert record.metrics["ipc"] == pytest.approx(result.ipc)
        assert record.metrics["min_lifetime"] == pytest.approx(
            result.min_lifetime)
        assert record.metrics["wear_cov"] == pytest.approx(result.wear_cov)
        assert record.source == "executed"
        assert record.timestamp > 0

    def test_dict_round_trip(self):
        record = make_record(profile={"measure": 0.5}, engine={"total": 4})
        clone = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert clone == record

    def test_bad_source_rejected(self):
        with pytest.raises(ReproError, match="source"):
            make_record(source="wishful")

    def test_from_dict_rejects_unknown_version(self):
        payload = make_record().to_dict()
        payload["v"] = 999
        with pytest.raises(ReproError, match="unsupported ledger record"):
            RunRecord.from_dict(payload)

    def test_from_dict_rejects_missing_field(self):
        payload = make_record().to_dict()
        del payload["metrics"]
        with pytest.raises(ReproError, match="malformed ledger record"):
            RunRecord.from_dict(payload)

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


class TestRunLedger:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(make_record())
            ledger.append(make_record(scheme="Re-NUCA"))
        records = RunLedger(path).load()
        assert [r.scheme for r in records] == ["S-NUCA", "Re-NUCA"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nope.jsonl").load() == []

    def test_append_reopens_after_close(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(make_record())
        ledger.close()
        ledger.append(make_record(scheme="Re-NUCA"))
        ledger.close()
        assert len(RunLedger(path).load()) == 2

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(make_record())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "run_id": "r1", "work')
        records = RunLedger(path).load()
        assert len(records) == 1
        assert records[0].scheme == "S-NUCA"

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(make_record())
        path.write_text("not json\n" + path.read_text())
        with pytest.raises(ReproError, match="malformed"):
            RunLedger(path).load()

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        payload = make_record().to_dict()
        payload["v"] = LEDGER_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload) + "\n\n")
        with pytest.raises(ReproError, match="unsupported ledger record"):
            RunLedger(path).load()

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(make_record())
        assert len(RunLedger(path).load()) == 1


class TestToleranceRule:
    def test_within_tolerance_passes(self):
        rule = ToleranceRule("ipc", rel_tol=0.01)
        assert not rule.violated_by(100.0, 100.5)
        assert rule.violated_by(100.0, 102.0)

    def test_direction_decrease_ignores_gains(self):
        rule = ToleranceRule("min_lifetime", rel_tol=0.01,
                             direction="decrease")
        assert not rule.violated_by(10.0, 20.0)
        assert rule.violated_by(10.0, 9.0)

    def test_direction_increase_ignores_drops(self):
        rule = ToleranceRule("wear_cov", rel_tol=0.01, direction="increase")
        assert not rule.violated_by(0.5, 0.1)
        assert rule.violated_by(0.5, 0.6)

    def test_abs_floor_protects_near_zero_baselines(self):
        rule = ToleranceRule("wear_cov", rel_tol=0.02, abs_tol=0.005)
        # 2% of 0.01 is tiny; the absolute floor keeps noise legal.
        assert not rule.violated_by(0.01, 0.014)
        assert rule.violated_by(0.01, 0.02)

    def test_bad_direction_rejected(self):
        with pytest.raises(ReproError, match="direction"):
            ToleranceRule("ipc", direction="sideways")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError, match=">= 0"):
            ToleranceRule("ipc", rel_tol=-0.1)


class TestDiff:
    def test_identical_maps_all_pass(self):
        cells = matrix_metric_map(make_matrix())
        findings = diff_metric_maps(cells, dict(cells))
        assert findings and all(f.ok for f in findings)

    def test_ipc_drift_fails(self):
        base = matrix_metric_map(make_matrix())
        current = {k: dict(v) for k, v in base.items()}
        current[("WL1", "S-NUCA")]["ipc"] *= 1.02
        findings = diff_metric_maps(base, current)
        bad = [f for f in findings if not f.ok]
        assert [(f.workload, f.scheme, f.metric) for f in bad] == [
            ("WL1", "S-NUCA", "ipc")
        ]
        assert bad[0].delta_pct == pytest.approx(2.0)

    def test_missing_cell_is_a_failure(self):
        base = matrix_metric_map(make_matrix())
        current = dict(base)
        del current[("WL2", "Re-NUCA")]
        findings = diff_metric_maps(base, current)
        bad = [f for f in findings if not f.ok]
        assert len(bad) == 1 and bad[0].metric == "*"
        assert "missing" in bad[0].note

    def test_extra_cell_is_informational(self):
        base = matrix_metric_map(make_matrix())
        current = dict(base)
        current[("WL9", "S-NUCA")] = {"ipc": 1.0}
        findings = diff_metric_maps(base, current)
        assert all(f.ok for f in findings)

    def test_unruled_metrics_are_skipped(self):
        findings = diff_metric_maps(
            {("WL1", "S"): {"exotic": 1.0}},
            {("WL1", "S"): {"exotic": 99.0}},
        )
        assert findings == []

    def test_ledger_map_last_record_wins_and_has_wall_time(self):
        records = [
            make_record(), make_record(),  # same cell twice
        ]
        cells = ledger_metric_map(records)
        assert set(cells) == {("WL1", "S-NUCA")}
        assert cells[("WL1", "S-NUCA")]["wall_time_s"] == pytest.approx(1.5)

    def test_render_lists_failures_and_summary(self):
        base = matrix_metric_map(make_matrix())
        current = {k: dict(v) for k, v in base.items()}
        current[("WL1", "S-NUCA")]["ipc"] *= 2
        text = render_findings(diff_metric_maps(base, current))
        assert "FAIL" in text and "1 violation" in text
        ok_text = render_findings(diff_metric_maps(base, base))
        assert "all within tolerance" in ok_text


class TestRulesFile:
    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "rules": {"ipc": {"rel_tol": 0.01, "direction": "any"}},
        }))
        rules = load_rules(path)
        assert rules["ipc"].rel_tol == 0.01

    def test_checked_in_tolerances_match_defaults(self):
        rules = load_rules("baselines/tolerances.json")
        assert rules == DEFAULT_RULES

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text(json.dumps({"format_version": 99, "rules": {}}))
        with pytest.raises(ReproError, match="unsupported tolerance"):
            load_rules(path)

    def test_empty_rules_rejected(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text(json.dumps({"format_version": 1, "rules": {}}))
        with pytest.raises(ReproError, match="no rules"):
            load_rules(path)


class TestLoadComparable:
    def test_sniffs_matrix_file(self, tmp_path):
        from repro.sim.store import save_matrix

        path = tmp_path / "matrix.json"
        save_matrix(path, make_matrix())
        cells = load_comparable(path)
        assert ("WL1", "S-NUCA") in cells
        assert "ipc" in cells[("WL1", "S-NUCA")]

    def test_sniffs_ledger_file(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(make_record())
        cells = load_comparable(path)
        assert set(cells) == {("WL1", "S-NUCA")}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_comparable(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_comparable(tmp_path / "nope.json")


class TestHtmlReport:
    def test_report_is_self_contained(self):
        html = render_html_report(
            make_matrix(with_intervals=True),
            ledger_records=[make_record(profile={"measure": 1.0})],
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        # Zero external references: no URLs, scripts or stylesheets.
        for banned in ("http://", "https://", "<script", "<link",
                       "url(", "@import"):
            assert banned not in html, f"external reference: {banned}"

    def test_sections_present(self):
        html = render_html_report(
            make_matrix(with_intervals=True),
            ledger_records=[make_record(profile={"measure": 1.0})],
        )
        for heading in ("Scheme comparison", "Wear heatmaps",
                        "Interval write timelines", "Profiler phases",
                        "Run ledger history"):
            assert heading in html

    def test_without_ledger_or_intervals(self):
        html = render_html_report(make_matrix())
        assert "No interval series recorded" in html
        assert "No ledger supplied" in html

    def test_escapes_labels(self):
        matrix = make_matrix(workloads=("WL<script>",))
        html = render_html_report(matrix, title="<&>")
        assert "WL<script>" not in html
        assert "WL&lt;script&gt;" in html

    def test_paper_target_marker_when_rnuca_present(self):
        html = render_html_report(
            make_matrix(schemes=("S-NUCA", "R-NUCA", "Re-NUCA")))
        assert "+42% vs R-NUCA" in html


class TestBenchTrajectory:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        point = bench_point(make_matrix(), label="p1", wall_time_s=3.0)
        assert append_bench_point(path, point) == 1
        assert append_bench_point(
            path, bench_point(make_matrix(), label="p2")) == 2
        points = load_bench_trajectory(path)
        assert [p["label"] for p in points] == ["p1", "p2"]
        assert points[0]["wall_time_s"] == pytest.approx(3.0)
        assert points[0]["schemes"]["S-NUCA"]["mean_ipc"] > 0

    def test_missing_file_is_empty(self, tmp_path):
        assert load_bench_trajectory(tmp_path / "nope.json") == []

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text("{broken")
        with pytest.raises(ReproError, match="cannot read"):
            load_bench_trajectory(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps(
            {"format_version": BENCH_FORMAT_VERSION + 1, "points": []}))
        with pytest.raises(ReproError, match="unsupported trajectory"):
            load_bench_trajectory(path)


class TestBenchValidation:
    def test_matrix_and_search_points_valid(self):
        matrix_point = bench_point(make_matrix(), label="m")
        assert validate_bench_point(matrix_point) is None
        search_point = {
            "timestamp": 1.0, "git_sha": None, "label": "s",
            "bench": "search", "frontier_size": 3, "hypervolume": 2.5,
        }
        assert validate_bench_point(search_point) is None

    def test_rejects_malformed_points(self):
        assert "not an object" in validate_bench_point([1, 2])
        assert "timestamp" in validate_bench_point({"timestamp": "late"})
        base = {"timestamp": 1.0, "git_sha": ""}
        assert "git_sha" in validate_bench_point(base)
        flavourless = {"timestamp": 1.0, "git_sha": None}
        assert "flavour" in validate_bench_point(flavourless)
        bad_scheme = {
            "timestamp": 1.0, "git_sha": None,
            "schemes": {"S-NUCA": {"mean_ipc": "fast"}},
        }
        assert "S-NUCA" in validate_bench_point(bad_scheme)
        bad_search = {
            "timestamp": 1.0, "git_sha": None, "bench": "search",
            "frontier_size": 2.5, "hypervolume": 1.0,
        }
        assert "frontier_size" in validate_bench_point(bad_search)

    def test_bool_is_not_a_number(self):
        point = {
            "timestamp": True, "git_sha": None,
            "frontier_size": 1, "hypervolume": 1.0,
        }
        assert "timestamp" in validate_bench_point(point)

    def test_load_bench_skips_bad_points_with_reasons(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        good = bench_point(make_matrix(), label="ok")
        path.write_text(json.dumps({
            "format_version": BENCH_FORMAT_VERSION,
            "points": [good, {"timestamp": "bad"}, good],
        }))
        points, skipped = load_bench(path)
        assert len(points) == 2
        assert len(skipped) == 1
        assert "point 1" in skipped[0] and str(path) in skipped[0]

    def test_load_bench_missing_file_is_empty(self, tmp_path):
        assert load_bench(tmp_path / "nope.json") == ([], [])

    def test_load_bench_keeps_strict_envelope(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps(
            {"format_version": BENCH_FORMAT_VERSION + 1, "points": []}))
        with pytest.raises(ReproError, match="unsupported trajectory"):
            load_bench(path)


class TestScatterEdgeCases:
    def test_empty_frontier_renders_placeholder(self):
        assert "(no data)" in _scatter_chart(
            [], label="l", x_label="x", y_label="y")

    def test_single_point_pads_axes(self):
        svg = _scatter_chart(
            [(1.5, 8.0, "pt-front", "only")],
            label="l", x_label="x", y_label="y",
        )
        assert svg.count("<circle") == 1
        assert "NaN" not in svg and "Infinity" not in svg

    def test_single_point_at_origin(self):
        svg = _scatter_chart(
            [(0.0, 0.0, "pt-front", "origin")],
            label="l", x_label="x", y_label="y",
        )
        assert "NaN" not in svg and "Infinity" not in svg

    def test_all_dominated_points_draw_dimmed(self):
        svg = _scatter_chart(
            [(1.0, 1.0, "pt-dim", "a"), (2.0, 2.0, "pt-dim", "b")],
            label="l", x_label="x", y_label="y",
        )
        assert svg.count('class="pt-dim"') == 2
        assert "pt-front" not in svg

    def test_optional_href_wraps_marker(self):
        svg = _scatter_chart(
            [(1.0, 1.0, "h3", "linked", "#run-r1"),
             (2.0, 2.0, "h3", "plain")],
            label="l", x_label="x", y_label="y",
        )
        assert svg.count('<a href="#run-r1">') == 1
        assert svg.count("<circle") == 2


class TestUntrackedProvenance:
    def test_ledger_history_renders_untracked_sha(self):
        record = make_record()
        record.git_sha = None
        html = render_html_report(make_matrix(), ledger_records=[record])
        assert "untracked" in html


class TestSweepProgress:
    def make(self, total=4, workers=2):
        return SweepProgress(
            total=total, workers=workers,
            stream=io.StringIO(), min_redraw_s=0.0,
        )

    def test_event_folding(self):
        progress = self.make()
        progress(JobEvent("resumed", "WL1/S-NUCA", 0))
        progress(JobEvent("cache", "WL1/Re-NUCA", 1))
        progress(JobEvent("dispatch", "WL2/S-NUCA", 2))
        progress(JobEvent("done", "WL2/S-NUCA", 2, wall_time_s=2.0))
        assert progress.completed == 3
        line = progress.status_line()
        assert "3/4 cells" in line
        assert "1 cached" in line and "1 resumed" in line

    def test_eta_uses_mean_duration_over_workers(self):
        progress = self.make(total=5, workers=2)
        assert progress.eta_seconds() is None  # no durations yet
        progress(JobEvent("done", "a", 0, wall_time_s=4.0))
        progress(JobEvent("done", "b", 1, wall_time_s=2.0))
        # 3 remaining x mean(3s) / 2 workers.
        assert progress.eta_seconds() == pytest.approx(4.5)

    def test_cached_cells_do_not_skew_eta(self):
        progress = self.make(total=4)
        progress(JobEvent("cache", "a", 0))
        progress(JobEvent("done", "b", 1, wall_time_s=10.0))
        assert progress.eta_seconds() == pytest.approx(10.0)

    def test_in_flight_labels_shown(self):
        progress = self.make()
        progress(JobEvent("dispatch", "WL1/S-NUCA", 0))
        progress(JobEvent("dispatch", "WL1/Re-NUCA", 1))
        line = progress.status_line()
        assert "2 running" in line and "WL1/S-NUCA" in line

    def test_single_rewriting_line(self):
        progress = self.make(total=2)
        progress(JobEvent("dispatch", "a", 0))
        progress(JobEvent("done", "a", 0, wall_time_s=1.0))
        progress.close()
        text = progress.stream.getvalue()
        # Rewrites use carriage returns; only close() emits newlines.
        assert "\r" in text
        assert text.split("\r")[0] == ""
        assert "elapsed" in text.splitlines()[-1]

    def test_retry_counted(self):
        progress = self.make()
        progress(JobEvent("retry", "a", 0))
        assert "1 retried" in progress.status_line()

    def test_zero_total_does_not_divide(self):
        progress = self.make(total=0)
        assert "0/0" in progress.status_line()
