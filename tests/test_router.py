"""Flit-level router timing model."""

import pytest

from repro.common.errors import ConfigError
from repro.config import baseline_config
from repro.noc.router import (
    RouterTiming,
    effective_hop_cycles,
    validate_against_config,
)


class TestRouterTiming:
    def test_data_flits_for_64B_line(self):
        assert RouterTiming().data_flits == 5  # head + 4 payload flits

    def test_data_flits_rounds_up(self):
        timing = RouterTiming(flit_bytes=30, line_bytes=64)
        assert timing.data_flits == 1 + 3

    def test_hop_latency_single_flit(self):
        timing = RouterTiming(pipeline_stages=4, link_cycles=1)
        assert timing.hop_latency(1) == 5

    def test_hop_latency_serializes_body(self):
        timing = RouterTiming(pipeline_stages=4, link_cycles=1)
        assert timing.hop_latency(5) == 9

    def test_message_latency_pipelines_across_hops(self):
        timing = RouterTiming(pipeline_stages=4, link_cycles=1)
        # Heads pay per-hop cost; tail trails by flits-1 once.
        assert timing.message_latency(3, 5) == 3 * 5 + 4

    def test_zero_hops_free(self):
        assert RouterTiming().message_latency(0, 5) == 0

    def test_longer_path_costs_more(self):
        timing = RouterTiming()
        assert timing.message_latency(4, 5) > timing.message_latency(2, 5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RouterTiming(pipeline_stages=0)
        with pytest.raises(ConfigError):
            RouterTiming(flit_bytes=128, line_bytes=64)
        with pytest.raises(ConfigError):
            RouterTiming().hop_latency(0)
        with pytest.raises(ConfigError):
            RouterTiming().message_latency(-1, 1)


class TestEffectiveHopCycles:
    def test_zero_load_value(self):
        assert effective_hop_cycles(congestion_factor=1.0) == 6

    def test_default_matches_config(self):
        """NocConfig.hop_cycles must stay justified by the router model."""
        config = baseline_config()
        assert validate_against_config(config.noc.hop_cycles)

    def test_congestion_scales(self):
        assert effective_hop_cycles(congestion_factor=2.0) == pytest.approx(
            2 * effective_hop_cycles(congestion_factor=1.0), abs=1
        )

    def test_underload_rejected(self):
        with pytest.raises(ConfigError):
            effective_hop_cycles(congestion_factor=0.5)
