"""White-box checks on the stage-1 core pipeline internals."""

import numpy as np
import pytest

from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.trace.profiles import AppProfile


def custom_app(**overrides) -> AppProfile:
    """A synthetic profile not in Table II (AppSimulator accepts any)."""
    base = dict(
        name="custom",
        wpki=10.0,
        mpki=10.0,
        hitrate=0.3,
        ipc=1.0,
        chase_share=0.5,
        pc_noise=0.1,
    )
    base.update(overrides)
    return AppProfile(**base)


class TestStreamRecords:
    def test_writebacks_eventually_emitted(self):
        result = AppSimulator(custom_app(), baseline_config(), seed=1).run(40_000)
        s = result.stream
        assert s.is_wb.sum() > 0
        # A write-back's line was fetched (or prefilled) earlier; its
        # timestamps lie inside the run.
        assert s.ts[s.is_wb].min() >= 0
        assert s.ts.max() <= result.cycles + 1

    def test_store_fetches_marked_non_load(self):
        # wf = min(1, wpki/apki_l3): make every L3-bound op an RMW.
        result = AppSimulator(
            custom_app(wpki=30.0, mpki=10.0), baseline_config(), seed=1
        ).run(30_000)
        s = result.stream
        fetches = ~s.is_wb
        assert (~s.is_load[fetches]).sum() > 0  # prefetches + store fetches

    def test_wb_stall_fields_inert(self):
        result = AppSimulator(custom_app(), baseline_config(), seed=1).run(20_000)
        s = result.stream
        assert np.all(s.stall[s.is_wb] == 0)
        assert np.all(s.mlp >= 1)


class TestDependenceMatters:
    def test_chase_share_increases_critical_fetches(self):
        cfg = baseline_config()
        chasing = AppSimulator(
            custom_app(chase_share=0.9, pc_noise=0.0), cfg, seed=2
        ).run(40_000)
        streaming = AppSimulator(
            custom_app(name="c2", chase_share=0.0, pc_noise=0.0), cfg, seed=2
        ).run(40_000)

        def crit_frac(r):
            f = ~r.stream.is_wb & r.stream.is_load
            return r.stream.true_critical[f].mean() if f.any() else 0.0

        assert crit_frac(chasing) > crit_frac(streaming) + 0.2

    def test_chase_share_lowers_ipc_at_fixed_base_cpi(self):
        cfg = baseline_config()
        chasing = AppSimulator(
            custom_app(chase_share=0.9), cfg, seed=2, base_cpi=0.5
        ).run(40_000)
        streaming = AppSimulator(
            custom_app(name="c2", chase_share=0.0), cfg, seed=2, base_cpi=0.5
        ).run(40_000)
        assert chasing.ipc < streaming.ipc


class TestHierarchyPlumbing:
    def test_l1_victims_cascade(self):
        """Dirty L1 victims must not vanish: they reach the L2 (and the
        stream, eventually) rather than being dropped."""
        result = AppSimulator(custom_app(), baseline_config(), seed=3).run(30_000)
        # Conservation: every line that left L2 dirty appears as a wb
        # record; L2 writebacks stat equals emitted wb records.
        assert result.l2_stats.writebacks == int(result.stream.is_wb.sum())

    def test_mpki_counts_only_demand(self):
        result = AppSimulator(custom_app(), baseline_config(), seed=3).run(30_000)
        fetches = int((~result.stream.is_wb).sum())
        # L3 demand accesses == fetch records (every L2 miss emits one).
        assert result.l3_stats.accesses == fetches

    def test_threshold_override(self):
        sim = AppSimulator(
            custom_app(), baseline_config(), seed=3, criticality_threshold=50.0
        )
        assert sim.cpt.threshold == pytest.approx(0.5)

    def test_custom_profile_rejects_bad_fields(self):
        from repro.common.errors import TraceError

        with pytest.raises(TraceError):
            custom_app(hitrate=1.5)
