"""The resilience layer: chaos injection, recovery, quarantine, cancel.

These tests drive :func:`repro.jobs.scheduler.run_jobs` through *real*
failures — a worker that dies with SIGKILL, one that hangs past its
watchdog deadline, a poison cell that fails every attempt — and assert
the engine's contract: every non-poisoned cell still resolves
field-for-field identical to a serial run, poison cells land in the
quarantine journal instead of taking the sweep down, and an interrupted
or crashed sweep leaves a usable ``resume`` journal behind.
"""

import signal as signal_module

import numpy as np
import pytest

from repro.common.errors import ReproError, SweepCancelled
from repro.config import baseline_config, scaled_config
from repro.jobs.cache import ResultCache
from repro.jobs.chaos import ChaosError, ChaosPlan, ChaosRule, as_chaos
from repro.jobs.journal import (
    QUARANTINE_KINDS,
    QuarantineJournal,
    SweepJournal,
)
from repro.jobs.scheduler import GracefulCancel, matrix_jobs, run_jobs
from repro.jobs.spec import JobSpec
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.sim.store import result_from_dict, result_to_dict
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload

INSTR = 6_000

CONFIG = scaled_config(baseline_config(), cores=4)

GRID_WORKLOADS = [
    Workload("mixA", ("hmmer", "namd", "povray", "dealII")),
    Workload("mixB", ("hmmer", "sjeng", "gromacs", "namd")),
    Workload("mixC", ("soplex", "sphinx3", "povray", "hmmer")),
]
GRID_SCHEMES = ("S-NUCA", "R-NUCA", "Re-NUCA")


@pytest.fixture(scope="module")
def flat_cpi():
    """Skip the expensive calibration probes; preserves determinism."""
    mp = pytest.MonkeyPatch()
    mp.setattr(
        "repro.sim.runner.calibrated_base_cpi",
        lambda app, config, seed=None: 1.0,
    )
    yield
    mp.undo()


def grid_jobs(seed=7):
    return matrix_jobs(
        GRID_WORKLOADS, GRID_SCHEMES, CONFIG, seed=seed, n_instructions=INSTR
    )


def canned_result(workload="mixA", scheme="S-NUCA", *, n=4):
    return WorkloadSchemeResult(
        workload=workload,
        scheme=scheme,
        apps=("hmmer",) * n,
        per_core_ipc=np.full(n, 1.0),
        per_core_instructions=np.full(n, 1000, dtype=np.int64),
        per_core_cycles=np.full(n, 1000.0),
        bank_writes=np.arange(n, dtype=np.int64) + 1,
        bank_lifetimes=np.asarray([5.0] * n),
        elapsed_cycles=1000.0,
        llc_fetch_hit_rate=0.5,
        llc_mean_fetch_latency=100.0,
        noc_mean_hops=2.0,
    )


def spec_for(workload=None, scheme="S-NUCA", *, seed=7):
    return JobSpec.for_run(
        workload or GRID_WORKLOADS[0], scheme, CONFIG,
        seed=seed, n_instructions=INSTR,
    )


@pytest.fixture
def fake_runner(monkeypatch):
    """Replace the scheduler's run_workload with an instant canned stub.

    Serial-engine tests that exercise control flow (retries, quarantine,
    cancellation, ledger flushing) do not need real simulations.
    """
    calls = []

    def fake(workload, scheme, config, **kwargs):
        calls.append((workload.name, scheme))
        return canned_result(workload.name, scheme)

    monkeypatch.setattr("repro.jobs.scheduler.run_workload", fake)
    return calls


# -- chaos plan parsing and matching -----------------------------------------


class TestChaosPlan:
    def test_parse_single_rule(self):
        plan = ChaosPlan.parse("mixA/S-NUCA@0=kill")
        assert plan.rules == (
            ChaosRule("mixA/S-NUCA", "kill", attempts=(0,)),
        )

    def test_parse_multiple_rules_with_values(self):
        plan = ChaosPlan.parse(
            "mix*/Re-NUCA@0,1=raise; mixB/S-NUCA@*=hang:30"
        )
        assert len(plan.rules) == 2
        assert plan.rules[0].attempts == (0, 1)
        assert plan.rules[1].attempts is None
        assert plan.rules[1].value == 30.0

    @pytest.mark.parametrize("bad", [
        "", "mixA/S-NUCA", "mixA/S-NUCA@0", "@0=kill",
        "mixA/S-NUCA@x=kill", "mixA/S-NUCA@-1=kill",
        "mixA/S-NUCA@0=explode", "mixA/S-NUCA@0=hang:soon",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            ChaosPlan.parse(bad)

    def test_glob_and_attempt_matching(self):
        plan = ChaosPlan.parse("mix*/Re-NUCA@0=raise")
        assert plan.rule_for("mixA/Re-NUCA", 0) is not None
        assert plan.rule_for("mixA/Re-NUCA", 1) is None
        assert plan.rule_for("mixA/S-NUCA", 0) is None
        assert plan.rule_for("other/Re-NUCA", 0) is None

    def test_first_matching_rule_wins(self):
        plan = ChaosPlan.parse("mixA/*@*=raise;mixA/S-NUCA@*=kill")
        assert plan.rule_for("mixA/S-NUCA", 0).action == "raise"

    def test_apply_raise_is_transient_not_reproerror(self):
        plan = ChaosPlan.parse("mixA/S-NUCA@*=raise")
        with pytest.raises(ChaosError) as excinfo:
            plan.apply("mixA/S-NUCA", 0)
        assert not isinstance(excinfo.value, ReproError)
        plan.apply("mixB/S-NUCA", 0)  # no match: no-op

    def test_corrupt_is_a_worker_side_noop(self):
        ChaosPlan.parse("mixA/S-NUCA@*=corrupt").apply("mixA/S-NUCA", 0)

    def test_as_chaos_coercion(self):
        assert as_chaos(None) is None
        plan = ChaosPlan.parse("a/b@*=raise")
        assert as_chaos(plan) is plan
        assert as_chaos("a/b@*=raise") == plan

    def test_unknown_action_rejected_at_construction(self):
        with pytest.raises(ReproError):
            ChaosRule("x", "explode")


# -- deterministic retry backoff ---------------------------------------------


class TestRetryBackoff:
    def test_delay_is_deterministic(self):
        a = spec_for().retry_delay_s(1, base_s=0.25)
        b = spec_for().retry_delay_s(1, base_s=0.25)
        assert a == b

    def test_delay_grows_exponentially_within_jitter_band(self):
        spec = spec_for()
        for attempt in range(4):
            delay = spec.retry_delay_s(attempt, base_s=1.0)
            assert 0.5 * 2 ** attempt <= delay < 2 ** attempt

    def test_different_jobs_desynchronise(self):
        delays = {
            spec_for(scheme=scheme).retry_delay_s(0, base_s=1.0)
            for scheme in GRID_SCHEMES
        }
        assert len(delays) == len(GRID_SCHEMES)

    def test_zero_base_means_no_sleep(self):
        assert spec_for().retry_delay_s(3, base_s=0.0) == 0.0


# -- quarantine journal ------------------------------------------------------


class TestQuarantineJournal:
    def test_record_round_trip(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        spec = spec_for()
        with QuarantineJournal(path) as quarantine:
            quarantine.record(
                spec, kind="timeout", reason="exceeded 5.0s", attempts=2,
            )
        records = QuarantineJournal(path).load()
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "timeout"
        assert record["attempts"] == 2
        assert record["fingerprint"] == spec.fingerprint()
        assert JobSpec.from_dict(record["spec"]) == spec

    def test_appends_across_runs(self, tmp_path):
        path = tmp_path / "q.jsonl"
        for attempts in (1, 2):
            with QuarantineJournal(path) as quarantine:
                quarantine.record(
                    spec_for(scheme=GRID_SCHEMES[attempts - 1]),
                    kind="error", reason="x", attempts=attempts,
                )
        assert [r["attempts"] for r in QuarantineJournal(path).load()] == [1, 2]

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QuarantineJournal(path) as quarantine:
            quarantine.record(spec_for(), kind="crash", reason="x", attempts=1)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "err')  # torn mid-append
        assert len(QuarantineJournal(path).load()) == 1

    def test_earlier_corruption_raises(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('not json\n{"v": 1}\n', encoding="utf-8")
        with pytest.raises(ReproError):
            QuarantineJournal(path).load()

    def test_missing_file_is_empty(self, tmp_path):
        assert QuarantineJournal(tmp_path / "absent.jsonl").load() == []

    def test_unknown_kind_rejected(self, tmp_path):
        with QuarantineJournal(tmp_path / "q.jsonl") as quarantine:
            with pytest.raises(ReproError):
                quarantine.record(
                    spec_for(), kind="mystery", reason="x", attempts=1,
                )


# -- FAILED placeholder cells ------------------------------------------------


class TestFailedCells:
    def placeholder(self):
        return WorkloadSchemeResult.failed_cell(
            workload="mixA", scheme="Re-NUCA",
            apps=("hmmer",) * 4, n_banks=8,
            reason="timeout: exceeded 5.0s", age_fraction=0.9,
        )

    def test_placeholder_is_zeroed_and_flagged(self):
        cell = self.placeholder()
        assert cell.failed
        assert cell.failure_reason.startswith("timeout:")
        assert cell.ipc == 0.0
        assert cell.min_lifetime == 0.0
        assert cell.wear_cov == 0.0
        assert cell.age_fraction == 0.9

    def test_store_round_trip_preserves_failure(self):
        cell = self.placeholder()
        payload = result_to_dict(cell)
        assert payload["failed"] is True
        loaded = result_from_dict(payload)
        assert loaded.failed and loaded.failure_reason == cell.failure_reason

    def test_healthy_results_omit_failure_keys(self):
        payload = result_to_dict(canned_result())
        assert "failed" not in payload and "failure_reason" not in payload
        assert result_from_dict(payload).failed is False

    def matrix_with_failure(self):
        matrix = MatrixResult(
            label="t", schemes=("S-NUCA", "Re-NUCA"), workloads=("mixA",),
        )
        matrix.add(canned_result("mixA", "S-NUCA"))
        matrix.add(self.placeholder())
        return matrix

    def test_matrix_failed_cells_property(self):
        matrix = self.matrix_with_failure()
        assert [r.scheme for r in matrix.failed_cells] == ["Re-NUCA"]

    def test_diff_excludes_failed_cells(self):
        from repro.obs.diff import matrix_metric_map

        cells = matrix_metric_map(self.matrix_with_failure())
        assert ("mixA", "S-NUCA") in cells
        assert ("mixA", "Re-NUCA") not in cells

    def test_html_report_renders_failed_cells(self):
        from repro.obs.html_report import render_html_report

        html = render_html_report(self.matrix_with_failure(), title="chaos")
        assert "FAILED" in html
        assert "timeout: exceeded 5.0s" in html

    def test_progress_counts_failed_toward_completion(self):
        from repro.obs.progress import JobEvent, SweepProgress

        class Sink:
            def write(self, _text):
                pass

            def flush(self):
                pass

        progress = SweepProgress(total=2, stream=Sink())
        progress(JobEvent("dispatch", "mixA/S-NUCA", 0))
        progress(JobEvent("timeout", "mixA/S-NUCA", 0))
        progress(JobEvent("requeue", "mixA/S-NUCA", 0))
        progress(JobEvent("failed", "mixA/S-NUCA", 0))
        progress(JobEvent("dispatch", "mixA/Re-NUCA", 1))
        progress(JobEvent("done", "mixA/Re-NUCA", 1, wall_time_s=0.1))
        assert progress.completed == 2
        line = progress.status_line()
        assert "1 FAILED" in line and "1 timed out" in line


# -- engine argument validation ----------------------------------------------


class TestResilienceValidation:
    @pytest.mark.parametrize("kwargs", [
        {"job_timeout_s": 0.0},
        {"job_timeout_s": -1.0},
        {"backoff_s": -0.1},
        {"max_pool_rebuilds": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            run_jobs(grid_jobs()[:1], **kwargs)

    def test_quarantine_kinds_cover_poison_paths(self):
        assert set(QUARANTINE_KINDS) == {"error", "crash", "timeout"}


# -- serial engine resilience (canned runner) --------------------------------


class TestSerialResilience:
    def test_keep_going_quarantines_exhausted_retries(
        self, fake_runner, tmp_path
    ):
        jobs = grid_jobs()[:3]  # mixA under all three schemes
        quarantine = tmp_path / "q.jsonl"
        journal = tmp_path / "journal.jsonl"
        telemetry = Telemetry()
        results, report = run_jobs(
            jobs,
            chaos="mixA/R-NUCA@*=raise",
            retries=1, backoff_s=0.0,
            keep_going=True, quarantine=quarantine, journal=journal,
            telemetry=telemetry,
        )
        assert report.failed == 1 and report.executed == 2
        assert results[1].failed
        assert results[1].failure_reason.startswith("error:")
        assert not results[0].failed and not results[2].failed
        records = QuarantineJournal(quarantine).load()
        assert [r["kind"] for r in records] == ["error"]
        assert records[0]["label"] == "mixA/R-NUCA"
        assert records[0]["attempts"] == 2
        # The poisoned cell is NOT journaled as complete...
        assert len(SweepJournal(journal).load()) == 2
        snap = telemetry.registry.snapshot()
        assert snap["jobs.recovery.quarantined"] == 1
        # ...so a later resume retries it (chaos off: it heals).
        results2, report2 = run_jobs(
            jobs, journal=journal, resume=True,
        )
        assert report2.resumed == 2 and report2.executed == 1
        assert not any(r.failed for r in results2)

    def test_without_keep_going_poison_aborts_with_hint(
        self, fake_runner, tmp_path
    ):
        with pytest.raises(ReproError) as excinfo:
            run_jobs(
                grid_jobs()[:2],
                chaos="mixA/R-NUCA@*=raise", retries=0, backoff_s=0.0,
            )
        message = str(excinfo.value)
        assert "failed after 1 attempt(s)" in message
        assert "keep-going" in message

    def test_deterministic_failures_quarantine_without_retry(
        self, monkeypatch, tmp_path
    ):
        def broken(workload, scheme, config, **kwargs):
            if scheme == "R-NUCA":
                raise ReproError("bad configuration for this cell")
            return canned_result(workload.name, scheme)

        monkeypatch.setattr("repro.jobs.scheduler.run_workload", broken)
        quarantine = tmp_path / "q.jsonl"
        results, report = run_jobs(
            grid_jobs()[:3],
            retries=3, backoff_s=0.0,
            keep_going=True, quarantine=quarantine,
        )
        assert report.failed == 1 and report.retries == 0
        records = QuarantineJournal(quarantine).load()
        assert records[0]["kind"] == "error"
        assert records[0]["attempts"] == 1  # never retried

    def test_retry_kind_telemetry_breakdown(self, monkeypatch):
        failures = iter([OSError("disk hiccup")])

        def flaky(workload, scheme, config, **kwargs):
            try:
                raise next(failures)
            except StopIteration:
                return canned_result(workload.name, scheme)

        monkeypatch.setattr("repro.jobs.scheduler.run_workload", flaky)
        telemetry = Telemetry()
        _, report = run_jobs(
            grid_jobs()[:1], retries=1, backoff_s=0.0, telemetry=telemetry,
        )
        assert report.retries == 1
        snap = telemetry.registry.snapshot()
        assert snap["jobs.retried"] == 1
        assert snap["jobs.retry.oserror"] == 1

    def test_ledger_flushed_for_completed_cells_on_abort(
        self, monkeypatch, tmp_path
    ):
        def dies_second(workload, scheme, config, **kwargs):
            if scheme == "R-NUCA":
                raise ReproError("deterministic failure")
            return canned_result(workload.name, scheme)

        monkeypatch.setattr("repro.jobs.scheduler.run_workload", dies_second)
        from repro.obs.ledger import RunLedger

        jobs = grid_jobs()[:3]
        ledger = tmp_path / "ledger.jsonl"
        with pytest.raises(ReproError, match="deterministic failure"):
            run_jobs(jobs, ledger=ledger, backoff_s=0.0)
        records = RunLedger(ledger).load()
        assert [r.source for r in records] == ["executed"]
        assert records[0].fingerprint == jobs[0].spec.fingerprint()

    def test_chaos_corrupt_mangles_cache_entry(self, fake_runner, tmp_path):
        jobs = grid_jobs()[:2]
        cache = ResultCache(tmp_path / "cache")
        run_jobs(jobs, cache=cache, chaos="mixA/S-NUCA@0=corrupt")
        assert cache.get(jobs[0].spec) is None      # corrupted => miss
        assert cache.get(jobs[1].spec) is not None  # untouched => hit
        _, report = run_jobs(jobs, cache=cache)
        assert report.cache_hits == 1 and report.executed == 1

    def test_soft_interrupt_drains_and_raises_cancelled(
        self, fake_runner, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        events = []

        def interrupt_after_first(event):
            events.append(event.kind)
            if event.kind == "done" and events.count("done") == 1:
                signal_module.raise_signal(signal_module.SIGINT)

        with pytest.raises(SweepCancelled) as excinfo:
            run_jobs(
                grid_jobs()[:3], journal=journal,
                observer=interrupt_after_first,
            )
        message = str(excinfo.value)
        assert "1 of 3 cells" in message
        assert "--resume" in message and str(journal) in message
        # The finished cell reached the journal before the drain.
        assert len(SweepJournal(journal).load()) == 1

    def test_second_signal_hard_aborts(self):
        class Sink:
            def write(self, _text):
                pass

            def flush(self):
                pass

        cancel = GracefulCancel(stream=Sink())
        assert not cancel.soft
        cancel(signal_module.SIGINT, None)
        assert cancel.soft
        with pytest.raises(KeyboardInterrupt):
            cancel(signal_module.SIGINT, None)


# -- parallel engine resilience (real workers, real failures) ----------------


@pytest.fixture(scope="module")
def serial_reference(flat_cpi):
    """The ground truth the chaos-afflicted parallel sweep must match."""
    results, _report = run_jobs(grid_jobs(), max_workers=1)
    return [result_to_dict(result) for result in results]


class TestParallelResilience:
    #: Index of the poison cell (mixC/Re-NUCA) in grid order.
    POISON = 8

    def test_sweep_survives_kill_hang_and_poison(
        self, flat_cpi, serial_reference, tmp_path
    ):
        """The acceptance scenario: SIGKILL one worker mid-job, hang
        another past the watchdog deadline, poison a third cell — every
        non-poisoned cell still matches the serial run field for field,
        and the poison cell is quarantined instead of fatal."""
        jobs = grid_jobs()
        journal = tmp_path / "journal.jsonl"
        quarantine = tmp_path / "quarantine.jsonl"
        telemetry = Telemetry()
        results, report = run_jobs(
            jobs,
            max_workers=3,
            # The hang value far exceeds the watchdog deadline, and the
            # deadline (15 s) far exceeds a legitimate cell's wall time
            # (~3 s cold), so only the injected hang can expire it.
            chaos=(
                "mixA/R-NUCA@0=kill"
                ";mixB/S-NUCA@0=hang:120"
                ";mixC/Re-NUCA@*=raise"
            ),
            retries=1, backoff_s=0.01, job_timeout_s=15.0,
            keep_going=True, quarantine=quarantine, journal=journal,
            telemetry=telemetry,
        )
        assert len(results) == 9
        assert report.failed == 1
        assert report.executed == 8
        assert report.timeouts >= 1
        assert report.pool_rebuilds >= 2  # >=1 per SIGKILL, 1 per watchdog
        for index, payload in enumerate(serial_reference):
            if index == self.POISON:
                continue
            assert result_to_dict(results[index]) == payload, (
                f"cell {index} diverged from the serial run"
            )
        poisoned = results[self.POISON]
        assert poisoned.failed
        assert poisoned.failure_reason.startswith("error:")

        records = QuarantineJournal(quarantine).load()
        assert [r["label"] for r in records] == ["mixC/Re-NUCA"]
        assert records[0]["kind"] == "error"

        snap = telemetry.registry.snapshot()
        assert snap["jobs.recovery.quarantined"] == 1
        assert snap["jobs.recovery.timeouts"] >= 1
        assert snap["jobs.recovery.pool_rebuilds"] == report.pool_rebuilds
        assert snap["jobs.retry.chaoserror"] >= 1
        assert snap["jobs.retry.timeout"] >= 1

        # Tear the journal's final append mid-line (the kill -9 case)...
        assert len(SweepJournal(journal).load()) == 8
        with journal.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "fingerprint": "dead')
        # ...and resume: the 8 journaled cells replay, the poison cell
        # (never journaled) re-runs — chaos off, so it heals.
        results2, report2 = run_jobs(
            jobs, max_workers=3, journal=journal, resume=True,
        )
        assert report2.resumed == 8 and report2.executed == 1
        for index, payload in enumerate(serial_reference):
            assert result_to_dict(results2[index]) == payload

    def test_repeat_crasher_is_quarantined_as_crash(self, tmp_path):
        quarantine = tmp_path / "q.jsonl"
        jobs = grid_jobs()[:1]
        results, report = run_jobs(
            jobs,
            max_workers=2,
            chaos="mixA/S-NUCA@*=kill",
            retries=1, backoff_s=0.0,
            keep_going=True, quarantine=quarantine,
        )
        assert report.failed == 1
        assert report.pool_rebuilds == 2
        assert results[0].failed
        assert results[0].failure_reason.startswith("crash:")
        records = QuarantineJournal(quarantine).load()
        assert records[0]["kind"] == "crash"

    def test_crash_without_keep_going_aborts(self):
        with pytest.raises(ReproError) as excinfo:
            run_jobs(
                grid_jobs()[:1],
                max_workers=2,
                chaos="mixA/S-NUCA@*=kill",
                retries=0, backoff_s=0.0,
            )
        assert "crashed the worker pool" in str(excinfo.value)

    def test_hung_worker_is_quarantined_as_timeout(self, tmp_path):
        quarantine = tmp_path / "q.jsonl"
        results, report = run_jobs(
            grid_jobs()[:1],
            max_workers=2,
            chaos="mixA/S-NUCA@*=hang:30",
            retries=0, backoff_s=0.0, job_timeout_s=1.0,
            keep_going=True, quarantine=quarantine,
        )
        assert report.timeouts == 1 and report.failed == 1
        assert results[0].failure_reason.startswith("timeout:")
        assert QuarantineJournal(quarantine).load()[0]["kind"] == "timeout"
