"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.coherence import MesiDirectory
from repro.cache.lru import SetAssocArray
from repro.common.stats import RunningStats, harmonic_mean
from repro.config import CacheConfig, NocConfig
from repro.core.tlb import EnhancedTlb
from repro.noc.mesh import Mesh
from repro.reram.endurance import bank_lifetime_years

lines = st.integers(min_value=0, max_value=2**40)


class TestLruProperties:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, tags):
        arr = SetAssocArray(2, 4)
        for tag in tags:
            if arr.lookup(tag & 1, tag) is None:
                arr.insert(tag & 1, tag, tag)
            assert arr.occupancy(tag & 1) <= 4

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_most_recent_k_tags_always_resident(self, tags):
        """The last `assoc` distinct tags touched in a set must be present."""
        assoc = 4
        arr = SetAssocArray(1, assoc)
        recent: list[int] = []
        for tag in tags:
            if arr.lookup(0, tag) is None:
                arr.insert(0, tag, tag)
            if tag in recent:
                recent.remove(tag)
            recent.append(tag)
            for t in recent[-assoc:]:
                assert arr.lookup(0, t, touch=False) is not None


class TestCacheProperties:
    @given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_accounting_identities(self, accesses):
        cache = Cache(CacheConfig(2048, 2, 1, name="p"))
        for line, is_write in accesses:
            cache.access(line, is_write)
        s = cache.stats
        assert s.hits + s.misses == len(accesses)
        assert s.fills == s.misses
        assert s.writebacks + s.clean_evictions <= s.fills
        assert cache.occupancy() == s.fills - s.writebacks - s.clean_evictions
        assert cache.occupancy() <= cache.config.num_lines

    @given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_resident_set_matches_replay(self, accesses):
        """The cache's resident set equals an LRU reference replay."""
        cache = Cache(CacheConfig(1024, 2, 1, name="p"))
        num_sets = cache.num_sets
        reference: dict[int, list[int]] = {}
        for line, is_write in accesses:
            cache.access(line, is_write)
            bucket = reference.setdefault(line & (num_sets - 1), [])
            if line in bucket:
                bucket.remove(line)
            bucket.append(line)
            if len(bucket) > 2:
                bucket.pop(0)
        expect = sorted(line for bucket in reference.values() for line in bucket)
        assert sorted(cache.resident_lines()) == expect


class TestMeshProperties:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_route_length_is_manhattan(self, a, b):
        mesh = Mesh(NocConfig())
        assert len(mesh.route(a, b)) - 1 == mesh.distance(a, b)

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        mesh = Mesh(NocConfig())
        assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)


class TestCoherenceProperties:
    ops = st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 3), st.integers(0, 4)),
        min_size=1,
        max_size=300,
    )

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_any_trace(self, trace):
        directory = MesiDirectory(4)
        for op, core, line_idx in trace:
            line = 0x100 * line_idx
            if op == 0:
                directory.read(core, line)
            elif op == 1:
                directory.write(core, line)
            else:
                directory.evict(core, line)
        directory.check_invariants()

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_single_writer(self, trace):
        from repro.cache.coherence import MesiState

        directory = MesiDirectory(4)
        for op, core, line_idx in trace:
            line = 0x100 * line_idx
            if op == 0:
                directory.read(core, line)
            elif op == 1:
                directory.write(core, line)
            else:
                directory.evict(core, line)
            writers = [
                c
                for c in range(4)
                if directory.private_state(c, line) is MesiState.MODIFIED
            ]
            assert len(writers) <= 1


class TestTlbProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 63), st.integers(0, 2)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_mbv_bits_never_lost_or_invented(self, ops):
        """The TLB+backing store behaves exactly like a plain dict of bits."""
        tlb = EnhancedTlb()
        reference: dict[int, bool] = {}
        for page, idx, op in ops:
            line = page * 64 + idx
            if op == 0:
                tlb.set_mapping_bit(line, True)
                reference[line] = True
            elif op == 1:
                tlb.clear_mapping_bit(line)
                reference[line] = False
            else:
                assert tlb.mapping_bit(line) == reference.get(line, False)
        tlb.check_invariants()
        for line, value in reference.items():
            assert tlb.mapping_bit(line) == value


class TestStatsProperties:
    positive_floats = st.floats(min_value=0.01, max_value=1e6)

    @given(st.lists(positive_floats, min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_harmonic_le_arithmetic(self, values):
        assert harmonic_mean(values) <= float(np.mean(values)) * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_harmonic_bounded_by_extremes(self, values):
        h = harmonic_mean(values)
        assert min(values) * (1 - 1e-9) <= h <= max(values) * (1 + 1e-9)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_running_stats_matches_numpy(self, values):
        acc = RunningStats()
        for v in values:
            acc.add(v)
        assert acc.mean == np.float64(np.mean(values)).item() or abs(
            acc.mean - float(np.mean(values))
        ) < 1e-6 * max(1.0, abs(float(np.mean(values))))


class TestLifetimeProperties:
    @given(
        st.integers(1, 10**9),
        st.floats(1e3, 1e12),
        st.floats(0.05, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_lifetime_monotone_in_writes(self, writes, cycles, spread):
        kwargs = dict(
            lines_per_bank=32768, cell_endurance=1e11, wear_spread=spread
        )
        a = bank_lifetime_years(writes, cycles, 2.4e9, **kwargs)
        b = bank_lifetime_years(writes * 2, cycles, 2.4e9, **kwargs)
        assert b <= a
