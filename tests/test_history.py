"""Longitudinal history layer: RunIndex, trajectories, gating, CLI.

Covers the provenance index (explicit loaders, directory-scan sniffing,
fingerprint linkage), trajectory extraction and the sliding-window gate
with pure unit tests, the HTML timeline report's acceptance contract
(>= 2 overlaid frontiers, every resolvable frontier point hyperlinked
to its run-ledger row), and the ``repro history`` CLI exit codes —
including one small simulation-backed end-to-end search pair.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ReproError
from repro.config import baseline_config, scaled_config
from repro.obs.bench import BENCH_FORMAT_VERSION
from repro.obs.diff import DEFAULT_RULES, ToleranceRule
from repro.obs.history import RunIndex
from repro.obs.html_report import render_history_report
from repro.obs.ledger import RunLedger
from repro.obs.trajectory import (
    TrajectoryPoint,
    gate_trajectories,
    metric_trajectories,
    render_trajectory_findings,
)
from repro.search.drivers import Evaluation, SearchOutcome
from tests.test_obs import make_record

CONFIG4 = scaled_config(baseline_config(), cores=4)

SHA_A = "a" * 40
SHA_B = "b" * 40


def bench_matrix_point(ipc=1.0, *, ts=100.0, sha=SHA_A, life=8.0,
                       scheme="Re-NUCA", label="p"):
    return {
        "timestamp": ts, "git_sha": sha, "label": label,
        "workloads": 2, "cells": 4, "wall_time_s": 1.0,
        "schemes": {scheme: {"mean_ipc": ipc, "raw_min_lifetime": life}},
    }


def write_bench(path, points):
    path.write_text(json.dumps(
        {"format_version": BENCH_FORMAT_VERSION, "points": points}
    ))
    return path


def make_outcome(*, hypervolume=4.0, git_sha=SHA_A, created_at=100.0,
                 fingerprints=("fp1",), ipc=2.0, lifetime=5.0):
    evaluation = Evaluation(
        point_id="p" * 12, values={"scheme": "Re-NUCA"}, scheme="Re-NUCA",
        rung=0, budget=1000,
        metrics={"ipc": ipc, "lifetime": lifetime, "energy": 1.0,
                 "wear_cov": 0.3},
        fingerprints=tuple(fingerprints),
    )
    return SearchOutcome(
        driver="grid", seed=1, objectives=("ipc", "lifetime"),
        budget_schedule=(1000,), workload_numbers=(1,),
        evaluations=[evaluation], frontier=[evaluation],
        hypervolume=hypervolume, reference={"ipc": 0.0, "lifetime": 0.0},
        report={"points": 1, "evals_total": 1},
        git_sha=git_sha, created_at=created_at,
    )


def write_outcome(path, outcome):
    path.write_text(json.dumps(outcome.to_dict()))
    return path


def write_ledger(path, records):
    with RunLedger(path) as ledger:
        for record in records:
            ledger.append(record)
    return path


# -- the index ----------------------------------------------------------------


class TestRunIndex:
    def test_ledger_fingerprint_lookup(self, tmp_path):
        record = make_record(fingerprint="fp1")
        write_ledger(tmp_path / "ledger.jsonl", [record])
        index = RunIndex()
        assert index.add_ledger(tmp_path / "ledger.jsonl") == 1
        assert index.records_for("fp1") == [record]
        assert index.records_for("missing") == []
        assert index.records_for(None) == []

    def test_same_run_indexed_once(self, tmp_path):
        path = write_ledger(
            tmp_path / "ledger.jsonl", [make_record(fingerprint="fp1")]
        )
        index = RunIndex()
        index.add_ledger(path)
        assert index.add_ledger(path) == 0
        assert len(index.records) == 1

    def test_add_bench_skips_invalid_points_with_warning(self, tmp_path):
        path = write_bench(
            tmp_path / "BENCH_t.json",
            [bench_matrix_point(), {"timestamp": "not a number"}],
        )
        index = RunIndex()
        assert index.add_bench(path) == 1
        assert len(index.warnings) == 1
        assert "point 1" in index.warnings[0]

    def test_add_search_round_trips_provenance(self, tmp_path):
        path = write_outcome(tmp_path / "o.json", make_outcome())
        index = RunIndex()
        index.add_search(path)
        search = index.searches[0]
        assert search.git_sha == SHA_A
        assert search.created_at == pytest.approx(100.0)
        assert search.outcome.frontier[0].fingerprints == ("fp1",)

    def test_add_search_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            RunIndex().add_search(tmp_path / "nope.json")

    def test_outcome_mtime_fallback_when_no_created_at(self, tmp_path):
        outcome = make_outcome(created_at=None)
        path = write_outcome(tmp_path / "o.json", outcome)
        index = RunIndex()
        index.add_search(path)
        assert index.searches[0].created_at == pytest.approx(
            path.stat().st_mtime)

    def test_linked_records_dedup_and_order(self, tmp_path):
        r1 = make_record(fingerprint="fp1")
        r2 = make_record(scheme="Re-NUCA", fingerprint="fp2")
        write_ledger(tmp_path / "ledger.jsonl", [r1, r2])
        index = RunIndex()
        index.add_ledger(tmp_path / "ledger.jsonl")
        evaluation = make_outcome(
            fingerprints=("fp2", "fp1", "fp2")).frontier[0]
        linked = index.linked_records(evaluation)
        assert [r.run_id for r in linked] == [r2.run_id, r1.run_id]

    def test_linked_records_empty_for_prelinkage_evaluation(self):
        evaluation = make_outcome(fingerprints=()).frontier[0]
        assert RunIndex().linked_records(evaluation) == []

    def test_scan_sniffs_artefact_kinds(self, tmp_path):
        write_ledger(tmp_path / "runs.jsonl", [make_record()])
        write_bench(tmp_path / "BENCH_s.json", [bench_matrix_point()])
        write_outcome(tmp_path / "outcome.json", make_outcome())
        # Non-artefacts the scan must leave alone:
        (tmp_path / "sweep.jsonl").write_text(
            json.dumps({"v": 1, "fingerprint": "x", "result": {}}) + "\n")
        (tmp_path / "config.json").write_text(json.dumps({"cores": 4}))
        (tmp_path / ".hidden").mkdir()
        write_outcome(tmp_path / ".hidden" / "o.json", make_outcome())
        index = RunIndex.scan(tmp_path)
        assert len(index.records) == 1
        assert len(index.bench_points) == 1
        assert len(index.searches) == 1
        assert index.warnings == []

    def test_scan_bad_bench_is_warning_not_error(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{torn")
        index = RunIndex.scan(tmp_path)
        assert index.is_empty()
        assert len(index.warnings) == 1

    def test_scan_rejects_missing_root(self, tmp_path):
        with pytest.raises(ReproError, match="not a directory"):
            RunIndex.scan(tmp_path / "nope")

    def test_commits_first_seen_order_with_untracked(self):
        index = RunIndex()
        index.bench_points.extend([
            bench_matrix_point(ts=30.0, sha=SHA_B),
            bench_matrix_point(ts=10.0, sha=SHA_A),
            dict(bench_matrix_point(ts=20.0), git_sha=None),
        ])
        assert index.commits() == [SHA_A, None, SHA_B]


# -- trajectories -------------------------------------------------------------


class TestTrajectories:
    def test_bench_series_sorted_by_timestamp(self):
        index = RunIndex()
        index.bench_points.extend([
            bench_matrix_point(1.2, ts=20.0),
            bench_matrix_point(1.0, ts=10.0),
        ])
        series = metric_trajectories(index)
        ipc = series[("bench", "Re-NUCA", "ipc")]
        assert [p.value for p in ipc] == [1.0, 1.2]
        assert series[("bench", "Re-NUCA", "min_lifetime")][0].value == 8.0

    def test_search_series_from_outcomes_and_bench_points(self, tmp_path):
        index = RunIndex()
        index.add_search(write_outcome(
            tmp_path / "o.json", make_outcome(hypervolume=3.0)))
        index.bench_points.append({
            "timestamp": 200.0, "git_sha": SHA_B, "label": "s",
            "bench": "search", "frontier_size": 4, "hypervolume": 3.5,
        })
        series = metric_trajectories(index)
        hv = series[("search", "search", "hypervolume")]
        assert [p.value for p in hv] == [3.0, 3.5]
        assert [p.value for p in
                series[("search", "search", "frontier_size")]] == [1.0, 4.0]

    def test_ledger_batches_split_on_sha_change(self):
        records = []
        for i, sha in enumerate((SHA_A, SHA_A, SHA_B)):
            record = make_record(workload=f"WL{i % 2 + 1}")
            record.git_sha = sha
            record.timestamp = 10.0 * (i + 1)
            records.append(record)
        index = RunIndex()
        index.records.extend(records)
        series = metric_trajectories(index)
        ipc = series[("ledger", "S-NUCA", "ipc")]
        assert len(ipc) == 2                      # A-batch, B-batch
        assert ipc[0].count == 2 and ipc[1].count == 1
        assert ipc[0].git_sha == SHA_A and ipc[1].git_sha == SHA_B

    def test_ledger_min_lifetime_keeps_worst_and_skips_failed(self):
        good = make_record()
        good.metrics["min_lifetime"] = 6.0
        worse = make_record(workload="WL2")
        worse.metrics["min_lifetime"] = 4.0
        failed = make_record(workload="WL3", source="failed")
        for record in (good, worse, failed):
            record.git_sha = SHA_A
        index = RunIndex()
        index.records.extend([good, worse, failed])
        series = metric_trajectories(index)
        life = series[("ledger", "S-NUCA", "min_lifetime")]
        assert [p.value for p in life] == [4.0]
        assert life[0].count == 2                 # failed record excluded

    def test_sources_never_share_a_series(self):
        index = RunIndex()
        index.bench_points.append(bench_matrix_point(scheme="S-NUCA"))
        record = make_record()
        index.records.append(record)
        series = metric_trajectories(index)
        assert ("bench", "S-NUCA", "ipc") in series
        assert ("ledger", "S-NUCA", "ipc") in series
        assert all(len(points) == 1 for points in series.values())


# -- the sliding-window gate --------------------------------------------------


def series_of(values, metric="ipc", source="bench", scheme="Re-NUCA",
              shas=None):
    points = [
        TrajectoryPoint(float(i), float(v),
                        shas[i] if shas else f"sha{i:02d}" + "0" * 34)
        for i, v in enumerate(values)
    ]
    return {(source, scheme, metric): points}


class TestGate:
    def test_flags_regression_at_first_offending_sample(self):
        findings = gate_trajectories(
            series_of([1.0, 1.001, 0.999, 0.90, 0.89]))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.metric == "ipc"
        assert finding.index == 3                 # where the drop began
        assert finding.git_sha.startswith("sha03")
        assert finding.current == pytest.approx(0.90)

    def test_passes_healthy_trajectory(self):
        values = [1.0 + 0.001 * i for i in range(6)]
        assert gate_trajectories(series_of(values)) == []

    def test_sustain_absorbs_single_outlier(self):
        values = [1.0, 1.0, 1.3, 1.0, 1.0]
        assert gate_trajectories(series_of(values)) != []
        assert gate_trajectories(series_of(values), sustain=2) == []

    def test_sustain_fires_on_consecutive_violations(self):
        values = [1.0, 1.0, 0.9, 0.89, 0.9]
        findings = gate_trajectories(series_of(values), sustain=2)
        assert len(findings) == 1
        assert findings[0].index == 2

    def test_rolling_median_baseline_follows_window(self):
        # After 3 high samples the median moves up; an old-level sample
        # then violates against the new local baseline.
        values = [1.0, 2.0, 2.0, 2.0, 1.0]
        findings = gate_trajectories(series_of(values), window=3)
        assert any(f.index == 4 for f in findings)
        assert findings[-1].baseline == pytest.approx(2.0)

    def test_short_series_and_unruled_metrics_skipped(self):
        assert gate_trajectories(series_of([1.0])) == []
        assert gate_trajectories(
            series_of([1.0, 99.0], metric="frontier_size")) == []

    def test_direction_respected(self):
        rising = [5.0, 5.0, 6.0]
        assert gate_trajectories(
            series_of(rising, metric="min_lifetime")) == []
        falling = [5.0, 5.0, 4.0]
        assert gate_trajectories(
            series_of(falling, metric="min_lifetime")) != []

    def test_hypervolume_rule_gates_shrinkage(self):
        assert "hypervolume" in DEFAULT_RULES
        values = [4.0, 4.0, 3.0]
        findings = gate_trajectories(
            series_of(values, metric="hypervolume", source="search",
                      scheme="search"))
        assert len(findings) == 1
        assert findings[0].source == "search"

    def test_custom_rules_override_defaults(self):
        loose = {"ipc": ToleranceRule("ipc", rel_tol=0.5)}
        values = [1.0, 1.0, 0.9]
        assert gate_trajectories(series_of(values), loose) == []
        assert gate_trajectories(series_of(values)) != []

    def test_render_findings(self):
        series = series_of([1.0, 1.0, 0.5])
        findings = gate_trajectories(series)
        text = render_trajectory_findings(findings, series)
        assert "FAIL" in text and "ipc" in text
        assert "1 sustained drift finding(s)" in text
        assert "sha02" in text
        clean = render_trajectory_findings([], series)
        assert "no sustained drift" in clean


# -- the HTML timeline --------------------------------------------------------


class TestHistoryReport:
    def build_index(self, tmp_path, *, with_ledger=True):
        records = [
            make_record(fingerprint="fp1"),
            make_record(scheme="Re-NUCA", fingerprint="fp2"),
        ]
        index = RunIndex()
        if with_ledger:
            write_ledger(tmp_path / "ledger.jsonl", records)
            index.add_ledger(tmp_path / "ledger.jsonl")
        index.add_search(write_outcome(
            tmp_path / "o1.json",
            make_outcome(fingerprints=("fp1",), created_at=100.0,
                         hypervolume=4.0),
        ))
        index.add_search(write_outcome(
            tmp_path / "o2.json",
            make_outcome(fingerprints=("fp2",), created_at=200.0,
                         hypervolume=4.1, git_sha=SHA_B, ipc=2.1),
        ))
        return index, records

    def test_overlay_links_every_frontier_point(self, tmp_path):
        """Acceptance: >=2 frontiers overlaid, every point hyperlinked."""
        index, records = self.build_index(tmp_path)
        html = render_history_report(index)
        frontier_points = sum(
            len(s.outcome.frontier) for s in index.searches)
        assert frontier_points >= 2
        assert html.count('<a href="#run-') == frontier_points
        for record in records:
            assert f'href="#run-{record.run_id}"' in html
            assert f'id="run-{record.run_id}"' in html
        assert "2 frontier point(s) hyperlinked" in html
        assert "unresolved" not in html

    def test_self_contained(self, tmp_path):
        index, _ = self.build_index(tmp_path)
        html = render_history_report(index)
        assert html.startswith("<!DOCTYPE html>")
        for banned in ("http://", "https://", "<script", "<link",
                       "url(", "@import"):
            assert banned not in html, f"external reference: {banned}"

    def test_sections_present(self, tmp_path):
        index, _ = self.build_index(tmp_path)
        html = render_history_report(index)
        for heading in ("Frontier evolution", "Metric trajectories",
                        "Trajectory gate", "Run index", "Indexed sources"):
            assert heading in html

    def test_unresolved_points_flagged(self, tmp_path):
        index, _ = self.build_index(tmp_path, with_ledger=False)
        html = render_history_report(index)
        assert '<a href="#run-' not in html
        assert "unresolved" in html

    def test_untracked_sha_rendered(self, tmp_path):
        record = make_record(fingerprint="fp1")
        record.git_sha = None
        write_ledger(tmp_path / "ledger.jsonl", [record])
        index = RunIndex()
        index.add_ledger(tmp_path / "ledger.jsonl")
        index.add_search(write_outcome(
            tmp_path / "o.json", make_outcome(git_sha=None)))
        html = render_history_report(index)
        assert "untracked" in html

    def test_last_limits_overlaid_frontiers(self, tmp_path):
        index, _ = self.build_index(tmp_path)
        html = render_history_report(index, last=1)
        assert "last 1 search" in html

    def test_empty_index(self):
        html = render_history_report(RunIndex())
        assert "Nothing indexed" in html

    def test_gate_findings_surface_in_report(self, tmp_path):
        index = RunIndex()
        write_bench(tmp_path / "BENCH_t.json", [
            bench_matrix_point(1.0, ts=10.0),
            bench_matrix_point(1.0, ts=20.0),
            bench_matrix_point(0.5, ts=30.0, sha=SHA_B),
        ])
        index.add_bench(tmp_path / "BENCH_t.json")
        html = render_history_report(index)
        assert "sustained drift finding(s)" in html
        assert SHA_B[:10] in html


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_check_exits_1_on_injected_regression(self, tmp_path, capsys):
        from repro.cli import main

        write_bench(tmp_path / "BENCH_bad.json", [
            bench_matrix_point(1.0, ts=10.0),
            bench_matrix_point(1.001, ts=20.0),
            bench_matrix_point(0.9, ts=30.0, sha=SHA_B),
        ])
        code = main(["history", "check",
                     "--bench", str(tmp_path / "BENCH_bad.json"),
                     "--tolerances", "baselines/tolerances.json"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and SHA_B[:10] in out

    def test_check_exits_0_on_healthy_trajectory(self, tmp_path, capsys):
        from repro.cli import main

        write_bench(tmp_path / "BENCH_ok.json", [
            bench_matrix_point(1.0 + 0.001 * i, ts=10.0 * (i + 1))
            for i in range(4)
        ])
        code = main(["history", "check", "--dir", str(tmp_path),
                     "--tolerances", "baselines/tolerances.json"])
        assert code == 0
        assert "no sustained drift" in capsys.readouterr().out

    def test_show_summarises_index(self, tmp_path, capsys):
        from repro.cli import main

        write_bench(tmp_path / "BENCH_t.json", [bench_matrix_point()])
        write_outcome(tmp_path / "o.json", make_outcome())
        assert main(["history", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 bench points" in out
        assert "1 search outcomes" in out
        assert "trajectory series" in out

    def test_html_written_with_links(self, tmp_path, capsys):
        from repro.cli import main

        write_ledger(tmp_path / "ledger.jsonl",
                     [make_record(fingerprint="fp1")])
        write_outcome(tmp_path / "o.json",
                      make_outcome(fingerprints=("fp1",)))
        html_path = tmp_path / "timeline.html"
        assert main(["history", "--dir", str(tmp_path),
                     "--html", str(html_path)]) == 0
        html = html_path.read_text()
        assert '<a href="#run-' in html
        assert "wrote history report" in capsys.readouterr().out

    def test_scan_warnings_go_to_stderr(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "BENCH_bad.json").write_text("{torn")
        assert main(["history", "--dir", str(tmp_path)]) == 0
        assert "warning:" in capsys.readouterr().err

    def test_unreadable_explicit_file_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["history", "check",
                     "--search", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--ledger", "--bench", "--search"])
    def test_missing_explicit_file_is_usage_error(self, tmp_path, capsys,
                                                  flag):
        """A typo'd explicit path must not silently gate nothing."""
        from repro.cli import main

        code = main(["history", "check", flag, str(tmp_path / "nope")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err


# -- simulation-backed end to end ---------------------------------------------


class TestEndToEnd:
    def test_two_searches_link_back_to_ledger(self, tmp_path):
        """Two real searches -> scan -> every frontier point resolves."""
        from repro.search import preset_space, run_search

        ledger = tmp_path / "ledger.jsonl"
        for seed in (1, 2):
            outcome = run_search(
                preset_space("schemes"), driver="grid", n_points=3,
                budget_schedule=(400,), workload_numbers=(1,), seed=seed,
                base=CONFIG4, ledger=str(ledger),
            )
            write_outcome(tmp_path / f"outcome{seed}.json", outcome)
        index = RunIndex.scan(tmp_path)
        assert len(index.searches) == 2
        assert index.records and index.warnings == []
        frontier_points = 0
        for search in index.searches:
            for evaluation in search.outcome.frontier:
                frontier_points += 1
                linked = index.linked_records(evaluation)
                assert linked, "frontier point did not resolve to ledger"
                assert all(
                    r.fingerprint in evaluation.fingerprints for r in linked
                )
        html = render_history_report(index)
        assert html.count('<a href="#run-') == frontier_points
        # The real trajectory is healthy: the gate holds.
        assert gate_trajectories(metric_trajectories(index)) == []


class TestScanCache:
    """On-disk scan cache: rescans re-read only changed files."""

    def _populate(self, tmp_path):
        write_ledger(tmp_path / "runs.jsonl", [make_record()])
        write_bench(tmp_path / "BENCH_s.json", [bench_matrix_point()])
        write_outcome(tmp_path / "outcome.json", make_outcome())

    @staticmethod
    def _snapshot(index):
        return (
            sorted(r.run_id for r in index.records),
            index.bench_points,
            [s.outcome.hypervolume for s in index.searches],
            sorted(index.warnings),
        )

    def test_cached_rescan_matches_live_scan(self, tmp_path):
        self._populate(tmp_path)
        cache = tmp_path / "scan-cache.json"
        first = RunIndex.scan(tmp_path, cache=cache)
        assert cache.exists()
        cached = RunIndex.scan(tmp_path, cache=cache)
        live = RunIndex.scan(tmp_path)
        assert self._snapshot(cached) == self._snapshot(live)
        assert self._snapshot(cached) == self._snapshot(first)

    def test_cache_file_itself_is_not_indexed(self, tmp_path):
        self._populate(tmp_path)
        cache = tmp_path / "scan-cache.json"
        RunIndex.scan(tmp_path, cache=cache)
        rescan = RunIndex.scan(tmp_path, cache=cache)
        assert len(rescan.bench_points) == 1
        assert rescan.warnings == []

    def test_modified_file_is_reparsed(self, tmp_path):
        self._populate(tmp_path)
        cache = tmp_path / "scan-cache.json"
        RunIndex.scan(tmp_path, cache=cache)
        write_bench(
            tmp_path / "BENCH_s.json",
            [bench_matrix_point(), bench_matrix_point(ipc=2.0, ts=200.0)],
        )
        index = RunIndex.scan(tmp_path, cache=cache)
        assert len(index.bench_points) == 2

    def test_deleted_file_drops_its_entries(self, tmp_path):
        self._populate(tmp_path)
        cache = tmp_path / "scan-cache.json"
        RunIndex.scan(tmp_path, cache=cache)
        (tmp_path / "outcome.json").unlink()
        index = RunIndex.scan(tmp_path, cache=cache)
        assert index.searches == []
        assert len(index.bench_points) == 1

    def test_damaged_cache_falls_back_to_live_parse(self, tmp_path):
        self._populate(tmp_path)
        cache = tmp_path / "scan-cache.json"
        cache.write_text("{torn")
        index = RunIndex.scan(tmp_path, cache=cache)
        assert self._snapshot(index) == self._snapshot(RunIndex.scan(tmp_path))
        # The damaged cache was rewritten and now serves hits.
        assert json.loads(cache.read_text())["files"]

    def test_warning_files_replay_from_cache(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{torn")
        cache = tmp_path / "scan-cache.json"
        first = RunIndex.scan(tmp_path, cache=cache)
        assert len(first.warnings) == 1
        cached = RunIndex.scan(tmp_path, cache=cache)
        assert cached.warnings == first.warnings
