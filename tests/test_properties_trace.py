"""Property-based tests on the trace layer and exposure model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import derive_rng
from repro.cpu.prefetch import StreamPrefetcher
from repro.trace.generator import generate_trace
from repro.trace.profiles import ALL_APPS
from repro.trace.synthetic import derive_params

_PARAMS = {p.name: derive_params(p) for p in ALL_APPS}
app_names = st.sampled_from(sorted(_PARAMS))


class TestGeneratorProperties:
    @given(app_names, st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_trace_wellformed_for_every_app(self, app, seed):
        params = _PARAMS[app]
        trace = generate_trace(params, 400, derive_rng(seed, "p", app))
        assert len(trace) >= 400
        assert np.all(trace["line"] >= 0)
        # RMW store immediately follows its load on the same line.
        stores = np.flatnonzero(trace["is_write"] & (trace["kind"] != 0))
        if len(stores):
            assert np.all(trace["line"][stores] == trace["line"][stores - 1])

    @given(app_names, st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_regions_disjoint(self, app, seed):
        """No line address belongs to two populations."""
        params = _PARAMS[app]
        trace = generate_trace(params, 600, derive_rng(seed, "q", app))
        by_kind = {}
        for kind in np.unique(trace["kind"]):
            by_kind[int(kind)] = set(trace["line"][trace["kind"] == kind].tolist())
        kinds = sorted(by_kind)
        for i, a in enumerate(kinds):
            for b in kinds[i + 1:]:
                assert not (by_kind[a] & by_kind[b]), (a, b)

    @given(app_names)
    @settings(max_examples=22, deadline=None)
    def test_rates_nonnegative_and_finite(self, app):
        params = _PARAMS[app]
        assert params.bundle_pki > 0
        assert params.mean_gap >= 0
        assert np.isfinite(params.record_pki)


class TestPrefetcherProperties:
    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_never_covers_more_than_queries(self, lines):
        pf = StreamPrefetcher()
        for line in lines:
            pf.covers(line)
        assert 0 <= pf.stats.covered < pf.stats.queries or len(lines) == 0

    @given(st.integers(0, 2**30), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_pure_ascending_stream_fully_covered_after_first(self, base, length):
        pf = StreamPrefetcher(region_shift=60)  # one giant region
        covered = [pf.covers(base + i) for i in range(length)]
        assert covered == [False] + [True] * (length - 1)


class TestExposureProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**16))
    def test_exposure_monotone(self, seed):
        """More L3 latency can never reduce the commit-time delta."""
        from repro.config import baseline_config
        from repro.cpu.core import AppSimulator

        result = AppSimulator("milc", baseline_config(), seed=seed % 7).run(8_000)
        s = result.stream
        rng = np.random.default_rng(seed)
        lat = s.nominal_lat + rng.uniform(-80, 200, size=len(s)).astype(np.float32)
        d1 = s.exposure_delta(lat)
        d2 = s.exposure_delta(lat + 25)
        assert np.all(d2 >= d1 - 1e-4)

    def test_exposure_floor_is_negative_stall(self):
        from repro.config import baseline_config
        from repro.cpu.core import AppSimulator

        result = AppSimulator("mcf", baseline_config(), seed=2).run(12_000)
        s = result.stream
        zero = np.zeros(len(s), dtype=np.float32)
        delta = s.exposure_delta(zero)
        assert np.all(delta >= -s.stall - 1e-4)
