"""MSHR file: allocation, merging, stalls, lazy draining."""

import pytest

from repro.cache.mshr import MshrFile
from repro.common.errors import ConfigError, SimulationError


class TestAllocation:
    def test_fresh_allocation(self):
        mshr = MshrFile(2)
        assert mshr.allocate(0x1, 100.0)
        assert mshr.is_pending(0x1)
        assert mshr.stats.primary_misses == 1

    def test_secondary_merge(self):
        mshr = MshrFile(2)
        mshr.allocate(0x1, 100.0)
        assert mshr.allocate(0x1, 120.0)  # merges, does not take a slot
        assert len(mshr) == 1
        assert mshr.stats.secondary_misses == 1

    def test_full_file_stalls(self):
        mshr = MshrFile(2)
        mshr.allocate(1, 10.0)
        mshr.allocate(2, 20.0)
        assert not mshr.allocate(3, 30.0)
        assert mshr.stats.stalls == 1

    def test_full_but_pending_merges(self):
        mshr = MshrFile(1)
        mshr.allocate(1, 10.0)
        assert mshr.allocate(1, 99.0)


class TestRelease:
    def test_release(self):
        mshr = MshrFile(2)
        mshr.allocate(1, 10.0)
        mshr.release(1)
        assert not mshr.is_pending(1)

    def test_release_unknown_raises(self):
        with pytest.raises(SimulationError):
            MshrFile(2).release(1)

    def test_release_completed_drains_by_time(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 10.0)
        mshr.allocate(2, 20.0)
        mshr.allocate(3, 30.0)
        assert mshr.release_completed(20.0) == 2
        assert len(mshr) == 1
        assert mshr.is_pending(3)

    def test_earliest_completion(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 30.0)
        mshr.allocate(2, 10.0)
        assert mshr.earliest_completion() == 10.0

    def test_earliest_on_empty_raises(self):
        with pytest.raises(SimulationError):
            MshrFile(2).earliest_completion()

    def test_completion_of(self):
        mshr = MshrFile(2)
        mshr.allocate(7, 42.0)
        assert mshr.completion_of(7) == 42.0
        with pytest.raises(SimulationError):
            mshr.completion_of(8)


class TestLifecycle:
    def test_clear(self):
        mshr = MshrFile(2)
        mshr.allocate(1, 10.0)
        mshr.clear()
        assert len(mshr) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            MshrFile(0)

    def test_mlp_bounded_by_capacity(self):
        """The core's MLP can never exceed the file capacity."""
        mshr = MshrFile(4)
        accepted = sum(mshr.allocate(i, 1000.0) for i in range(10))
        assert accepted == 4
        assert len(mshr) == 4
