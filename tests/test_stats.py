"""Statistics helpers: harmonic/geometric means, running moments."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.common.stats import (
    RunningStats,
    coefficient_of_variation,
    geometric_mean,
    harmonic_mean,
)


class TestHarmonicMean:
    def test_constant_sequence(self):
        assert harmonic_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        # H(1, 2) = 4/3
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([0.1, 100.0]) < 0.3

    def test_at_most_arithmetic_mean(self):
        vals = [1.0, 5.0, 9.0, 2.5]
        assert harmonic_mean(vals) <= float(np.mean(vals))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean([])

    def test_zero_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean([1.0, 0.0])


class TestCoefficientOfVariation:
    def test_zero_for_constant(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_known_value(self):
        # values 1 and 3: mean 2, pop-std 1 -> cv 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_zero_mean_returns_zero(self):
        assert coefficient_of_variation([-1.0, 1.0]) == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([2.0, -1.0])


class TestRunningStats:
    def test_matches_numpy(self, rng):
        data = rng.normal(10, 3, size=500)
        acc = RunningStats()
        for v in data:
            acc.add(float(v))
        assert acc.count == 500
        assert acc.mean == pytest.approx(float(np.mean(data)))
        assert acc.variance == pytest.approx(float(np.var(data)))
        assert acc.min == pytest.approx(float(data.min()))
        assert acc.max == pytest.approx(float(data.max()))

    def test_merge_equals_combined(self, rng):
        a_data = rng.normal(0, 1, 100)
        b_data = rng.normal(5, 2, 300)
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        for v in a_data:
            a.add(float(v))
            c.add(float(v))
        for v in b_data:
            b.add(float(v))
            c.add(float(v))
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add(2.0)
        assert a.merge(RunningStats()).mean == 2.0
        assert RunningStats().merge(a).count == 1

    def test_empty_variance_zero(self):
        assert RunningStats().variance == 0.0


class TestEdgeCases:
    """Boundary behaviour the reductions must get right."""

    def test_merge_both_sides_empty(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0
        assert merged.mean == 0.0
        assert merged.variance == 0.0
        assert merged.stddev == 0.0

    def test_merge_empty_preserves_extrema(self):
        a = RunningStats()
        a.add(-2.0)
        a.add(7.0)
        for merged in (a.merge(RunningStats()), RunningStats().merge(a)):
            assert (merged.min, merged.max) == (-2.0, 7.0)
            assert merged.count == 2

    def test_merge_leaves_operands_untouched(self):
        a, b = RunningStats(), RunningStats()
        a.add(1.0)
        a.add(3.0)
        b.add(10.0)
        before = (a.count, a.mean, a.variance, b.count, b.mean)
        a.merge(b)
        assert (a.count, a.mean, a.variance, b.count, b.mean) == before

    def test_cov_of_empty_rejected(self):
        with pytest.raises(ReproError):
            coefficient_of_variation([])

    def test_cov_of_long_constant_stream_exactly_zero(self):
        assert coefficient_of_variation([2.5] * 1000) == 0.0

    def test_harmonic_negative_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean([1.0, -2.0])

    def test_geometric_empty_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_geometric_zero_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
