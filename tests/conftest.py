"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    SystemConfig,
    baseline_config,
)


@pytest.fixture
def config() -> SystemConfig:
    """The Table I baseline machine."""
    return baseline_config()


@pytest.fixture
def tiny_cache_config() -> CacheConfig:
    """A 4-set, 2-way, 64-B-line cache (512 B) for exhaustive tests."""
    return CacheConfig(size_bytes=512, assoc=2, latency=2, name="tiny")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(1234)
