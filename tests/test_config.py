"""System configuration validation (Table I)."""

import dataclasses

import pytest

from repro.common.units import KIB, MIB
from repro.config import (
    CacheConfig,
    CoreConfig,
    CriticalityConfig,
    MemoryConfig,
    NocConfig,
    ReRamConfig,
    SystemConfig,
    TlbConfig,
    baseline_config,
    config_as_dict,
    scaled_config,
    sensitivity_l2_128k,
    sensitivity_l3_1m,
    sensitivity_rob_168,
)
from repro.common.errors import ConfigError


class TestTableOne:
    def test_core_count(self, config):
        assert config.num_cores == 16

    def test_rob_entries(self, config):
        assert config.core.rob_entries == 128

    def test_clock(self, config):
        assert config.core.clock_hz == pytest.approx(2.4e9)

    def test_l1_geometry(self, config):
        assert config.l1.size_bytes == 32 * KIB
        assert config.l1.assoc == 4
        assert config.l1.latency == 2

    def test_l2_geometry(self, config):
        assert config.l2.size_bytes == 256 * KIB
        assert config.l2.assoc == 8
        assert config.l2.latency == 5

    def test_l3_geometry(self, config):
        assert config.l3_bank.size_bytes == 2 * MIB
        assert config.l3_bank.assoc == 16
        assert config.l3_bank.latency == 100
        assert config.l3_total_bytes == 32 * MIB

    def test_mesh_is_4x4(self, config):
        assert config.noc.mesh_cols == 4
        assert config.noc.mesh_rows == 4

    def test_line_size_uniform(self, config):
        assert config.l1.line_bytes == config.l2.line_bytes == 64

    def test_describe_mentions_key_facts(self, config):
        text = config.describe()
        assert "16 cores" in text
        assert "32MB total" in text
        assert "MESI" in text


class TestDerivedQuantities:
    def test_num_sets(self):
        cache = CacheConfig(256 * KIB, 8, 5)
        assert cache.num_sets == 512

    def test_num_lines(self):
        cache = CacheConfig(2 * MIB, 16, 100)
        assert cache.num_lines == 32768

    def test_tlb_sets(self):
        assert TlbConfig().num_sets == 8


class TestSensitivityVariants:
    def test_l2_variant(self):
        assert sensitivity_l2_128k().l2.size_bytes == 128 * KIB

    def test_l3_variant(self):
        cfg = sensitivity_l3_1m()
        assert cfg.l3_bank.size_bytes == 1 * MIB
        assert cfg.l3_total_bytes == 16 * MIB

    def test_rob_variant(self):
        assert sensitivity_rob_168().core.rob_entries == 168

    def test_variants_share_everything_else(self):
        base = baseline_config()
        for variant in (sensitivity_l2_128k(), sensitivity_l3_1m()):
            assert variant.num_cores == base.num_cores
            assert variant.noc == base.noc


class TestValidation:
    def test_cache_size_must_divide(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 4, 2)

    def test_cache_sets_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheConfig(3 * 64 * 4, 4, 2)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(4096, 4, 0)

    def test_core_tiny_rob_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(rob_entries=4)

    def test_mismatched_mesh_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=8)

    def test_memory_row_hit_bounded(self):
        with pytest.raises(ConfigError):
            MemoryConfig(latency_cycles=100, row_hit_latency_cycles=200)

    def test_reram_spread_bounds(self):
        with pytest.raises(ConfigError):
            ReRamConfig(intra_bank_wear_spread=0.0)

    def test_criticality_threshold_bounds(self):
        with pytest.raises(ConfigError):
            CriticalityConfig(threshold_percent=0)

    def test_cluster_size_power_of_two(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(rnuca_cluster_size=3)
        assert "cluster" in str(excinfo.value)

    def test_cluster_cannot_exceed_banks(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(rnuca_cluster_size=32)
        assert "cluster" in str(excinfo.value)

    def test_core_count_power_of_two(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=12)

    def test_tlb_assoc_divides(self):
        with pytest.raises(ConfigError):
            TlbConfig(entries=60, assoc=8)

    def test_noc_negative_hop_rejected(self):
        with pytest.raises(ConfigError):
            NocConfig(hop_cycles=-1)


class TestScaledConfig:
    def test_four_cores_2x2(self):
        cfg = scaled_config(baseline_config(), cores=4)
        assert cfg.num_cores == 4
        assert cfg.noc.num_nodes == 4
        assert cfg.rnuca_cluster_size == 4

    def test_one_core(self):
        cfg = scaled_config(baseline_config(), cores=1)
        assert cfg.num_cores == 1
        assert cfg.rnuca_cluster_size == 1

    def test_non_power_rejected(self):
        with pytest.raises(ConfigError):
            scaled_config(baseline_config(), cores=6)


def test_config_as_dict_round_trips_fields(config):
    d = config_as_dict(config)
    assert d["num_cores"] == 16
    assert d["l3_bank"]["size_bytes"] == 2 * MIB


def test_configs_are_frozen(config):
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.num_cores = 8
