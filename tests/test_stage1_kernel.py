"""Vectorized stage-1 characterisation kernel: equivalence + gate tests.

The kernel's contract is *field-for-field identical*
:class:`~repro.cpu.core.Stage1Result`s to the reference object-graph
path for every supported configuration (see ``docs/PERFORMANCE.md``
"Stage-1 kernel & store").  The equivalence class below drives both
paths over every application profile and compares every result field
recursively — the full L3 stream arrays (values *and* dtypes), the
criticality meters and all nested statistics dataclasses.  The gate
class covers the ``use_kernel`` tri-state, which mirrors stage 2's.
"""

import dataclasses

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.cpu.kernel import kernel_supported
from repro.trace.profiles import ALL_APPS

INSTR = 6_000
SEEDS = (3, 11)
APPS = tuple(profile.name for profile in ALL_APPS)


def assert_identical(a, b, path=""):
    """Recursive field-for-field comparison (arrays bit-exact + dtype)."""
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray), path
        assert a.dtype == b.dtype, f"{path}: {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b), path
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for field in dataclasses.fields(a):
            assert_identical(
                getattr(a, field.name),
                getattr(b, field.name),
                f"{path}.{field.name}",
            )
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.fixture(scope="module")
def pair():
    """Memoised (reference, kernel) Stage1Result pairs per (app, seed)."""
    cache: dict[tuple, tuple] = {}

    def get(app, seed):
        key = (app, seed)
        if key not in cache:
            cache[key] = tuple(
                AppSimulator(app, baseline_config(), seed=seed).run(
                    INSTR, use_kernel=use_kernel
                )
                for use_kernel in (False, True)
            )
        return cache[key]

    return get


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", APPS)
class TestStage1KernelEquivalence:
    def test_every_field_identical(self, pair, app, seed):
        ref, fast = pair(app, seed)
        assert_identical(ref, fast, app)

    def test_headline_metrics(self, pair, app, seed):
        ref, fast = pair(app, seed)
        assert ref.instructions == fast.instructions
        assert ref.cycles == fast.cycles
        assert ref.ipc == fast.ipc
        assert ref.wpki == fast.wpki
        assert ref.mpki == fast.mpki
        assert len(ref.stream) == len(fast.stream)


class TestStage1KernelGate:
    def _degraded(self):
        """A simulator the kernel cannot drive (rotated L3 sets)."""
        sim = AppSimulator("milc", baseline_config(), seed=3)
        sim.l3._rotation = 1
        return sim

    def test_supported_on_pristine_sim(self):
        assert kernel_supported(AppSimulator("milc", baseline_config(), seed=3))

    def test_degraded_cache_not_supported(self):
        assert not kernel_supported(self._degraded())

    def test_forced_kernel_on_degraded_sim_raises(self):
        with pytest.raises(SimulationError, match="kernel cannot drive"):
            self._degraded().run(INSTR, use_kernel=True)

    def test_auto_engagement_and_env_override(self, monkeypatch):
        calls = []
        import repro.cpu.kernel as kernel_mod

        real = kernel_mod.characterize

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(kernel_mod, "characterize", spy)
        AppSimulator("milc", baseline_config(), seed=3).run(INSTR)
        assert len(calls) == 1
        # An unsupported simulator silently falls back to the reference.
        self._degraded().run(INSTR)
        assert len(calls) == 1
        # REPRO_KERNEL=0 disables auto-engagement globally ...
        monkeypatch.setenv("REPRO_KERNEL", "0")
        AppSimulator("milc", baseline_config(), seed=3).run(INSTR)
        assert len(calls) == 1
        # ... but a forced kernel still runs.
        AppSimulator("milc", baseline_config(), seed=3).run(
            INSTR, use_kernel=True
        )
        assert len(calls) == 2

    def test_use_kernel_false_pins_reference(self, monkeypatch):
        calls = []
        import repro.cpu.kernel as kernel_mod

        monkeypatch.setattr(
            kernel_mod, "characterize",
            lambda *a, **k: calls.append(1),
        )
        AppSimulator("milc", baseline_config(), seed=3).run(
            INSTR, use_kernel=False
        )
        assert calls == []

    def test_budget_must_be_positive(self):
        with pytest.raises(SimulationError, match="positive"):
            AppSimulator("milc", baseline_config(), seed=3).run(
                0, use_kernel=True
            )
