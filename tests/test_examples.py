"""Smoke tests: the runnable examples must keep running.

Only the fast examples are executed end-to-end (the heavier studies are
parameter-identical to code paths the integration tests already cover).
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_reram_technology(self):
        out = run_example("reram_technology.py")
        assert "Cell failed after" in out
        assert "lifetime" in out

    def test_coherent_sharing(self):
        out = run_example("coherent_sharing.py")
        assert "invariants held" in out
        assert "invalidations sent" in out

    def test_criticality_predictor_demo(self):
        out = run_example("criticality_predictor_demo.py", "milc")
        assert "Threshold sweep" in out
        assert "numLoads" in out

    def test_dnuca_migration_demo(self):
        out = run_example("dnuca_migration_demo.py")
        assert "Migrations performed" in out
        assert "D-NUCA" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert '"""' in text.split("\n", 2)[2][:10] or text.startswith(
                "#!"
            ), script
            assert "__main__" in text, script
