"""Simulator-throughput benchmarks (true timing benches).

These measure the hot loops of the library itself — useful for tracking
performance regressions of the simulator, independent of the paper
figures:

* stage 1: the core+L1/L2 interval model,
* stage 2: one full workload replay under S-NUCA,
* the vectorized replay kernel against the reference object-graph loop
  (same warmed state, replay phase only), which must stay >= 3x faster.

Set ``REPRO_BENCH_RECORD=<path>`` to append each bench's best time to a
trajectory file via :mod:`repro.obs.bench` (CI uploads it as an
artifact; the committed ``BENCH_throughput.json`` holds the historical
points).
"""

import os
import time

from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.nuca.kernel import replay as kernel_replay
from repro.sim.runner import (
    Stage1Cache,
    _replay_reference,
    prepare_replay,
    run_workload,
)
from repro.trace.workloads import make_workloads

_INSTRUCTIONS = 40_000
#: Budget of the kernel-vs-reference bench.  The kernel pays a fixed
#: snapshot cost per replay, so the assertion is calibrated to this
#: budget (the speedup keeps growing with it) rather than to the
#: session-wide ``REPRO_INSTRUCTIONS``.
_KERNEL_INSTRUCTIONS = 150_000
_KERNEL_MIN_SPEEDUP = 3.0


def _record(name: str, *, count: int, seconds: float, unit: str,
            details: dict | None = None) -> None:
    """Append one throughput point when ``REPRO_BENCH_RECORD`` is set."""
    out = os.environ.get("REPRO_BENCH_RECORD")
    if not out:
        return
    from repro.obs.bench import append_bench_point, throughput_point

    append_bench_point(out, throughput_point(
        name, count=count, seconds=seconds, unit=unit, details=details,
    ))


def test_bench_stage1_throughput(benchmark):
    """Core+L1/L2 simulation speed (instructions simulated per call)."""

    def run():
        return AppSimulator("milc", baseline_config(), seed=9).run(_INSTRUCTIONS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    best = benchmark.stats.stats.min
    print(f"\nstage-1: {result.instructions} instructions, "
          f"{len(result.stream)} L3 records per run, "
          f"{result.instructions / best / 1e6:.2f} Minstr/s")
    _record("stage1", count=result.instructions, seconds=best,
            unit="instructions")
    assert result.instructions > 0


def test_bench_stage2_throughput(benchmark):
    """NUCA LLC replay speed for one workload under S-NUCA."""
    config = baseline_config()
    stage1 = Stage1Cache()
    workload = make_workloads(num_cores=16, seed=9)[0]
    # Warm the stage-1 cache outside the timed region.
    for app in workload.apps:
        stage1.get(app, config, seed=9, n_instructions=_INSTRUCTIONS)

    def run():
        return run_workload(
            workload, "S-NUCA", config, seed=9,
            n_instructions=_INSTRUCTIONS, stage1=stage1,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    best = benchmark.stats.stats.min
    print(f"\nstage-2: {int(result.bank_writes.sum())} bank writes replayed")
    _record("stage2_workload", count=_INSTRUCTIONS, seconds=best,
            unit="instructions/core")
    assert result.ipc > 0


def test_bench_kernel_vs_reference():
    """The replay kernel must beat the reference loop by >= 3x.

    Both paths replay the identical warmed state (fresh ``prepare_replay``
    per measurement — the replay mutates the LLC); only the measured
    loop is timed, which is exactly what the kernel accelerates.
    """
    config = baseline_config()
    stage1 = Stage1Cache()
    workload = make_workloads(num_cores=16, seed=9)[0]
    for app in workload.apps:
        stage1.get(app, config, seed=9, n_instructions=_KERNEL_INSTRUCTIONS)

    def measure(replay_fn):
        best = float("inf")
        for _ in range(3):
            prep = prepare_replay(
                workload, "S-NUCA", config, seed=9,
                n_instructions=_KERNEL_INSTRUCTIONS, stage1=stage1,
            )
            t0 = time.perf_counter()
            replay_fn(prep)
            best = min(best, time.perf_counter() - t0)
        return best, prep.merged.total

    kernel_s, records = measure(lambda p: kernel_replay(
        p.llc, p.merged, cpts=p.cpts, threshold=p.threshold,
        block_cycles=p.block_cycles,
    ))
    reference_s, _ = measure(lambda p: _replay_reference(
        p.llc, p.merged, cpts=p.cpts, threshold=p.threshold,
        block_cycles=p.block_cycles,
    ))
    speedup = reference_s / kernel_s
    print(f"\nkernel: {records} records in {kernel_s:.3f}s "
          f"({records / kernel_s / 1e6:.2f} Mrec/s), "
          f"reference {reference_s:.3f}s "
          f"({records / reference_s / 1e6:.2f} Mrec/s), "
          f"speedup {speedup:.2f}x")
    _record("kernel_replay", count=records, seconds=kernel_s, unit="records",
            details={"reference_seconds": reference_s,
                     "speedup": round(speedup, 3)})
    assert speedup >= _KERNEL_MIN_SPEEDUP, (
        f"replay kernel is only {speedup:.2f}x the reference loop "
        f"(floor {_KERNEL_MIN_SPEEDUP}x at {_KERNEL_INSTRUCTIONS} "
        "instructions/core)"
    )
