"""Simulator-throughput benchmarks (true timing benches).

These measure the two hot loops of the library itself — useful for
tracking performance regressions of the simulator, independent of the
paper figures.
"""

from repro.config import baseline_config
from repro.cpu.core import AppSimulator
from repro.sim.runner import Stage1Cache, run_workload
from repro.trace.workloads import make_workloads

_INSTRUCTIONS = 40_000


def test_bench_stage1_throughput(benchmark):
    """Core+L1/L2 simulation speed (instructions simulated per call)."""

    def run():
        return AppSimulator("milc", baseline_config(), seed=9).run(_INSTRUCTIONS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nstage-1: {result.instructions} instructions, "
          f"{len(result.stream)} L3 records per run")
    assert result.instructions > 0


def test_bench_stage2_throughput(benchmark):
    """NUCA LLC replay speed for one workload under S-NUCA."""
    config = baseline_config()
    stage1 = Stage1Cache()
    workload = make_workloads(num_cores=16, seed=9)[0]
    # Warm the stage-1 cache outside the timed region.
    for app in workload.apps:
        stage1.get(app, config, seed=9, n_instructions=_INSTRUCTIONS)

    def run():
        return run_workload(
            workload, "S-NUCA", config, seed=9,
            n_instructions=_INSTRUCTIONS, stage1=stage1,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nstage-2: {int(result.bank_writes.sum())} bank writes replayed")
    assert result.ipc > 0
