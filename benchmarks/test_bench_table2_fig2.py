"""Table II + Figure 2: per-application characterisation."""

import numpy as np

from benchmarks.conftest import BENCH_INSTRUCTIONS, BENCH_SEED
from repro.experiments.report import render_fig2, render_table2
from repro.experiments.table2 import run_table2


def test_bench_table2_fig2(benchmark, stage1):
    rows = benchmark.pedantic(
        lambda: run_table2(
            seed=BENCH_SEED, n_instructions=BENCH_INSTRUCTIONS, stage1=stage1
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Table II: application characteristics (measured / target) ===")
    print(render_table2(rows))
    print("\n=== Figure 2: WPKI + MPKI per application ===")
    print(render_fig2(rows))

    assert len(rows) == 22
    # Shape checks: intensity ordering must match the paper's classes.
    by_app = {r.app: r for r in rows}
    assert by_app["mcf"].write_intensity > 50
    assert by_app["namd"].write_intensity < 2
    # Measured MPKI correlates strongly with the Table II targets.
    measured = np.array([r.mpki for r in rows])
    target = np.array([r.target_mpki for r in rows])
    corr = np.corrcoef(measured, target)[0, 1]
    assert corr > 0.95
