"""Figures 13-18 and the full Table III: the Section V-C sensitivity grid.

Each variant re-runs the entire evaluation with one parameter changed:
L2 = 128 KB (Figures 13/14), L3 bank = 1 MB (Figures 15/16), and
ROB = 168 entries (Figures 17/18).
"""

import numpy as np
import pytest

from repro.experiments.main_result import ALL_SCHEMES
from repro.experiments.report import (
    render_ipc_improvements,
    render_lifetime_bars,
    render_table3,
)

_FIGS = {
    "L2-128KB": ("Figure 13", "Figure 14"),
    "L3-1MB": ("Figure 15", "Figure 16"),
    "ROB-168": ("Figure 17", "Figure 18"),
}


@pytest.mark.parametrize("variant", list(_FIGS))
def test_bench_sensitivity_variant(benchmark, matrices, variant):
    matrix = benchmark.pedantic(lambda: matrices(variant), rounds=1, iterations=1)
    wear_fig, ipc_fig = _FIGS[variant]
    print(f"\n=== {wear_fig}: wear-levelling with {variant} "
          f"(per-bank h-mean lifetime, years) ===")
    print(render_lifetime_bars(matrix, ALL_SCHEMES))
    print(f"\n=== {ipc_fig}: IPC improvements with {variant} "
          f"(over S-NUCA, %) ===")
    print(render_ipc_improvements(matrix, ALL_SCHEMES))

    def cv(x):
        return float(np.std(x) / np.mean(x))
    re_bars = matrix.hmean_bank_lifetimes("Re-NUCA")
    r_bars = matrix.hmean_bank_lifetimes("R-NUCA")
    # The wear-levelling story must survive every variant.
    assert cv(re_bars) < cv(r_bars)
    assert matrix.raw_min_lifetime("Re-NUCA") > matrix.raw_min_lifetime("R-NUCA")


def test_bench_table3_full(benchmark, matrices):
    from repro.experiments.sensitivity import table3

    def build():
        return table3(
            {label: matrices(label) for label in
             ("Actual Results", "L2-128KB", "L3-1MB", "ROB-168")},
            ALL_SCHEMES,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n=== Table III: raw minimum lifetimes [years] ===")
    print(render_table3(table))

    for label, row in table.items():
        assert row["Re-NUCA"] > row["R-NUCA"], label
        assert row["Naive"] >= row["S-NUCA"] * 0.9, label
    # The 1 MB L3 halves every lifetime roughly (more fills per byte).
    assert table["L3-1MB"]["S-NUCA"] < table["Actual Results"]["S-NUCA"]
