"""Telemetry overhead guard: disabled telemetry must stay free.

The observability contract (docs/OBSERVABILITY.md) promises that a run
without a telemetry handle executes the pre-telemetry hot loop — the
instrumentation is `is None` checks only.  This bench holds that line
two ways:

* a relative guard: the telemetry-default path (``telemetry=None``)
  must stay within 5 % of an all-features-off ``Telemetry()`` handle,
  whose only extra cost is the same guard pattern — if the two diverge,
  a hot-path guard grew teeth;
* printed absolute numbers for eyeballing against the pre-telemetry
  baseline recorded below.

Pre-telemetry baseline, measured back-to-back against the commit
before the telemetry subsystem landed (stage-2 Re-NUCA replay, 60 000
instructions/core, warm stage-1, best of 9): **3.767 s** pre vs
**3.740 s** post on the reference machine, identical IPC — inside the
5 % budget.  CI machines vary too much for an absolute assert, so the
numbers live here and in the PR record instead.
"""

from __future__ import annotations

import time

from repro.config import baseline_config
from repro.sim.runner import Stage1Cache, run_workload
from repro.telemetry import Telemetry
from repro.trace.workloads import make_workloads

_INSTRUCTIONS = 60_000
_ROUNDS = 3


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_telemetry_disabled_overhead(benchmark):
    """`telemetry=None` replay speed vs an all-off Telemetry handle."""
    config = baseline_config()
    stage1 = Stage1Cache()
    workload = make_workloads(num_cores=16, seed=9)[0]
    # Warm the stage-1 cache outside the timed region: the comparison
    # must time only the stage-2 replay the telemetry guards live in.
    for app in workload.apps:
        stage1.get(app, config, seed=9, n_instructions=_INSTRUCTIONS)

    def run_plain():
        return run_workload(
            workload, "Re-NUCA", config, seed=9,
            n_instructions=_INSTRUCTIONS, stage1=stage1,
        )

    def run_all_off():
        return run_workload(
            workload, "Re-NUCA", config, seed=9,
            n_instructions=_INSTRUCTIONS, stage1=stage1,
            telemetry=Telemetry(),
        )

    plain = _best_of(run_plain)
    all_off = _best_of(run_all_off)
    result = benchmark.pedantic(run_plain, rounds=_ROUNDS, iterations=1)
    print(f"\ntelemetry=None:    {plain:6.3f} s (best of {_ROUNDS})"
          f"\nTelemetry() (off): {all_off:6.3f} s (best of {_ROUNDS})"
          f"\npre-telemetry baseline on the reference machine: 3.767 s")
    assert result.ipc > 0
    # 5% margin plus a small absolute floor so sub-second runs (low
    # REPRO_INSTRUCTIONS) don't trip on timer noise.
    assert all_off <= plain * 1.05 + 0.05, (
        f"registry-only telemetry costs {all_off / plain - 1:.1%} "
        "over the disabled path (contract: within 5%)"
    )
