"""Table I: the simulated architecture configuration."""

from repro.config import baseline_config


def test_bench_table1(benchmark):
    config = benchmark(baseline_config)
    print("\n=== Table I: simulated architecture configuration ===")
    print(config.describe())
    assert config.num_cores == 16
    assert config.l3_total_bytes == 32 * 1024 * 1024
