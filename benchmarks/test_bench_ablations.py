"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe the knobs the paper fixes:

* the criticality threshold (the paper picks 3% from Figure 7),
* D-NUCA migration (the paper argues it multiplies ReRAM wear),
* intra-bank set rotation (the Related-Work complementary technique).
"""

import dataclasses

import numpy as np

from benchmarks.conftest import BENCH_SEED
from repro.cache.cache import Cache
from repro.config import CacheConfig, CriticalityConfig, baseline_config
from repro.reram.intrabank import IntraBankLeveler, SetWearMeter
from repro.sim.runner import Stage1Cache, run_workload
from repro.trace.workloads import make_workloads

_ABLATION_INSTRUCTIONS = 60_000


def test_bench_ablation_criticality_threshold(benchmark):
    """Re-NUCA lifetime/IPC as the criticality threshold moves off 3%."""
    workload = make_workloads(num_cores=16, count=1, seed=BENCH_SEED)[0]

    def sweep():
        rows = []
        for threshold in (3.0, 25.0, 100.0):
            config = dataclasses.replace(
                baseline_config(),
                criticality=CriticalityConfig(threshold_percent=threshold),
            )
            stage1 = Stage1Cache()
            re = run_workload(workload, "Re-NUCA", config, seed=BENCH_SEED,
                              n_instructions=_ABLATION_INSTRUCTIONS, stage1=stage1)
            rows.append((threshold, re.ipc, re.min_lifetime,
                         re.critical_fill_fraction))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Ablation: Re-NUCA criticality threshold ===")
    print(f"{'threshold':>9s} {'IPC':>7s} {'min life':>9s} {'crit fills':>10s}")
    for threshold, ipc, life, frac in rows:
        print(f"{threshold:8.0f}% {ipc:7.2f} {life:8.2f}y {frac:10.2f}")
    # Raising the threshold marks fewer lines critical (more spreading).
    fracs = [frac for _t, _i, _l, frac in rows]
    assert fracs[0] > fracs[-1]


def test_bench_ablation_dnuca_migration(benchmark):
    """D-NUCA's migration wear vs R-NUCA on the same workload.

    The paper (Section I): D-NUCA 'may exacerbate the lifetime problem
    in ReRAM caches because data migration between banks increases the
    write traffic into the cache'.
    """
    config = baseline_config()
    workload = make_workloads(num_cores=16, count=1, seed=BENCH_SEED)[0]
    stage1 = Stage1Cache()

    def run():
        out = {}
        for scheme in ("R-NUCA", "D-NUCA"):
            result = run_workload(workload, scheme, config, seed=BENCH_SEED,
                                  n_instructions=_ABLATION_INSTRUCTIONS,
                                  stage1=stage1)
            out[scheme] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: D-NUCA migration wear ===")
    for scheme, r in results.items():
        print(f"  {scheme:7s} total writes {int(r.bank_writes.sum()):>9d} "
              f"min life {r.min_lifetime:6.2f}y IPC {r.ipc:6.2f}")
    assert results["D-NUCA"].bank_writes.sum() > results["R-NUCA"].bank_writes.sum()


def test_bench_ablation_intrabank_rotation(benchmark):
    """Set-rotation period vs intra-bank wear imbalance (i2wap-style)."""
    rng = np.random.default_rng(BENCH_SEED)
    # Zipf-ish write-hammering of one bank-sized cache.
    hot = rng.integers(0, 64, size=30_000)          # hot lines, few sets
    cold = rng.integers(0, 32768, size=10_000)      # background writes
    lines = np.concatenate([hot, cold])
    rng.shuffle(lines)

    def run(period: int) -> SetWearMeter:
        cache = Cache(CacheConfig(2 * 1024 * 1024, 16, 100, name="bank"))
        meter = SetWearMeter(cache.num_sets)
        leveler = IntraBankLeveler(cache, period, meter)
        for line in lines.tolist():
            if not cache.contains(line):
                cache.allocate(line, dirty=True)
            else:
                cache.mark_dirty(line)
            leveler.on_write(line)
        return meter

    def sweep():
        return {period: run(period) for period in (0, 2000, 200)}

    meters = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Ablation: intra-bank set rotation ===")
    print(f"{'period':>8s} {'max/mean set writes':>20s} {'CV':>6s}")
    for period, meter in meters.items():
        label = "off" if period == 0 else str(period)
        print(f"{label:>8s} {meter.imbalance:20.2f} {meter.variation:6.2f}")
    assert meters[200].imbalance < meters[0].imbalance
