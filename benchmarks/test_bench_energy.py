"""Energy accounting bench: SRAM vs ReRAM LLC on one workload.

Not a paper figure — it quantifies the Section I motivation ("standby
power is up to 80% of their total power" for SRAM LLCs) on a simulated
run, using the same activity counts the wear model sees.
"""

from benchmarks.conftest import BENCH_SEED
from repro.config import baseline_config
from repro.reram.energy import RERAM, SRAM_32NM, energy_of_result
from repro.sim.runner import Stage1Cache, run_workload
from repro.trace.workloads import make_workloads


def test_bench_energy_motivation(benchmark):
    config = baseline_config()
    workload = make_workloads(num_cores=16, count=1, seed=BENCH_SEED)[0]
    stage1 = Stage1Cache()

    def run():
        result = run_workload(
            workload, "S-NUCA", config, seed=BENCH_SEED,
            n_instructions=40_000, stage1=stage1,
        )
        return (
            energy_of_result(result, config, SRAM_32NM),
            energy_of_result(result, config, RERAM),
        )

    sram, reram = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== LLC energy: SRAM vs ReRAM (Section I motivation) ===")
    for report in (sram, reram):
        print(f"  {report.technology:6s} total {report.total_mj:9.3f} mJ "
              f"(static {report.static_fraction:5.1%}, "
              f"writes {report.write_mj:7.3f} mJ)")
    assert sram.static_fraction > 0.5       # the paper's "up to 80%"
    assert reram.total_mj < sram.total_mj   # why ReRAM wins overall
    assert reram.write_mj > sram.write_mj   # the tax the paper manages
