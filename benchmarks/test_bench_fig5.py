"""Figure 5: percentage of loads that never block the ROB head."""

import numpy as np

from benchmarks.conftest import BENCH_INSTRUCTIONS, BENCH_SEED
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import render_percent_map


def test_bench_fig5(benchmark, stage1):
    data = benchmark.pedantic(
        lambda: run_fig5(
            seed=BENCH_SEED, n_instructions=BENCH_INSTRUCTIONS, stage1=stage1
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_percent_map("=== Figure 5: non-critical loads [%] ===", data))
    # Paper: "on average, over 80% of all loads issued by the processor
    # do not stall the ROB".
    assert float(np.mean(list(data.values()))) > 80.0
    assert all(0.0 <= v <= 100.0 for v in data.values())
