"""Shared state for the benchmark harness.

Every bench regenerates one of the paper's tables/figures.  The heavy
simulation state is shared at session scope:

* one :class:`~repro.sim.runner.Stage1Cache` holds every per-app run,
* the evaluation matrices (workloads x schemes) are built once per
  configuration and reused by every figure extracted from them.

``REPRO_INSTRUCTIONS`` (default 150 000 here) sets the per-core
instruction budget; the paper used 100 M — lifetime and IPC are
rate-based, so the shapes reproduce at laptop scale.  ``REPRO_SEED``
fixes the synthetic-trace seed.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.main_result import ALL_SCHEMES, run_main_matrix
from repro.experiments.sensitivity import SENSITIVITY_CONFIGS
from repro.sim.runner import Stage1Cache

BENCH_INSTRUCTIONS: int = int(os.environ.get("REPRO_INSTRUCTIONS", "150000"))
BENCH_SEED: int = int(os.environ.get("REPRO_SEED", "1"))
BENCH_WORKLOADS: int = int(os.environ.get("REPRO_WORKLOADS", "10"))


@pytest.fixture(scope="session")
def stage1():
    """Session-wide stage-1 memo (per-app core+L1/L2 simulations)."""
    return Stage1Cache()


def _progress(workload: str, scheme: str) -> None:
    print(f"    [stage 2] {workload} / {scheme}", flush=True)


@pytest.fixture(scope="session")
def matrices(stage1):
    """Lazily-built evaluation matrices, one per Table III configuration."""
    cache: dict[str, object] = {}

    def get(variant: str):
        if variant not in cache:
            print(f"\n  building matrix for {variant!r} "
                  f"({BENCH_WORKLOADS} workloads x {len(ALL_SCHEMES)} schemes, "
                  f"{BENCH_INSTRUCTIONS} instructions/core)", flush=True)
            cache[variant] = run_main_matrix(
                SENSITIVITY_CONFIGS[variant](),
                schemes=ALL_SCHEMES,
                label=variant,
                num_workloads=BENCH_WORKLOADS,
                seed=BENCH_SEED,
                n_instructions=BENCH_INSTRUCTIONS,
                stage1=stage1,
                progress=_progress,
            )
        return cache[variant]

    return get


@pytest.fixture(scope="session")
def main_matrix(matrices):
    """The baseline-configuration grid (Figures 3/4/11/12)."""
    return matrices("Actual Results")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "quick: fast smoke benches runnable in CI (no full matrices)",
    )
