"""Figures 7, 8 and 9: criticality-predictor threshold sweeps."""

from benchmarks.conftest import BENCH_INSTRUCTIONS, BENCH_SEED
from repro.experiments.criticality import run_criticality_sweep
from repro.experiments.report import render_threshold_sweep


def test_bench_fig7_8_9(benchmark, stage1):
    sweep = benchmark.pedantic(
        lambda: run_criticality_sweep(
            seed=BENCH_SEED, n_instructions=BENCH_INSTRUCTIONS, stage1=stage1
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_threshold_sweep(
        "=== Figure 7: criticality prediction accuracy [%] ===",
        sweep.accuracy, sweep.thresholds,
    ))
    print()
    print(render_threshold_sweep(
        "=== Figure 8: non-critical cache blocks [%] ===",
        sweep.noncritical_blocks, sweep.thresholds,
    ))
    print()
    print(render_threshold_sweep(
        "=== Figure 9: writes to non-critical blocks [%] ===",
        sweep.noncritical_writes, sweep.thresholds,
    ))

    acc_avg = sweep.average(sweep.accuracy)
    blocks_avg = sweep.average(sweep.noncritical_blocks)
    writes_avg = sweep.average(sweep.noncritical_writes)
    # Paper shapes: accuracy decreases with the threshold (83% at 3%,
    # 14.5% at 100%); non-critical shares increase with the threshold
    # (~50% of blocks and writes at the 3% threshold).  Our absolute
    # recall at low thresholds runs below the paper's because several
    # study apps' blocking loads are one-off stream leaders with no PC
    # history (see EXPERIMENTS.md); the monotone shape and the 100%
    # endpoint are the asserted content.
    assert acc_avg[3] > 25.0
    assert acc_avg[3] > acc_avg[100] + 10.0
    assert acc_avg[100] < 40.0
    assert 25.0 < blocks_avg[3] < 95.0
    assert blocks_avg[100] > blocks_avg[3]
    assert 25.0 < writes_avg[3] < 95.0
