"""Stage-1 characterisation-kernel benchmark (true timing bench).

Times the vectorized stage-1 kernel (:mod:`repro.cpu.kernel`) against
the reference object-graph loop (:meth:`~repro.cpu.core.AppSimulator.run`
with ``use_kernel=False``) over the same app, configuration and seed.
A fresh simulator is built per measurement — the run mutates the warmed
caches — and the whole characterisation (trace synthesis + hot loop) is
timed, which is what sweeps actually pay per stage-1 miss.

The floor is calibrated to ``_INSTRUCTIONS``: the kernel pays fixed
per-run costs (warm-up, numpy meter reduction), so its margin grows
with the budget and dips below 2x only at toy budgets.

Set ``REPRO_BENCH_RECORD=<path>`` to append the measurement to a
trajectory file via :func:`repro.obs.bench.stage1_point` (the committed
``BENCH_throughput.json`` holds the historical points).
"""

import os
import time

from repro.config import baseline_config
from repro.cpu.core import AppSimulator

_APP = "milc"
_SEED = 9
#: Budget the >= 2x floor is calibrated to (the sweep-scale default).
_INSTRUCTIONS = 150_000
_MIN_SPEEDUP = 2.0


def _measure(use_kernel: bool):
    """Best-of-3 wall time of one full characterisation run."""
    best = float("inf")
    result = None
    for _ in range(3):
        sim = AppSimulator(_APP, baseline_config(), seed=_SEED)
        t0 = time.perf_counter()
        result = sim.run(_INSTRUCTIONS, use_kernel=use_kernel)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_stage1_kernel_vs_reference():
    """The stage-1 kernel must beat the reference loop by >= 2x."""
    kernel_s, kres = _measure(True)
    reference_s, rres = _measure(False)
    speedup = reference_s / kernel_s
    print(f"\nstage-1 kernel: {kres.instructions} instructions in "
          f"{kernel_s:.3f}s ({kres.instructions / kernel_s / 1e6:.2f} "
          f"Minstr/s), reference {reference_s:.3f}s "
          f"({rres.instructions / reference_s / 1e6:.2f} Minstr/s), "
          f"speedup {speedup:.2f}x")

    out = os.environ.get("REPRO_BENCH_RECORD")
    if out:
        from repro.obs.bench import append_bench_point, stage1_point

        append_bench_point(out, stage1_point(
            instructions=kres.instructions,
            kernel_seconds=kernel_s,
            reference_seconds=reference_s,
        ))

    assert kres.instructions == rres.instructions
    assert speedup >= _MIN_SPEEDUP, (
        f"stage-1 kernel is only {speedup:.2f}x the reference loop "
        f"(floor {_MIN_SPEEDUP}x at {_INSTRUCTIONS} instructions)"
    )
