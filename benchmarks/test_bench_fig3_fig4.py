"""Figures 3 and 4b: the motivation study (4 schemes, no Re-NUCA)."""

import numpy as np

from repro.experiments.main_result import MOTIVATION_SCHEMES
from repro.experiments.report import render_lifetime_bars, render_tradeoff


def test_bench_fig3(benchmark, main_matrix):
    bars = benchmark.pedantic(
        lambda: {s: main_matrix.hmean_bank_lifetimes(s) for s in MOTIVATION_SCHEMES},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 3: per-bank harmonic-mean lifetime [years] ===")
    print(render_lifetime_bars(main_matrix, MOTIVATION_SCHEMES))

    snuca = bars["S-NUCA"]
    naive = bars["Naive"]
    private = bars["Private"]
    rnuca = bars["R-NUCA"]
    def cv(x):
        return float(np.std(x) / np.mean(x))
    # Paper shapes: Naive levels perfectly, S-NUCA nearly so; R-NUCA has
    # large variation; Private is the extreme.
    assert cv(naive) < 0.02
    assert cv(snuca) < 0.25
    assert cv(rnuca) > 2 * cv(snuca)
    assert cv(private) > cv(rnuca)
    assert private.min() < rnuca.min() <= snuca.min() * 1.05


def test_bench_fig4_tradeoff(benchmark, main_matrix):
    points = benchmark.pedantic(
        lambda: main_matrix.tradeoff_points(), rounds=1, iterations=1
    )
    print("\n=== Figure 4b: performance vs lifetime trade-off ===")
    print(render_tradeoff(main_matrix))
    from repro.experiments.ascii_plot import scatter

    print()
    print(scatter(points, xlabel="IPC", ylabel="h-mean lifetime [y]",
                  title="(higher-right is better)"))

    # Paper: Naive best lifetime / worst IPC; Private best IPC / worst
    # lifetime; S-NUCA and R-NUCA in between on both axes.
    ipc = {s: p[0] for s, p in points.items()}
    life = {s: p[1] for s, p in points.items()}
    # Private's capacity loss can offset its zero-hop hits at small
    # scales (see EXPERIMENTS.md); it must stay within a few percent.
    assert ipc["Private"] > ipc["S-NUCA"] * 0.97
    assert ipc["S-NUCA"] > ipc["Naive"]
    assert ipc["R-NUCA"] > ipc["S-NUCA"]
    assert life["Naive"] > life["S-NUCA"] > life["R-NUCA"] > life["Private"]
