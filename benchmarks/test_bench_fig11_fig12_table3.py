"""Figures 11/12 and Table III's baseline row: the headline results."""

import numpy as np

from repro.experiments.main_result import ALL_SCHEMES
from repro.experiments.report import (
    render_ipc_improvements,
    render_lifetime_bars,
)


def test_bench_fig11_ipc(benchmark, main_matrix):
    improvements = benchmark.pedantic(
        lambda: {
            s: main_matrix.mean_ipc_improvement(s)
            for s in ("R-NUCA", "Private", "Re-NUCA", "Naive")
        },
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 11: IPC improvement over S-NUCA [%] ===")
    print(render_ipc_improvements(main_matrix, ALL_SCHEMES))

    # Paper: R-NUCA +4.7%, Private +8%, Re-NUCA ~= R-NUCA, Naive -21%.
    # Private's sign is mix/scale-sensitive in this reproduction (its
    # capacity loss weighs more than in the paper; see EXPERIMENTS.md).
    assert improvements["R-NUCA"] > 1.0
    assert improvements["Private"] > -3.0
    assert improvements["Naive"] < -5.0
    # Re-NUCA must recover a meaningful share of R-NUCA's advantage
    # (see EXPERIMENTS.md for the known deviation from full parity).
    assert improvements["Re-NUCA"] > improvements["Naive"]
    assert improvements["Re-NUCA"] > -1.0


def test_bench_fig12_wearout(benchmark, main_matrix):
    bars = benchmark.pedantic(
        lambda: {s: main_matrix.hmean_bank_lifetimes(s) for s in ALL_SCHEMES},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 12: Re-NUCA wear-out (per-bank h-mean lifetime, years) ===")
    print(render_lifetime_bars(main_matrix, ALL_SCHEMES))
    from repro.experiments.ascii_plot import wear_heatmap

    for scheme in ("R-NUCA", "Re-NUCA", "S-NUCA"):
        writes = sum(
            main_matrix.get(wl, scheme).bank_writes
            for wl in main_matrix.workloads
        )
        print(f"\n{scheme} aggregate bank-write heat (4x4 mesh):")
        print(wear_heatmap(list(writes), cols=4))

    def cv(x):
        return float(np.std(x) / np.mean(x))
    # Re-NUCA wear-levels R-NUCA: lower variation, higher minimum.
    assert cv(bars["Re-NUCA"]) < cv(bars["R-NUCA"])
    assert bars["Re-NUCA"].min() > bars["R-NUCA"].min()
    assert cv(bars["S-NUCA"]) <= cv(bars["Re-NUCA"]) + 0.05


def test_bench_table3_baseline(benchmark, main_matrix):
    raw_min = benchmark.pedantic(
        lambda: {s: main_matrix.raw_min_lifetime(s) for s in ALL_SCHEMES},
        rounds=1,
        iterations=1,
    )
    print("\n=== Table III (Actual Results row): raw minimum lifetime [years] ===")
    for scheme in ALL_SCHEMES:
        print(f"  {scheme:8s} {raw_min[scheme]:7.2f}")
    ratio = raw_min["Re-NUCA"] / raw_min["R-NUCA"]
    print(f"  Re-NUCA / R-NUCA = {ratio:.2f}x   (paper: 1.42x, +42%)")

    # Paper ordering: Naive > S-NUCA > Re-NUCA > R-NUCA > Private,
    # with Re-NUCA >= ~1.3x R-NUCA.
    assert raw_min["Naive"] >= raw_min["S-NUCA"] * 0.95
    assert raw_min["S-NUCA"] > raw_min["R-NUCA"]
    assert raw_min["Re-NUCA"] > raw_min["R-NUCA"] * 1.2
    assert raw_min["R-NUCA"] > raw_min["Private"] * 0.95
