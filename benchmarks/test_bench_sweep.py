"""Sweep-engine benches: parallel speedup and cache-warm replays.

Two claims from ``docs/SWEEPS.md`` are checked here rather than in the
unit suite because they are about wall-clock behaviour:

* a warm :class:`~repro.jobs.cache.ResultCache` replays a whole grid
  with **zero** stage-2 simulations (the ``quick``-marked smoke below
  also runs in CI);
* on a multi-core machine, four workers resolve a fresh grid at least
  twice as fast as the serial path — while producing a byte-identical
  result matrix.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.config import baseline_config, scaled_config
from repro.jobs.cache import ResultCache
from repro.jobs.scheduler import matrix_jobs, run_jobs
from repro.sim.store import result_to_dict
from repro.trace.workloads import Workload

CONFIG = scaled_config(baseline_config(), cores=4)

#: Small overlapping app pool: per-worker stage-1 caches get real reuse.
_POOL = ("hmmer", "namd", "povray", "dealII", "sjeng", "gromacs")


def _workloads(n: int) -> list[Workload]:
    return [
        Workload(f"sweep{i}", tuple(_POOL[(i + j) % len(_POOL)]
                                    for j in range(4)))
        for i in range(n)
    ]


@pytest.fixture
def flat_cpi(monkeypatch):
    """Skip calibration probes; keeps the bench about scheduling."""
    monkeypatch.setattr(
        "repro.sim.runner.calibrated_base_cpi",
        lambda app, config, seed=None: 1.0,
    )


@pytest.mark.quick
def test_bench_sweep_cache_warm_rerun(flat_cpi, tmp_path):
    """2x2 grid with --jobs 2: the rerun must simulate nothing."""
    jobs = matrix_jobs(_workloads(2), ("S-NUCA", "Re-NUCA"), CONFIG,
                       seed=3, n_instructions=4_000)
    cache = ResultCache(tmp_path / "cache")

    cold, cold_report = run_jobs(jobs, max_workers=2, cache=cache)
    assert cold_report.executed == 4
    assert cache.writes == 4

    warm, warm_report = run_jobs(jobs, max_workers=2, cache=cache)
    assert warm_report.executed == 0, "warm rerun must not simulate"
    assert warm_report.cache_hits == 4
    for a, b in zip(cold, warm):
        assert result_to_dict(a) == result_to_dict(b)
    print(f"\ncold: {cold_report.summary()}  warm: {warm_report.summary()}")


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup bench needs >= 4 CPUs")
def test_bench_sweep_parallel_speedup(flat_cpi):
    """8x4 grid: four workers must beat the serial path by >= 2x."""
    schemes = ("S-NUCA", "R-NUCA", "Re-NUCA", "Private")
    instructions = 12_000

    def grid():
        return matrix_jobs(_workloads(8), schemes, CONFIG,
                           seed=3, n_instructions=instructions)

    start = time.perf_counter()
    serial, _ = run_jobs(grid(), max_workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel, _ = run_jobs(grid(), max_workers=4)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"\nserial {serial_s:.2f}s  parallel(4) {parallel_s:.2f}s  "
          f"speedup {speedup:.2f}x over {len(serial)} jobs")
    for a, b in zip(serial, parallel):
        assert result_to_dict(a) == result_to_dict(b)
    assert speedup >= 2.0, (
        f"expected >= 2x with 4 workers, measured {speedup:.2f}x"
    )
