"""Statistics helpers used by the metrics and reporting layers.

The paper reports *harmonic means* of per-workload lifetimes ("average
lifetime is significantly affected by the extremes") and min/variation
summaries over banks; the helpers here implement those reductions plus a
small streaming-moments accumulator.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values.

    Raises:
        ReproError: if the input is empty or contains a non-positive value
            (the harmonic mean is undefined there, and a zero lifetime
            would silently poison a mean otherwise).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("harmonic mean of an empty sequence")
    if np.any(arr <= 0):
        raise ReproError("harmonic mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Population coefficient of variation (stddev / mean); 0 for constants."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("coefficient of variation of an empty sequence")
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float(arr.std() / mean)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ReproError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass
class RunningStats:
    """Streaming count/mean/min/max/M2 accumulator (Welford's algorithm).

    Used where the simulator wants summary statistics over a stream too
    long to retain (e.g. per-access L3 latencies).
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both streams."""
        if other.count == 0:
            return RunningStats(self.count, self.mean, self._m2, self.min, self.max)
        if self.count == 0:
            return RunningStats(other.count, other.mean, other._m2, other.min, other.max)
        total = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / total
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        return RunningStats(
            total, mean, m2, min(self.min, other.min), max(self.max, other.max)
        )
