"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent system configuration was supplied."""


class TraceError(ReproError):
    """A trace record or trace generator parameter is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the library (or memory corruption in a
    hand-built component wired into the system), never a user mistake, so
    it is raised with enough context to debug the offending access.
    """
