"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent system configuration was supplied."""


class SweepCancelled(ReproError):
    """A sweep stopped early at the user's request (SIGINT/SIGTERM).

    Raised by the scheduler after a graceful drain: in-flight jobs were
    finished and journaled, ledger records were written, and the message
    carries the resume hint.  The CLI maps it to exit code 130 (the
    conventional interrupted-by-SIGINT status) rather than the generic
    error code.
    """


class TraceError(ReproError):
    """A trace record or trace generator parameter is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the library (or memory corruption in a
    hand-built component wired into the system), never a user mistake, so
    it is raised with enough context to debug the offending access.
    """
