"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` derived from a single experiment seed via
``numpy``'s ``SeedSequence`` spawning, so

* the same (seed, component-path) pair always produces the same stream, and
* adding a new component never perturbs the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

#: Default experiment seed used when the caller does not supply one.
DEFAULT_SEED: int = 0xC0FFEE


def root_sequence(seed: int | None = None) -> np.random.SeedSequence:
    """Root :class:`~numpy.random.SeedSequence` for an experiment."""
    return np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)


def derive_rng(seed: int | None, *path: int | str) -> np.random.Generator:
    """Return a generator unique to ``(seed, *path)``.

    ``path`` components identify the consumer (e.g. ``("trace", app_name,
    core_id)``); strings are hashed stably (by their UTF-8 bytes) so the
    mapping does not depend on ``PYTHONHASHSEED``.
    """
    keys: list[int] = []
    for part in path:
        if isinstance(part, str):
            # Stable string -> int fold independent of PYTHONHASHSEED.
            acc = 0
            for byte in part.encode("utf-8"):
                acc = (acc * 131 + byte) % (2**63)
            keys.append(acc)
        else:
            keys.append(int(part) % (2**63))
    seq = np.random.SeedSequence(
        entropy=(DEFAULT_SEED if seed is None else seed), spawn_key=tuple(keys)
    )
    return np.random.default_rng(seq)
