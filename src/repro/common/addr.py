"""Address arithmetic.

The simulator works on 48-bit physical addresses (matching the paper's
Figure 10).  Cache lines are 64 bytes and pages are 4 KB throughout, but
every helper is parameterised so non-default geometries remain testable.

Bit layout of an address for the default geometry::

    47                    12 11        6 5       0
    +-----------------------+-----------+---------+
    |      page number      | line-in-pg| offset  |
    +-----------------------+-----------+---------+

The *line address* is the address shifted right by the offset width; it is
the unit the cache hierarchy operates on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two, log2_exact

#: Default cache-line size in bytes (Table I).
LINE_BYTES: int = 64
#: Default page size in bytes (Figure 10).
PAGE_BYTES: int = 4096
#: Physical address width in bits (Figure 10).
ADDR_BITS: int = 48


@dataclass(frozen=True)
class AddressMap:
    """Precomputed shifts/masks for one line/page geometry.

    Instances are cheap and immutable; the default geometry is available
    as :data:`DEFAULT_ADDRESS_MAP`.
    """

    line_bytes: int = LINE_BYTES
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"line size must be a power of two: {self.line_bytes}")
        if not is_power_of_two(self.page_bytes):
            raise ConfigError(f"page size must be a power of two: {self.page_bytes}")
        if self.page_bytes % self.line_bytes:
            raise ConfigError("page size must be a multiple of the line size")

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return log2_exact(self.line_bytes)

    @property
    def page_offset_bits(self) -> int:
        """Number of byte-offset bits within a page."""
        return log2_exact(self.page_bytes)

    @property
    def lines_per_page(self) -> int:
        """Cache lines per page (64 for the default geometry)."""
        return self.page_bytes // self.line_bytes

    def line_addr(self, addr: int) -> int:
        """Byte address -> line address (address / line size)."""
        return addr >> self.offset_bits

    def line_to_byte(self, line: int) -> int:
        """Line address -> byte address of the line's first byte."""
        return line << self.offset_bits

    def page_number(self, addr: int) -> int:
        """Byte address -> page number."""
        return addr >> self.page_offset_bits

    def page_of_line(self, line: int) -> int:
        """Line address -> page number containing the line."""
        return line >> (self.page_offset_bits - self.offset_bits)

    def line_in_page(self, addr: int) -> int:
        """Byte address -> index of its line within the page (0..63)."""
        return (addr >> self.offset_bits) & (self.lines_per_page - 1)

    def line_index_in_page(self, line: int) -> int:
        """Line address -> index of the line within its page (0..63)."""
        return line & (self.lines_per_page - 1)


#: Shared default geometry (64-B lines, 4-KB pages).
DEFAULT_ADDRESS_MAP = AddressMap()


def set_index(line: int, num_sets: int) -> int:
    """Set index of ``line`` in a cache with ``num_sets`` sets.

    ``num_sets`` must be a power of two (standard bit-select indexing).
    """
    if not is_power_of_two(num_sets):
        raise ConfigError(f"number of sets must be a power of two: {num_sets}")
    return line & (num_sets - 1)


def tag_bits(line: int, num_sets: int) -> int:
    """Tag of ``line`` for a cache with ``num_sets`` sets."""
    if not is_power_of_two(num_sets):
        raise ConfigError(f"number of sets must be a power of two: {num_sets}")
    return line >> log2_exact(num_sets)
