"""Size and time unit helpers.

All capacities inside the library are plain integers in bytes and all times
are integers in core clock cycles; these helpers exist so configuration
code can speak in "256KB" / "years" without ad-hoc arithmetic scattered
around.
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigError

#: One kibibyte (2**10 bytes).
KIB: int = 1024
#: One mebibyte (2**20 bytes).
MIB: int = 1024 * 1024
#: One gibibyte (2**30 bytes).
GIB: int = 1024 * 1024 * 1024
#: Cycles per second at 1 GHz.
GHZ: float = 1e9
#: Julian year, matching the paper's "lifetime in years" unit.
SECONDS_PER_YEAR: float = 365.25 * 24 * 3600

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMG]i?B|B)?\s*$", re.IGNORECASE)

_UNIT_FACTOR = {
    None: 1,
    "B": 1,
    "KB": KIB,
    "KIB": KIB,
    "MB": MIB,
    "MIB": MIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable capacity such as ``"256KB"`` into bytes.

    Integers pass through unchanged.  Following architecture-paper
    convention (and the paper's Table I), ``KB``/``MB``/``GB`` are binary
    units (1 KB = 1024 B).

    Raises:
        ConfigError: if ``text`` is not a recognisable size.
    """
    if isinstance(text, int):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparsable size: {text!r}")
    value = float(match.group(1))
    unit = match.group(2).upper() if match.group(2) else None
    size = value * _UNIT_FACTOR[unit]
    if size != int(size):
        raise ConfigError(f"size {text!r} is not a whole number of bytes")
    return int(size)


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count into wall-clock seconds at ``clock_hz``."""
    if clock_hz <= 0:
        raise ConfigError(f"clock frequency must be positive, got {clock_hz}")
    return cycles / clock_hz


def cycles_to_years(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count into years at ``clock_hz`` (Julian years)."""
    return cycles_to_seconds(cycles, clock_hz) / SECONDS_PER_YEAR


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two, raising :class:`ConfigError` otherwise."""
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1
