"""Shared low-level utilities used by every subsystem.

This package holds the pieces that are not specific to any architectural
component: size/time unit helpers (:mod:`repro.common.units`), address
arithmetic (:mod:`repro.common.addr`), deterministic random-number plumbing
(:mod:`repro.common.rng`), statistics helpers (:mod:`repro.common.stats`)
and the exception hierarchy (:mod:`repro.common.errors`).
"""

from repro.common.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.units import (
    GHZ,
    KIB,
    MIB,
    SECONDS_PER_YEAR,
    cycles_to_seconds,
    cycles_to_years,
    parse_size,
)

__all__ = [
    "ConfigError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "GHZ",
    "KIB",
    "MIB",
    "SECONDS_PER_YEAR",
    "cycles_to_seconds",
    "cycles_to_years",
    "parse_size",
]
