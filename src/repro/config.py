"""System configuration (the paper's Table I) as validated dataclasses.

:func:`baseline_config` returns the exact Table I machine: 16 OoO cores at
2.4 GHz with 128-entry ROBs, 32 KB 4-way L1s, 256 KB 8-way private L2s, a
32 MB 16-bank 16-way ReRAM L3 on a 4x4 mesh, and DDR3-like main memory.
The three sensitivity configurations of Section V-C are provided as
variants (:func:`sensitivity_l2_128k`, :func:`sensitivity_l3_1m`,
:func:`sensitivity_rob_168`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from repro.common.addr import LINE_BYTES, PAGE_BYTES
from repro.common.errors import ConfigError
from repro.common.units import GHZ, KIB, MIB, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    latency: int
    line_bytes: int = LINE_BYTES
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        if self.assoc <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.latency <= 0:
            raise ConfigError(f"{self.name}: latency must be positive")
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"{self.name}: number of sets must be a power of two, "
                f"got {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of line frames."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters."""

    clock_hz: float = 2.4 * GHZ
    rob_entries: int = 128
    issue_width: int = 4
    commit_width: int = 4

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("core clock must be positive")
        if self.rob_entries < 8:
            raise ConfigError("ROB must have at least 8 entries")
        if self.issue_width <= 0 or self.commit_width <= 0:
            raise ConfigError("issue/commit width must be positive")


@dataclass(frozen=True)
class NocConfig:
    """Mesh network-on-chip parameters.

    ``hop_cycles`` is the per-hop router+link traversal cost; a request to a
    bank ``h`` hops away pays ``2 * h * hop_cycles`` round trip on top of
    the bank access latency.
    """

    mesh_cols: int = 4
    mesh_rows: int = 4
    hop_cycles: int = 16

    def __post_init__(self) -> None:
        if self.mesh_cols <= 0 or self.mesh_rows <= 0:
            raise ConfigError("mesh dimensions must be positive")
        if self.hop_cycles < 0:
            raise ConfigError("hop latency cannot be negative")

    @property
    def num_nodes(self) -> int:
        """Total mesh node count (= cores = L3 banks in Table I)."""
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory model parameters (DDR3 + FR-FCFS approximation).

    FR-FCFS exploits row-buffer locality: a request to the currently
    open row of a DRAM bank pays ``row_hit_latency_cycles``; any other
    request pays the full ``latency_cycles`` (precharge + activate).
    Sequential streams therefore see far lower effective latency than
    pointer chases — the behaviour that separates bandwidth-bound from
    latency-bound applications.
    """

    latency_cycles: int = 240
    row_hit_latency_cycles: int = 110
    #: Aggregate service rate of the 4-channel DDR3 system (Table I):
    #: ~0.2 lines/cycle per channel.
    bandwidth_lines_per_cycle: float = 0.8
    #: Cache lines per DRAM row (8 KB row / 64 B line).
    lines_per_row: int = 128
    #: Independent DRAM banks (4 channels x 2 ranks x 8 banks).
    dram_banks: int = 64

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0:
            raise ConfigError("memory latency must be positive")
        if not (0 < self.row_hit_latency_cycles <= self.latency_cycles):
            raise ConfigError("row-hit latency must be in (0, latency]")
        if self.bandwidth_lines_per_cycle <= 0:
            raise ConfigError("memory bandwidth must be positive")
        if not is_power_of_two(self.lines_per_row):
            raise ConfigError("lines per row must be a power of two")
        if not is_power_of_two(self.dram_banks):
            raise ConfigError("DRAM bank count must be a power of two")


@dataclass(frozen=True)
class ReRamConfig:
    """ReRAM technology parameters for the L3 banks.

    ``cell_endurance`` is the per-cell write limit; the paper uses 1e11
    ("we consider a ReRAM cache line to wear out beyond 1e11 writes").
    ``write_penalty_cycles`` is the extra latency of a ReRAM write over a
    read (ReRAM's long SET/RESET).
    """

    cell_endurance: float = 1e11
    write_penalty_cycles: int = 16
    #: Residual intra-bank write imbalance: hot sets inside a bank absorb
    #: more writes than cold ones (the i2wap/EqualChance problem, which
    #: the paper treats as orthogonal), so a bank's capacity-loss point
    #: arrives earlier than perfectly uniform wear would suggest.
    intra_bank_wear_spread: float = 0.5

    def __post_init__(self) -> None:
        if self.cell_endurance <= 0:
            raise ConfigError("cell endurance must be positive")
        if self.write_penalty_cycles < 0:
            raise ConfigError("write penalty cannot be negative")
        if not (0 < self.intra_bank_wear_spread <= 1.0):
            raise ConfigError("intra-bank wear spread must be in (0, 1]")


@dataclass(frozen=True)
class FaultConfig:
    """End-of-life fault-injection parameters (the robustness testbed).

    This section is *not* part of :class:`SystemConfig`: faults describe a
    point in the cache's service life, not the machine, so the same Table I
    system is swept over many :class:`FaultConfig` instances (see
    ``repro.experiments.endoflife``).

    ``age_fraction`` is the fraction of the nominal cell endurance the
    *average* bank has consumed; individual banks age faster or slower in
    proportion to their share of the write traffic, and frames inside a
    bank die spread over ``[wear_spread, 1.0]`` of consumed endurance
    (the residual intra-bank imbalance of ``ReRamConfig``).  Ages above
    1.0 model operation past the rated endurance.

    ``bank_failures`` schedules whole-bank (peripheral-circuit) failures:
    ``(bank_id, fail_age)`` pairs; the bank is fully dead once
    ``age_fraction >= fail_age``.

    ``transient_rate`` is the per-LLC-read probability of a transient
    (soft) fault: the read data is corrupt, the line is dropped and
    refetched from memory.

    ``remap_penalty_cycles`` is the extra latency of every access
    redirected away from a dead bank (the remap table lookup).

    ``fault_seed`` decouples the fault-site draw from the experiment
    seed; ``None`` reuses the run seed (the default, so one ``--seed``
    reproduces the whole run, faults included).
    """

    age_fraction: float = 0.0
    transient_rate: float = 0.0
    bank_failures: tuple[tuple[int, float], ...] = ()
    remap_penalty_cycles: int = 24
    fault_seed: int | None = None

    def __post_init__(self) -> None:
        if self.age_fraction < 0:
            raise ConfigError("age fraction cannot be negative")
        if not (0 <= self.transient_rate < 1):
            raise ConfigError("transient fault rate must be in [0, 1)")
        if self.remap_penalty_cycles < 0:
            raise ConfigError("remap penalty cannot be negative")
        for entry in self.bank_failures:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise ConfigError(
                    f"bank failure entries must be (bank, fail_age) pairs, "
                    f"got {entry!r}"
                )
            bank, fail_age = entry
            if int(bank) < 0:
                raise ConfigError(f"bank id cannot be negative: {bank}")
            if float(fail_age) < 0:
                raise ConfigError(f"failure age cannot be negative: {fail_age}")

    @property
    def active(self) -> bool:
        """True when this configuration injects any fault at all."""
        return (
            self.age_fraction > 0
            or self.transient_rate > 0
            or bool(self.failed_banks())
        )

    def failed_banks(self) -> frozenset[int]:
        """Banks whose scheduled whole-bank failure has already struck."""
        return frozenset(
            int(bank)
            for bank, fail_age in self.bank_failures
            if self.age_fraction >= float(fail_age)
        )


@dataclass(frozen=True)
class TlbConfig:
    """Enhanced-TLB geometry (Section IV-C / Figure 10)."""

    entries: int = 64
    assoc: int = 8
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries % self.assoc:
            raise ConfigError("TLB entries must be a multiple of associativity")
        if not is_power_of_two(self.entries // self.assoc):
            raise ConfigError("TLB set count must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of TLB sets."""
        return self.entries // self.assoc


@dataclass(frozen=True)
class CriticalityConfig:
    """Criticality-predictor parameters (Section IV-B).

    ``block_cycles`` is the minimum head-of-ROB stall that counts as
    "blocking": real commit engines absorb a few cycles of skew by
    committing at full width after a stall, so only stalls beyond a
    pipeline-refill's worth of cycles are architecturally visible.  This
    is what separates bandwidth-bound streams (many tiny stalls) from
    latency-bound chases (long stalls) — the distinction the paper's
    Figures 8/9 rely on (~50% of fetched blocks / LLC writes
    non-critical at the 3% threshold).
    """

    threshold_percent: float = 3.0
    table_entries: int = 4096
    block_cycles: float = 24.0

    def __post_init__(self) -> None:
        if not (0 < self.threshold_percent <= 100):
            raise ConfigError("criticality threshold must be in (0, 100]")
        if self.table_entries <= 0:
            raise ConfigError("CPT must have at least one entry")
        if self.block_cycles < 1:
            raise ConfigError("block threshold must be at least one cycle")


#: Mirrors ``repro.cache.replacement`` (kept literal to avoid an import
#: cycle — ``repro.cache`` consumes :class:`CacheConfig`).
_L3_REPLACEMENT_NAMES = ("lru", "random", "srrip", "clean-first")


@dataclass(frozen=True)
class SystemConfig:
    """Full Table I machine description."""

    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KIB, 4, 2, name="L1")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * KIB, 8, 5, name="L2")
    )
    l3_bank: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * MIB, 16, 100, name="L3-bank")
    )
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    reram: ReRamConfig = field(default_factory=ReRamConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    criticality: CriticalityConfig = field(default_factory=CriticalityConfig)
    rnuca_cluster_size: int = 4
    #: Extra cycles of every Naive-scheme LLC access: a 32 MB LLC needs a
    #: ~512k-entry directory whose lookup serialises the access path —
    #: one of the two reasons the paper calls the oracle impractical.
    naive_directory_penalty: int = 200
    #: Replacement policy of every L3 bank (see ``repro.cache.replacement``).
    l3_replacement: str = "lru"
    #: Uniform per-set way limit applied to every L3 bank (``None`` uses
    #: the full associativity).  Models a capacity-throttled LLC, the knob
    #: the design-space search sweeps against wear/energy.
    l3_way_limit: int | None = None

    def __post_init__(self) -> None:
        if self.num_cores != self.noc.num_nodes:
            raise ConfigError(
                f"noc.mesh_cols*mesh_rows: Table I systems pair one core with "
                f"one bank per mesh node: {self.num_cores} cores vs "
                f"{self.noc.mesh_cols}x{self.noc.mesh_rows}="
                f"{self.noc.num_nodes} nodes"
            )
        if not is_power_of_two(self.num_cores):
            raise ConfigError("num_cores: core count must be a power of two")
        if not is_power_of_two(self.rnuca_cluster_size):
            raise ConfigError(
                "rnuca_cluster_size: R-NUCA cluster size must be a power of two"
            )
        if self.rnuca_cluster_size > self.num_cores:
            raise ConfigError(
                f"rnuca_cluster_size: cluster ({self.rnuca_cluster_size}) "
                f"cannot exceed the bank count ({self.num_banks})"
            )
        if self.num_banks % self.rnuca_cluster_size:
            raise ConfigError(
                f"rnuca_cluster_size: cluster size "
                f"({self.rnuca_cluster_size}) must divide the bank count "
                f"({self.num_banks})"
            )
        if self.naive_directory_penalty < 0:
            raise ConfigError(
                "naive_directory_penalty: directory penalty cannot be negative"
            )
        if self.l3_replacement not in _L3_REPLACEMENT_NAMES:
            raise ConfigError(
                f"l3_replacement: unknown policy {self.l3_replacement!r}; "
                f"known: {_L3_REPLACEMENT_NAMES}"
            )
        if self.l3_way_limit is not None:
            if not (1 <= self.l3_way_limit <= self.l3_bank.assoc):
                raise ConfigError(
                    f"l3_way_limit: way limit ({self.l3_way_limit}) must be "
                    f"in [1, l3_bank.assoc={self.l3_bank.assoc}]"
                )
            if self.l3_replacement != "lru":
                raise ConfigError(
                    "l3_way_limit: way limits require l3_replacement='lru' "
                    f"(got {self.l3_replacement!r})"
                )
        line = self.l1.line_bytes
        if not (line == self.l2.line_bytes == self.l3_bank.line_bytes):
            raise ConfigError("l1/l2/l3_bank.line_bytes: all cache levels "
                              "must share one line size")

    @property
    def num_banks(self) -> int:
        """Number of L3 banks (one per core in Table I)."""
        return self.num_cores

    @property
    def l3_total_bytes(self) -> int:
        """Aggregate L3 capacity."""
        return self.l3_bank.size_bytes * self.num_banks

    def describe(self) -> str:
        """Render the configuration as a Table I-style text block."""
        rows = [
            ("Cores", f"{self.num_cores} cores @ {self.core.clock_hz / GHZ:.1f}GHz, "
                      f"out-of-order"),
            ("ROB entries", str(self.core.rob_entries)),
            ("NoC", f"{self.noc.mesh_cols}x{self.noc.mesh_rows} Mesh"),
            ("L1I/L1D Cache", f"{self.l1.size_bytes // KIB}KB, {self.l1.assoc}-way, "
                              f"{self.l1.latency}-cycle, {self.l1.line_bytes}B line"),
            ("L2 Cache", f"{self.l2.size_bytes // KIB}KB (private), "
                         f"{self.l2.assoc}-way, {self.l2.latency}-cycle"),
            ("L3 Cache", f"{self.l3_bank.size_bytes // MIB}MB per bank, "
                         f"{self.l3_total_bytes // MIB}MB total, "
                         f"{self.l3_bank.assoc}-way, {self.l3_bank.latency}-cycle"),
            ("Coherence", "directory MESI"),
            ("Memory", f"{self.memory.latency_cycles}-cycle fixed latency, "
                       f"{self.memory.bandwidth_lines_per_cycle} lines/cycle"),
            ("ReRAM endurance", f"{self.reram.cell_endurance:.0e} writes/cell"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def baseline_config(**overrides: object) -> SystemConfig:
    """The Table I machine; keyword overrides replace top-level fields."""
    return replace(SystemConfig(), **overrides) if overrides else SystemConfig()


def sensitivity_l2_128k() -> SystemConfig:
    """Section V-C variant: 128 KB private L2 (more L2 misses/writebacks)."""
    return replace(
        SystemConfig(), l2=CacheConfig(128 * KIB, 8, 5, name="L2")
    )


def sensitivity_l3_1m() -> SystemConfig:
    """Section V-C variant: 1 MB L3 banks (16 MB total, more L3 misses)."""
    return replace(
        SystemConfig(), l3_bank=CacheConfig(1 * MIB, 16, 100, name="L3-bank")
    )


def sensitivity_rob_168() -> SystemConfig:
    """Section V-C variant: 168-entry ROB (fewer head-of-ROB stalls)."""
    return replace(
        SystemConfig(), core=CoreConfig(rob_entries=168)
    )


def scaled_config(base: SystemConfig, *, cores: int) -> SystemConfig:
    """Shrink a configuration to ``cores`` cores (square-ish mesh).

    Used by tests and the quickstart example to build tiny but structurally
    complete systems (e.g. 4 cores on a 2x2 mesh).
    """
    if not is_power_of_two(cores):
        raise ConfigError("core count must be a power of two")
    cols = 1 << ((cores.bit_length() - 1 + 1) // 2)
    rows = cores // cols
    return replace(
        base,
        num_cores=cores,
        noc=replace(base.noc, mesh_cols=cols, mesh_rows=rows),
        rnuca_cluster_size=min(base.rnuca_cluster_size, cores),
    )


def config_as_dict(config: SystemConfig) -> dict:
    """Flatten a configuration into plain nested dicts (for reports)."""
    return dataclasses.asdict(config)


def _flatten_scalars(prefix: str, value: object, out: list) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            path = f"{prefix}.{key}" if prefix else str(key)
            _flatten_scalars(path, value[key], out)
    elif isinstance(value, (list, tuple)):
        for idx, item in enumerate(value):
            _flatten_scalars(f"{prefix}[{idx}]", item, out)
    else:
        out.append(prefix)
        out.append(value)


def full_signature(config: SystemConfig) -> tuple:
    """Every field of ``config`` as a flat ``(path, value, ...)`` tuple.

    Unlike :func:`repro.sim.calibrate.config_signature` (which covers only
    the fields stage 1 depends on, so per-app traces stay shared across
    LLC-scheme variations), this signature covers the *whole* machine and
    is what :class:`repro.jobs.spec.JobSpec` uses as cache/journal
    identity: two search points differing in any config field — cluster
    size, replacement policy, way limits, ReRAM timing — must never alias
    to the same cached stage-2 result.

    The tuple holds only JSON scalars (str/int/float/None) so it survives
    a JSON round-trip bit-identically, and it is memoized on the (frozen)
    config instance.
    """
    cached = getattr(config, "_full_signature", None)
    if cached is None:
        out: list = []
        _flatten_scalars("", config_as_dict(config), out)
        cached = tuple(out)
        object.__setattr__(config, "_full_signature", cached)
    return cached
