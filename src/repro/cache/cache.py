"""A write-back, write-allocate set-associative cache.

One class serves every level: the private L1s and L2s use
:meth:`Cache.access` directly, while the NUCA L3 controller drives the
lower-level :meth:`Cache.probe` / :meth:`Cache.allocate` pair because its
mapping policy — not the cache — decides which bank a line lives in.

Tags store the **full line address** (uniqueness is then trivial), and the
set index is ``(line >> index_shift) & (num_sets - 1)``.  The shift matters
for L3 banks: when S-NUCA picks the bank from the low line bits, those bits
are constant within a bank, so the bank indexes with ``index_shift =
log2(num_banks)`` to keep its sets balanced.  Because the tag is the whole
line address, lines placed in the same bank by *different* NUCA mappings
(Re-NUCA mixes two) can never alias.

Line state is a two-element mutable list ``[dirty, aux]`` stored as the
:class:`~repro.cache.lru.SetAssocArray` payload; ``aux`` is an opaque slot
the L3 uses to remember per-line criticality for write accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import SetAssocArray
from repro.common.errors import ConfigError, SimulationError
from repro.config import CacheConfig

_DIRTY = 0
_AUX = 1


@dataclass
class CacheStats:
    """Demand/refill accounting for one cache instance."""

    demand_reads: int = 0
    demand_writes: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    writebacks: int = 0
    clean_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.demand_reads + self.demand_writes

    @property
    def hit_rate(self) -> float:
        """Demand hit rate (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another instance's counters into this one."""
        for name in (
            "demand_reads",
            "demand_writes",
            "hits",
            "misses",
            "fills",
            "writebacks",
            "clean_evictions",
            "invalidations",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access or allocation."""

    hit: bool
    #: Line address evicted to make room, or None.
    victim_line: int | None = None
    #: True when the victim was dirty (a write-back leaves this cache).
    victim_dirty: bool = False
    #: The ``aux`` payload the victim carried (policy-specific).
    victim_aux: object = None
    #: False when an allocation was *skipped* because every frame of the
    #: target set is retired (fault degradation) — the line is not
    #: resident and the caller must serve it from the next level.
    filled: bool = True


class Cache:
    """Set-associative, write-back, write-allocate cache.

    Args:
        config: geometry/latency of this level.
        name: label used in error messages and reports.
        index_shift: low line-address bits skipped by set indexing (see
            module docstring).
    """

    def __init__(
        self,
        config: CacheConfig,
        name: str = "",
        *,
        index_shift: int = 0,
        replacement: str = "lru",
    ) -> None:
        if index_shift < 0:
            raise ConfigError("index_shift cannot be negative")
        from repro.cache.replacement import make_replacement

        self.config = config
        self.name = name or config.name
        self.index_shift = index_shift
        self.replacement = replacement
        self._policy = make_replacement(replacement)
        self.stats = CacheStats()
        self.num_sets = config.num_sets
        self._set_mask = self.num_sets - 1
        self._rotation = 0
        #: Per-set live-way limits (None = full associativity everywhere).
        self._way_limits: list[int] | None = None
        self._array = SetAssocArray(self.num_sets, config.assoc)

    # -- address helpers ---------------------------------------------------

    def set_of(self, line: int) -> int:
        """Set index of a line address (including any wear rotation)."""
        return ((line >> self.index_shift) + self._rotation) & self._set_mask

    @property
    def rotation(self) -> int:
        """Current set-index rotation offset (intra-bank wear levelling)."""
        return self._rotation

    def rotate_sets(self, step: int = 1) -> None:
        """Shift the line-to-set mapping by ``step`` sets.

        Physically rehouses every resident line under the new mapping
        (recency order within each new set follows the rehousing scan).
        This is the Start-Gap-style intra-bank wear-levelling primitive:
        hot lines stop camping on the same physical sets.

        Raises:
            ConfigError: with a non-LRU replacement policy (policy state
                is keyed by physical set and would be orphaned).
        """
        if self._policy is not None:
            raise ConfigError(
                f"{self.name}: set rotation requires the native LRU policy"
            )
        if self._way_limits is not None:
            raise ConfigError(
                f"{self.name}: set rotation with retired frames is unsupported"
            )
        if step % self.num_sets == 0:
            return
        entries = [
            (line, payload) for _s, line, payload in self._array.iter_all()
        ]
        self._rotation = (self._rotation + step) & self._set_mask
        self._array = SetAssocArray(self.num_sets, self.config.assoc)
        for line, payload in entries:
            self._array.insert(self.set_of(line), line, payload)

    # -- demand path ---------------------------------------------------------

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Demand read/write of ``line`` with write-allocate on miss."""
        if is_write:
            self.stats.demand_writes += 1
        else:
            self.stats.demand_reads += 1
        set_idx = self.set_of(line)
        entry = self._array.lookup(set_idx, line)
        if entry is not None:
            self.stats.hits += 1
            if self._policy is not None:
                self._policy.on_hit(set_idx, line)
            if is_write:
                entry[_DIRTY] = True
            return AccessResult(hit=True)
        self.stats.misses += 1
        return self._allocate(line, dirty=is_write)

    def probe(self, line: int, *, is_write: bool = False, touch: bool = True) -> bool:
        """Check for ``line`` without allocating on miss.

        A write probe marks the line dirty on hit.  Demand counters are
        updated; the NUCA controller pairs this with :meth:`allocate`.
        """
        if is_write:
            self.stats.demand_writes += 1
        else:
            self.stats.demand_reads += 1
        set_idx = self.set_of(line)
        entry = self._array.lookup(set_idx, line, touch=touch)
        if entry is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        if self._policy is not None and touch:
            self._policy.on_hit(set_idx, line)
        if is_write:
            entry[_DIRTY] = True
        return True

    def allocate(
        self, line: int, *, dirty: bool = False, aux: object = None
    ) -> AccessResult:
        """Fill ``line`` (it must not already be present)."""
        return self._allocate(line, dirty=dirty, aux=aux)

    def _allocate(self, line: int, *, dirty: bool, aux: object = None) -> AccessResult:
        set_idx = self.set_of(line)
        if self._way_limits is not None and self._way_limits[set_idx] <= 0:
            # Every frame of this set is retired: the fill is skipped
            # and the line stays non-resident.
            return AccessResult(hit=False, filled=False)
        self.stats.fills += 1
        if self._policy is None:
            victim = None
            if self._way_limits is not None:
                limit = self._way_limits[set_idx]
                if limit < self.config.assoc:
                    ways = self._array.ways(set_idx)
                    if len(ways) >= limit:
                        victim_tag = next(iter(ways))
                        victim_entry = self._array.invalidate(set_idx, victim_tag)
                        victim = (victim_tag, victim_entry)
            evicted = self._array.insert(set_idx, line, [dirty, aux])
            if victim is None:
                victim = evicted
        else:
            victim = None
            ways = self._array.ways(set_idx)
            if len(ways) >= self.config.assoc:
                victim_tag = self._policy.choose_victim(set_idx, ways)
                victim_entry = self._array.invalidate(set_idx, victim_tag)
                if victim_entry is None:
                    raise SimulationError(
                        f"{self.name}: {self.replacement} chose absent victim"
                    )
                self._policy.on_invalidate(set_idx, victim_tag)
                victim = (victim_tag, victim_entry)
            self._array.insert(set_idx, line, [dirty, aux])
            self._policy.on_insert(set_idx, line)
        if victim is None:
            return AccessResult(hit=False)
        victim_line, victim_entry = victim
        if victim_entry[_DIRTY]:
            self.stats.writebacks += 1
        else:
            self.stats.clean_evictions += 1
        return AccessResult(
            hit=False,
            victim_line=victim_line,
            victim_dirty=victim_entry[_DIRTY],
            victim_aux=victim_entry[_AUX],
        )

    # -- fault degradation ---------------------------------------------------

    def set_way_limits(self, limits) -> list[tuple[int, bool, object]]:
        """Retire frames: cap the live ways of each set (fault injection).

        ``limits`` is a per-set sequence of live-way counts in
        ``[0, assoc]`` (or None to restore full associativity).  Resident
        lines beyond a set's new limit are drained LRU-first and
        returned as ``(line, dirty, aux)`` tuples so the caller can
        write dirty data back and fix up policy metadata.

        Raises:
            ConfigError: with a non-LRU replacement policy (its state is
                keyed by physical way and cannot shrink), or for limits
                of the wrong length/range.
        """
        if limits is None:
            self._way_limits = None
            return []
        if self._policy is not None:
            raise ConfigError(
                f"{self.name}: way limits require the native LRU policy"
            )
        limits = [int(v) for v in limits]
        if len(limits) != self.num_sets:
            raise ConfigError(
                f"{self.name}: {len(limits)} way limits for {self.num_sets} sets"
            )
        if any(v < 0 or v > self.config.assoc for v in limits):
            raise ConfigError(
                f"{self.name}: way limits must be in [0, {self.config.assoc}]"
            )
        self._way_limits = limits
        drained: list[tuple[int, bool, object]] = []
        for set_idx, limit in enumerate(limits):
            ways = self._array.ways(set_idx)
            while len(ways) > limit:
                tag = next(iter(ways))
                entry = self._array.invalidate(set_idx, tag)
                self.stats.invalidations += 1
                drained.append((tag, bool(entry[_DIRTY]), entry[_AUX]))
        return drained

    def way_limit_of(self, set_idx: int) -> int:
        """Live ways of one set (full associativity when no faults)."""
        if self._way_limits is None:
            return self.config.assoc
        return self._way_limits[set_idx]

    def live_frames(self) -> int:
        """Usable line frames under the current way limits."""
        if self._way_limits is None:
            return self.num_sets * self.config.assoc
        return sum(self._way_limits)

    def drain(self) -> list[tuple[int, bool, object]]:
        """Drop every line, returning ``(line, dirty, aux)`` tuples.

        Like :meth:`flush` but preserves the ``aux`` payloads so mapping
        policies can clean up per-line metadata (used when a whole bank
        dies).  Dirty lines are counted as write-backs.
        """
        drained = []
        for _set_idx, line, entry in self._array.flush():
            if entry[_DIRTY]:
                self.stats.writebacks += 1
            drained.append((line, bool(entry[_DIRTY]), entry[_AUX]))
        return drained

    # -- maintenance ---------------------------------------------------------

    def contains(self, line: int) -> bool:
        """Presence check that does not perturb LRU order or stats."""
        return self._array.lookup(self.set_of(line), line, touch=False) is not None

    def is_dirty(self, line: int) -> bool:
        """True when the line is present and dirty."""
        entry = self._array.lookup(self.set_of(line), line, touch=False)
        return bool(entry is not None and entry[_DIRTY])

    def aux_of(self, line: int) -> object:
        """The ``aux`` payload of a resident line (None when absent)."""
        entry = self._array.lookup(self.set_of(line), line, touch=False)
        return None if entry is None else entry[_AUX]

    def set_aux(self, line: int, aux: object) -> None:
        """Replace the ``aux`` payload of a resident line."""
        entry = self._array.lookup(self.set_of(line), line, touch=False)
        if entry is None:
            raise SimulationError(f"{self.name}: set_aux on absent line {line:#x}")
        entry[_AUX] = aux

    def mark_dirty(self, line: int) -> None:
        """Mark a resident line dirty (coherence write-back absorption)."""
        entry = self._array.lookup(self.set_of(line), line, touch=False)
        if entry is None:
            raise SimulationError(f"{self.name}: mark_dirty on absent line {line:#x}")
        entry[_DIRTY] = True

    def invalidate(self, line: int) -> tuple[bool, bool]:
        """Remove ``line``; returns (was_present, was_dirty)."""
        set_idx = self.set_of(line)
        entry = self._array.invalidate(set_idx, line)
        if entry is None:
            return False, False
        if self._policy is not None:
            self._policy.on_invalidate(set_idx, line)
        self.stats.invalidations += 1
        return True, bool(entry[_DIRTY])

    def flush(self) -> list[tuple[int, bool]]:
        """Drop every line, returning ``(line, dirty)`` pairs.

        Dirty lines are counted as write-backs (they would stream to the
        next level in hardware).
        """
        drained = []
        for _set_idx, line, entry in self._array.flush():
            if entry[_DIRTY]:
                self.stats.writebacks += 1
            drained.append((line, bool(entry[_DIRTY])))
        return drained

    @property
    def has_way_limits(self) -> bool:
        """True when fault retirement has capped any set's live ways."""
        return self._way_limits is not None

    def iter_lines(self):
        """Yield ``(set_idx, line, dirty, aux)`` over all resident lines.

        Sets come in index order; within a set, lines come in LRU -> MRU
        order (the recency order native-LRU replacement consults).  Used
        by the replay kernel to snapshot a warmed bank into its array
        representation.
        """
        for set_idx, line, entry in self._array.iter_all():
            yield set_idx, line, bool(entry[_DIRTY]), entry[_AUX]

    def export_lines(
        self, *, lazy_entries: bool = False
    ) -> tuple[list[int], list[int], list[list]]:
        """Bulk counterpart of :meth:`iter_lines` (kernel snapshot path).

        Returns ``(counts, lines, entries)``: per-set line counts, every
        resident line address in set order (LRU -> MRU within a set) and
        the matching live ``[dirty, aux]`` state lists (an iterator over
        them when ``lazy_entries``; consume before mutating the cache).
        The entries are the cache's own mutable state — callers must
        treat them as read-only.
        """
        return self._array.bulk_export(lazy_payloads=lazy_entries)

    def set_views(self) -> list[dict[int, list]]:
        """The live per-set tag->state dicts (see ``SetAssocArray.set_views``).

        Lazy counterpart of :meth:`export_lines`'s entry column: the
        kernel keeps these views and resolves a line's ``[dirty, aux]``
        state positionally only on the rare eviction path instead of
        materialising half a million entries up front.  Read-only.
        """
        return self._array.set_views()

    def occupancy(self) -> int:
        """Valid lines currently resident."""
        return self._array.total_occupancy()

    def resident_lines(self) -> list[int]:
        """All resident line addresses (test/debug helper)."""
        return [line for _s, line, _e in self._array.iter_all()]
