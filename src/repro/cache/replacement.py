"""Pluggable replacement policies for :class:`~repro.cache.cache.Cache`.

True LRU (the default, and what the paper's gem5 configuration uses) is
implemented natively by the set dicts' insertion (= recency) order; this
module adds alternatives used by the ablation studies:

* ``random``   — deterministic pseudo-random victims (the classic cheap
  hardware baseline; an LCG keeps runs reproducible);
* ``srrip``    — 2-bit Static Re-Reference Interval Prediction (Jaleel et
  al., ISCA'10): scan-resistant, ages lines instead of strictly ordering
  them;
* ``clean-first`` — write-aware LRU: prefer evicting clean lines so dirty
  lines stay on chip longer and coalesce more writes before the (ReRAM-
  and memory-expensive) write-back happens.

A policy sees insertion/hit/invalidation events and is asked for a
victim tag when a set is full.  State lives in the policy (keyed by
``(set, tag)``), not in the cache payloads, so policies compose with any
payload layout.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.common.errors import ConfigError, SimulationError

_DIRTY = 0  # payload slot layout shared with repro.cache.cache


class ReplacementPolicy(abc.ABC):
    """Victim-selection strategy for one cache instance."""

    name: str = "?"

    def on_insert(self, set_idx: int, tag: int) -> None:
        """A line was filled."""

    def on_hit(self, set_idx: int, tag: int) -> None:
        """A resident line was touched."""

    def on_invalidate(self, set_idx: int, tag: int) -> None:
        """A line left the cache (eviction or invalidation)."""

    @abc.abstractmethod
    def choose_victim(self, set_idx: int, ways: dict[int, Any]) -> int:
        """Pick the victim tag from a full set (LRU->MRU iteration order)."""


class RandomReplacement(ReplacementPolicy):
    """Deterministic pseudo-random victim selection (LCG-driven)."""

    name = "random"

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        self._state = seed & 0xFFFFFFFF

    def choose_victim(self, set_idx: int, ways: dict[int, Any]) -> int:
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        index = self._state % len(ways)
        for i, tag in enumerate(ways):
            if i == index:
                return tag
        raise SimulationError("empty set has no victim")  # pragma: no cover


class SrripReplacement(ReplacementPolicy):
    """2-bit SRRIP: insert distant, promote on hit, age to find victims."""

    name = "srrip"

    #: Maximum re-reference prediction value (2 bits).
    MAX_RRPV = 3
    #: Insertion RRPV ("long re-reference interval").
    INSERT_RRPV = 2

    def __init__(self) -> None:
        self._rrpv: dict[tuple[int, int], int] = {}

    def on_insert(self, set_idx: int, tag: int) -> None:
        self._rrpv[(set_idx, tag)] = self.INSERT_RRPV

    def on_hit(self, set_idx: int, tag: int) -> None:
        self._rrpv[(set_idx, tag)] = 0

    def on_invalidate(self, set_idx: int, tag: int) -> None:
        self._rrpv.pop((set_idx, tag), None)

    def choose_victim(self, set_idx: int, ways: dict[int, Any]) -> int:
        while True:
            for tag in ways:  # LRU-first tie-break
                if self._rrpv.get((set_idx, tag), self.MAX_RRPV) >= self.MAX_RRPV:
                    return tag
            for tag in ways:  # age everyone and retry
                key = (set_idx, tag)
                self._rrpv[key] = min(self.MAX_RRPV, self._rrpv.get(key, 0) + 1)


class CleanFirstReplacement(ReplacementPolicy):
    """Write-aware LRU: evict the LRU *clean* line when one exists.

    Dirty victims cost a ReRAM/memory write-back; preferring clean
    victims lets dirty lines absorb more write hits before leaving.
    Falls back to plain LRU when the whole set is dirty.
    """

    name = "clean-first"

    def choose_victim(self, set_idx: int, ways: dict[int, Any]) -> int:
        for tag, payload in ways.items():  # LRU -> MRU
            if not payload[_DIRTY]:
                return tag
        return next(iter(ways))


#: Registry used by :class:`~repro.cache.cache.Cache`.
_POLICIES = {
    "random": RandomReplacement,
    "srrip": SrripReplacement,
    "clean-first": CleanFirstReplacement,
}


def make_replacement(name: str) -> ReplacementPolicy | None:
    """Instantiate a policy by name; None selects the native LRU path."""
    if name == "lru":
        return None
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; "
            f"known: ('lru', {', '.join(map(repr, _POLICIES))})"
        ) from None
