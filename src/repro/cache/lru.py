"""Raw set-associative tag array with true-LRU replacement.

This is the innermost data structure of the simulator — every memory
reference at every cache level lands here — so each set is a plain
``dict`` whose *insertion order* is the recency order: least-recently-
used first, most-recently-used last.  A hit re-inserts its tag (one
``pop`` + one store, both C-level hash operations), which moves it to
the end exactly like ``OrderedDict.move_to_end`` but keeps the sets as
ordinary dicts — whose C-level iteration is several times faster, which
is what makes whole-array snapshots (:meth:`SetAssocArray.bulk_export`,
the replay kernel's warm-state import) cheap.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Iterator

from repro.common.errors import ConfigError, SimulationError
from repro.common.units import is_power_of_two


class SetAssocArray:
    """``num_sets`` x ``assoc`` tag array mapping tag -> payload per set.

    The payload is opaque to the array (the :class:`~repro.cache.cache.Cache`
    stores a mutable per-line state list there).  All methods take the set
    index explicitly; address-to-set mapping is the caller's concern.
    """

    __slots__ = ("num_sets", "assoc", "_sets")

    def __init__(self, num_sets: int, assoc: int) -> None:
        if not is_power_of_two(num_sets):
            raise ConfigError(f"set count must be a power of two, got {num_sets}")
        if assoc <= 0:
            raise ConfigError(f"associativity must be positive, got {assoc}")
        self.num_sets = num_sets
        self.assoc = assoc
        self._sets: list[dict[int, Any]] = [dict() for _ in range(num_sets)]

    def lookup(self, set_idx: int, tag: int, *, touch: bool = True) -> Any | None:
        """Return the payload stored under ``tag`` or None on miss.

        ``touch`` promotes the line to most-recently-used (a probe that
        must not disturb recency — e.g. a coherence snoop — passes False).
        """
        ways = self._sets[set_idx]
        if touch:
            entry = ways.pop(tag, None)
            if entry is not None:
                ways[tag] = entry
            return entry
        return ways.get(tag)

    def insert(
        self, set_idx: int, tag: int, payload: Any
    ) -> tuple[int, Any] | None:
        """Insert ``tag`` as MRU; return the evicted ``(tag, payload)`` if any.

        Raises:
            SimulationError: if the tag is already present (caller must
                look up before inserting; double-insertion is a protocol
                bug, not a recoverable condition).
        """
        ways = self._sets[set_idx]
        if tag in ways:
            raise SimulationError(
                f"insert of tag {tag:#x} into set {set_idx} which already holds it"
            )
        victim: tuple[int, Any] | None = None
        if len(ways) >= self.assoc:
            lru_tag = next(iter(ways))
            victim = (lru_tag, ways.pop(lru_tag))
        ways[tag] = payload
        return victim

    def invalidate(self, set_idx: int, tag: int) -> Any | None:
        """Remove ``tag`` from the set, returning its payload (None if absent)."""
        return self._sets[set_idx].pop(tag, None)

    def victim_candidate(self, set_idx: int) -> tuple[int, Any] | None:
        """Peek at the LRU line of a full set without evicting it.

        Returns None while the set still has free ways.
        """
        ways = self._sets[set_idx]
        if len(ways) < self.assoc:
            return None
        tag = next(iter(ways))
        return tag, ways[tag]

    def occupancy(self, set_idx: int) -> int:
        """Number of valid lines currently in the set."""
        return len(self._sets[set_idx])

    def ways(self, set_idx: int) -> dict[int, Any]:
        """The live tag->payload mapping of one set, LRU->MRU order.

        Exposed for replacement policies (package-internal); mutating it
        directly bypasses the array's invariants — use lookup/insert/
        invalidate for that.
        """
        return self._sets[set_idx]

    def iter_set(self, set_idx: int) -> Iterator[tuple[int, Any]]:
        """Iterate ``(tag, payload)`` in LRU->MRU order."""
        return iter(self._sets[set_idx].items())

    def iter_all(self) -> Iterator[tuple[int, int, Any]]:
        """Iterate ``(set_idx, tag, payload)`` over the whole array."""
        for set_idx, ways in enumerate(self._sets):
            for tag, payload in ways.items():
                yield set_idx, tag, payload

    def bulk_export(
        self, *, lazy_payloads: bool = False
    ) -> tuple[list[int], list[int], Any]:
        """Whole-array snapshot as three flat columns (the kernel's bulk path).

        Returns ``(counts, tags, payloads)``: per-set occupancy, then all
        tags and their payloads concatenated in set order (LRU -> MRU
        within each set) — the same traversal as :meth:`iter_all`, but
        built entirely from C-level iterators so snapshotting a full LLC
        costs milliseconds instead of a per-line Python loop.  With
        ``lazy_payloads`` the payload column is a single-use iterator
        (valid only until the array is next mutated), sparing callers
        that stream-reduce it the cost of materialising half a million
        entries.
        """
        sets = self._sets
        payloads = chain.from_iterable(map(dict.values, sets))
        return (
            list(map(len, sets)),
            list(chain.from_iterable(sets)),
            payloads if lazy_payloads else list(payloads),
        )

    def set_views(self) -> list[dict[int, Any]]:
        """The live per-set dicts, in set order (package-internal).

        Bulk counterpart of :meth:`ways` for snapshot consumers that
        resolve payloads lazily (the replay kernel): ``views[s]`` is set
        ``s``'s tag->payload dict in LRU -> MRU order, valid until the
        array is next mutated.  Callers must treat the dicts as
        read-only.
        """
        return self._sets

    def total_occupancy(self) -> int:
        """Total valid lines across all sets."""
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> list[tuple[int, int, Any]]:
        """Invalidate everything, returning the drained lines."""
        drained = list(self.iter_all())
        for ways in self._sets:
            ways.clear()
        return drained
