"""Miss-status holding registers (MSHRs).

MSHRs bound a core's memory-level parallelism: a new primary miss needs a
free register, a miss to an already-outstanding line merges into the
existing register (a *secondary* miss), and a full file stalls the core.
The interval core model uses the file to decide how many long-latency
loads can overlap, which in turn shapes ROB-head stalls — the signal the
criticality predictor learns from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError, SimulationError


@dataclass
class MshrStats:
    """Allocation accounting for one MSHR file."""

    primary_misses: int = 0
    secondary_misses: int = 0
    stalls: int = 0


@dataclass
class MshrFile:
    """A fixed-capacity file of outstanding miss registers.

    Args:
        capacity: number of primary misses that can be in flight.
    """

    capacity: int
    stats: MshrStats = field(default_factory=MshrStats)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"MSHR capacity must be positive, got {self.capacity}")
        # line -> completion time (opaque to the file; the core model
        # stores its own bookkeeping value here).
        self._pending: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """True when a new primary miss would have to stall."""
        return len(self._pending) >= self.capacity

    def is_pending(self, line: int) -> bool:
        """True when ``line`` already has an in-flight miss."""
        return line in self._pending

    def allocate(self, line: int, completion: float) -> bool:
        """Try to register a miss for ``line``.

        Returns True if the miss was accepted (either a fresh register or
        a merge with an outstanding one); False when the file is full and
        the line is not already pending — the caller must stall.
        """
        if line in self._pending:
            self.stats.secondary_misses += 1
            return True
        if self.full:
            self.stats.stalls += 1
            return False
        self._pending[line] = completion
        self.stats.primary_misses += 1
        return True

    def completion_of(self, line: int) -> float:
        """Completion bookkeeping value of a pending line."""
        try:
            return self._pending[line]
        except KeyError:
            raise SimulationError(f"MSHR query for non-pending line {line:#x}") from None

    def release(self, line: int) -> None:
        """Retire the register for ``line`` (its data returned)."""
        if self._pending.pop(line, None) is None:
            raise SimulationError(f"MSHR release of non-pending line {line:#x}")

    def release_completed(self, now: float) -> int:
        """Retire every register whose completion time has passed.

        Returns the number retired; used by the core model to lazily
        drain the file instead of tracking per-miss events.
        """
        done = [line for line, t in self._pending.items() if t <= now]
        for line in done:
            del self._pending[line]
        return len(done)

    def earliest_completion(self) -> float:
        """Smallest completion time among pending misses.

        Raises:
            SimulationError: when the file is empty (a stall with nothing
                in flight would never wake up).
        """
        if not self._pending:
            raise SimulationError("MSHR earliest_completion on an empty file")
        return min(self._pending.values())

    def clear(self) -> None:
        """Drop all registers (simulation reset)."""
        self._pending.clear()
