"""SRAM/ReRAM cache substrate.

Building blocks:

* :mod:`repro.cache.lru` — a raw set-associative tag array with true-LRU
  replacement (the inner loop of every cache level).
* :mod:`repro.cache.cache` — a write-back, write-allocate cache with full
  hit/miss/eviction accounting, used for L1s, L2s and L3 banks.
* :mod:`repro.cache.mshr` — miss-status holding registers limiting
  memory-level parallelism.
* :mod:`repro.cache.coherence` — a directory-based MESI protocol.
* :mod:`repro.cache.hierarchy` — the per-core L1/L2 filtering pipeline
  that turns a CPU reference stream into an L3 reference stream.
"""

from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.cache.lru import SetAssocArray
from repro.cache.mshr import MshrFile

__all__ = ["AccessResult", "Cache", "CacheStats", "SetAssocArray", "MshrFile"]
