"""Directory-based MESI coherence protocol.

Table I specifies MESI over the mesh.  The multiprogrammed SPEC mixes of
the evaluation never actually share lines, so coherence influences the
paper's numbers only by being *correct*; this module provides that
correctness (and is exercised directly by the shared-workload example and
its tests).

The directory is home to every line (physically, distributed across L3
banks; the distribution does not change protocol behaviour, so one logical
directory object serves the system).  Per line it records the classic
three stable states:

* ``UNCACHED`` — no private copy exists,
* ``SHARED`` — one or more read-only copies (private state S, or E for a
  lone reader),
* ``MODIFIED`` — exactly one read-write copy (private state M).

Private caches see the full MESI state machine: a lone reader receives E
(and can silently upgrade to M on a write); additional readers demote the
line to S everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import SimulationError


class MesiState(enum.Enum):
    """Private-cache MESI state of one line in one core's cache."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


class DirState(enum.Enum):
    """Directory-side summary state of one line."""

    UNCACHED = "U"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class CoherenceStats:
    """Protocol event counters."""

    read_requests: int = 0
    write_requests: int = 0
    invalidations_sent: int = 0
    downgrades_sent: int = 0
    dirty_forwards: int = 0
    writebacks_received: int = 0
    silent_upgrades: int = 0


@dataclass(frozen=True)
class CoherenceReply:
    """Directory response to one request.

    Attributes:
        granted: MESI state granted to the requester.
        invalidated: cores whose copies were invalidated.
        downgraded: cores whose M/E copies were demoted to S.
        dirty_forward: True when the data came from another core's M copy
            (which also writes the line back toward the LLC).
    """

    granted: MesiState
    invalidated: tuple[int, ...] = ()
    downgraded: tuple[int, ...] = ()
    dirty_forward: bool = False


@dataclass
class _DirEntry:
    state: DirState = DirState.UNCACHED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None


class MesiDirectory:
    """The home directory plus the implied private-cache state machines.

    The directory is authoritative: private state is derived bookkeeping
    kept so invariants can be checked and queried
    (:meth:`private_state`).  Callers drive it with :meth:`read`,
    :meth:`write` and :meth:`evict` in program order per core.
    """

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise SimulationError("directory needs at least one core")
        self.num_cores = num_cores
        self.stats = CoherenceStats()
        self._lines: dict[int, _DirEntry] = {}
        # Derived per-core private states, line -> state (absent == I).
        self._private: list[dict[int, MesiState]] = [
            {} for _ in range(num_cores)
        ]

    # -- requests ------------------------------------------------------------

    def read(self, core: int, line: int) -> CoherenceReply:
        """Core ``core`` issues a read (GetS) for ``line``."""
        self._check_core(core)
        self.stats.read_requests += 1
        entry = self._lines.setdefault(line, _DirEntry())
        mine = self._private[core].get(line, MesiState.INVALID)
        if mine is not MesiState.INVALID:
            # Read hit on an existing copy: no directory transition.
            return CoherenceReply(granted=mine)

        if entry.state is DirState.UNCACHED:
            entry.state = DirState.SHARED
            entry.sharers = {core}
            self._private[core][line] = MesiState.EXCLUSIVE
            return CoherenceReply(granted=MesiState.EXCLUSIVE)

        if entry.state is DirState.SHARED:
            # Demote any E holder to S (it may have been a lone reader).
            downgraded = []
            for holder in entry.sharers:
                if self._private[holder].get(line) is MesiState.EXCLUSIVE:
                    self._private[holder][line] = MesiState.SHARED
                    downgraded.append(holder)
                    self.stats.downgrades_sent += 1
            entry.sharers.add(core)
            self._private[core][line] = MesiState.SHARED
            return CoherenceReply(granted=MesiState.SHARED, downgraded=tuple(downgraded))

        # MODIFIED: fetch from owner, demote owner to S, data is dirty.
        owner = entry.owner
        if owner is None:
            raise SimulationError(f"directory M state with no owner for {line:#x}")
        self._private[owner][line] = MesiState.SHARED
        self.stats.downgrades_sent += 1
        self.stats.dirty_forwards += 1
        entry.state = DirState.SHARED
        entry.sharers = {owner, core}
        entry.owner = None
        self._private[core][line] = MesiState.SHARED
        return CoherenceReply(
            granted=MesiState.SHARED, downgraded=(owner,), dirty_forward=True
        )

    def write(self, core: int, line: int) -> CoherenceReply:
        """Core ``core`` issues a write (GetX / upgrade) for ``line``."""
        self._check_core(core)
        self.stats.write_requests += 1
        entry = self._lines.setdefault(line, _DirEntry())
        mine = self._private[core].get(line, MesiState.INVALID)

        if mine is MesiState.MODIFIED:
            return CoherenceReply(granted=MesiState.MODIFIED)
        if mine is MesiState.EXCLUSIVE:
            # Silent E->M upgrade: no traffic, directory flips to M.
            self.stats.silent_upgrades += 1
            self._private[core][line] = MesiState.MODIFIED
            entry.state = DirState.MODIFIED
            entry.sharers = set()
            entry.owner = core
            return CoherenceReply(granted=MesiState.MODIFIED)

        invalidated: list[int] = []
        dirty_forward = False
        if entry.state is DirState.SHARED:
            for holder in entry.sharers:
                if holder != core:
                    self._private[holder].pop(line, None)
                    invalidated.append(holder)
                    self.stats.invalidations_sent += 1
        elif entry.state is DirState.MODIFIED:
            owner = entry.owner
            if owner is None:
                raise SimulationError(f"directory M state with no owner for {line:#x}")
            if owner != core:
                self._private[owner].pop(line, None)
                invalidated.append(owner)
                self.stats.invalidations_sent += 1
                self.stats.dirty_forwards += 1
                dirty_forward = True

        entry.state = DirState.MODIFIED
        entry.sharers = set()
        entry.owner = core
        self._private[core][line] = MesiState.MODIFIED
        return CoherenceReply(
            granted=MesiState.MODIFIED,
            invalidated=tuple(invalidated),
            dirty_forward=dirty_forward,
        )

    def evict(self, core: int, line: int) -> bool:
        """Core ``core`` evicts its copy of ``line``.

        Returns True when the eviction carried dirty data back to the LLC
        (the copy was M).  Silent eviction of S/E copies is modelled as a
        notifying eviction so the directory stays precise.
        """
        self._check_core(core)
        state = self._private[core].pop(line, MesiState.INVALID)
        if state is MesiState.INVALID:
            return False
        entry = self._lines.get(line)
        if entry is None:
            raise SimulationError(f"evict of directory-unknown line {line:#x}")
        dirty = state is MesiState.MODIFIED
        if dirty:
            self.stats.writebacks_received += 1
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.sharers = set()
        else:
            entry.sharers.discard(core)
            if not entry.sharers:
                entry.state = DirState.UNCACHED
        return dirty

    # -- queries -------------------------------------------------------------

    def private_state(self, core: int, line: int) -> MesiState:
        """MESI state of ``line`` in ``core``'s private hierarchy."""
        self._check_core(core)
        return self._private[core].get(line, MesiState.INVALID)

    def directory_state(self, line: int) -> DirState:
        """Directory summary state of ``line``."""
        entry = self._lines.get(line)
        return DirState.UNCACHED if entry is None else entry.state

    def sharers(self, line: int) -> frozenset[int]:
        """Cores currently holding a readable copy."""
        entry = self._lines.get(line)
        if entry is None:
            return frozenset()
        if entry.state is DirState.MODIFIED and entry.owner is not None:
            return frozenset({entry.owner})
        return frozenset(entry.sharers)

    def check_invariants(self) -> None:
        """Assert protocol invariants over every tracked line.

        Raises:
            SimulationError: on any violation (single-writer,
                writer-excludes-readers, directory/private agreement).
        """
        holders: dict[int, list[tuple[int, MesiState]]] = {}
        for core, lines in enumerate(self._private):
            for line, state in lines.items():
                holders.setdefault(line, []).append((core, state))
        for line, entry in self._lines.items():
            holding = holders.get(line, [])
            modified = [c for c, s in holding if s is MesiState.MODIFIED]
            exclusive = [c for c, s in holding if s is MesiState.EXCLUSIVE]
            shared = [c for c, s in holding if s is MesiState.SHARED]
            if len(modified) > 1:
                raise SimulationError(f"line {line:#x}: multiple M holders {modified}")
            if modified and (shared or exclusive):
                raise SimulationError(
                    f"line {line:#x}: M holder coexists with other copies"
                )
            if len(exclusive) > 1:
                raise SimulationError(f"line {line:#x}: multiple E holders")
            if exclusive and shared:
                raise SimulationError(f"line {line:#x}: E holder coexists with S")
            if entry.state is DirState.MODIFIED:
                if not modified or entry.owner != modified[0]:
                    raise SimulationError(
                        f"line {line:#x}: directory M disagrees with private state"
                    )
            elif entry.state is DirState.SHARED:
                if modified:
                    raise SimulationError(
                        f"line {line:#x}: directory S but private M exists"
                    )
                if set(entry.sharers) != set(c for c, _ in holding):
                    raise SimulationError(
                        f"line {line:#x}: sharer list out of sync"
                    )
            else:
                if holding:
                    raise SimulationError(
                        f"line {line:#x}: directory U but copies exist"
                    )

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.num_cores):
            raise SimulationError(f"core id {core} out of range")
