"""Synthetic application models standing in for SPEC CPU2006 traces.

The paper characterises each benchmark by four aggregate numbers
(Table II: WPKI, MPKI, L3 hit rate, single-core IPC) plus a criticality
mix (Figure 5).  :mod:`repro.trace.profiles` records those targets;
:mod:`repro.trace.synthetic` analytically inverts them into generator
parameters; :mod:`repro.trace.generator` produces the actual reference
stream as a numpy structured array; and :mod:`repro.trace.workloads`
builds the 10 sixteen-app mixes of the evaluation.
"""

from repro.trace.generator import TRACE_DTYPE, generate_trace
from repro.trace.profiles import (
    ALL_APPS,
    AppProfile,
    get_profile,
    intensity_class,
)
from repro.trace.synthetic import GeneratorParams, derive_params
from repro.trace.workloads import Workload, make_workloads

__all__ = [
    "TRACE_DTYPE",
    "generate_trace",
    "ALL_APPS",
    "AppProfile",
    "get_profile",
    "intensity_class",
    "GeneratorParams",
    "derive_params",
    "Workload",
    "make_workloads",
]
