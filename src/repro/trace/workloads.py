"""Multiprogrammed workload mixes (the paper's WL1..WL10).

Section V-A: 16-core workloads are formed "by randomly choosing
applications from the high write-intensive ones along with the medium-
and low-intensive ones", always pairing high write-intensity apps with
medium/low ones so bank wear-out imbalance can arise.  The exact mixes
are not published, so we draw them deterministically from the experiment
seed with the same construction rule, varying the high-intensity count
across workloads to get the paper's "varying memory intensities".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TraceError
from repro.common.rng import derive_rng
from repro.trace.profiles import ALL_APPS, AppProfile, apps_by_intensity, get_profile

#: Number of workloads in the evaluation.
NUM_WORKLOADS = 10


@dataclass(frozen=True)
class Workload:
    """One multiprogrammed mix: ``apps[i]`` runs on core ``i``."""

    name: str
    apps: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.apps:
            raise TraceError(f"{self.name}: empty workload")
        for app in self.apps:
            get_profile(app)  # validates the name

    @property
    def num_cores(self) -> int:
        """Core count this mix was built for."""
        return len(self.apps)

    def profiles(self) -> tuple[AppProfile, ...]:
        """Profiles in core order."""
        return tuple(get_profile(app) for app in self.apps)


def make_workloads(
    *,
    num_cores: int = 16,
    count: int = NUM_WORKLOADS,
    seed: int | None = None,
) -> list[Workload]:
    """Build ``count`` deterministic mixes for ``num_cores`` cores.

    Workload *k* places ``3 + k mod 6`` high-intensity apps (scaled for
    smaller systems) on randomly chosen cores and fills the rest with
    medium/low apps, so the set spans light to heavy aggregate write
    pressure, mirroring the paper's "10 workloads of varying memory
    intensities".
    """
    if num_cores <= 0:
        raise TraceError("workloads need at least one core")
    if count <= 0:
        raise TraceError("workload count must be positive")
    groups = apps_by_intensity()
    high = [p.name for p in groups["high"]]
    medlow = [p.name for p in groups["medium"] + groups["low"]]
    workloads = []
    for k in range(count):
        rng = derive_rng(seed, "workload", k)
        n_high = min(num_cores - 1, 3 + k % 6) if num_cores > 1 else 1
        n_high = max(1, round(n_high * num_cores / 16)) if num_cores < 16 else n_high
        picks = [str(a) for a in rng.choice(high, size=n_high, replace=True)]
        picks += [str(a) for a in rng.choice(medlow, size=num_cores - n_high, replace=True)]
        order = rng.permutation(num_cores)
        apps = tuple(picks[i] for i in order)
        workloads.append(Workload(name=f"WL{k + 1}", apps=apps))
    return workloads


def single_app_workload(app: str, *, num_cores: int = 1) -> Workload:
    """A characterisation mix: one app replicated on every core.

    With ``num_cores=1`` this is the Table II single-core setup.
    """
    get_profile(app)
    return Workload(name=f"solo-{app}", apps=(app,) * num_cores)


def all_profiles() -> tuple[AppProfile, ...]:
    """All Table II profiles (re-exported for experiment drivers)."""
    return ALL_APPS
