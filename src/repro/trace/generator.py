"""Vectorised synthetic-trace generation.

A trace is a numpy structured array (:data:`TRACE_DTYPE`) in program
order.  Each record is one memory instruction:

* ``gap``  — non-memory instructions committed since the previous record,
* ``pc``   — program counter id of this instruction,
* ``line`` — cache-line address touched,
* ``is_write`` — store (True) or load (False),
* ``dep``  — load depends on the previous ``dep`` load's data (pointer
  chase), so the core cannot overlap their latencies,
* ``kind`` — generating population (for tests/analysis only; the
  simulated hardware never sees it).

Generation is fully vectorised: population labels, addresses, PCs, gaps
and read-modify-write expansion are all drawn as numpy arrays; no
per-record Python work happens here.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import TraceError
from repro.trace.synthetic import (
    CHASE_BASE,
    CHASE_RES_BASE,
    HOT1_BASE,
    HOT2_BASE,
    MID_BASE,
    NOISE_PCS,
    PC_POOL,
    STORE_PCS,
    STREAM_BASE,
    GeneratorParams,
)

#: Program-order record layout (structure-of-arrays friendly).
TRACE_DTYPE = np.dtype(
    [
        ("gap", np.uint16),
        ("pc", np.uint32),
        ("line", np.int64),
        ("is_write", np.bool_),
        ("dep", np.bool_),
        ("kind", np.uint8),
    ]
)

#: ``kind`` codes.
KIND_HOT = 0
KIND_MID = 1
KIND_STREAM = 2
KIND_CHASE_MISS = 3
KIND_CHASE_HIT = 4

_POPULATIONS = ("hot", "mid", "stream", "chase_miss", "chase_hit")
_KIND_OF = {
    "hot": KIND_HOT,
    "mid": KIND_MID,
    "stream": KIND_STREAM,
    "chase_miss": KIND_CHASE_MISS,
    "chase_hit": KIND_CHASE_HIT,
}

# PC-space layout within one application: each population pool gets a
# disjoint range, then the shared "noise" pool, then store PCs.
_PC_BASES: dict[str, int] = {}
_next = 0
for _pop in _POPULATIONS:
    _PC_BASES[_pop] = _next
    _next += PC_POOL[_pop]
_PC_NOISE_BASE = _next
_next += NOISE_PCS
_PC_STORE_BASE = _next
#: PCs used per application (callers offset per-core PC spaces by this).
PCS_PER_APP = _PC_STORE_BASE + STORE_PCS


def _draw_gaps(rng: np.random.Generator, n: int, mean_gap: float) -> np.ndarray:
    """Geometric gaps with the requested mean, clipped to the dtype."""
    if mean_gap <= 0:
        return np.zeros(n, dtype=np.uint16)
    p = 1.0 / (mean_gap + 1.0)
    gaps = rng.geometric(p, size=n) - 1
    return np.minimum(gaps, np.iinfo(np.uint16).max).astype(np.uint16)


def generate_trace(
    params: GeneratorParams,
    n_bundles: int,
    rng: np.random.Generator,
    *,
    base_line: int = 0,
    stream_cursor: int = 0,
    mid_cursor: int = 0,
) -> np.ndarray:
    """Generate ``n_bundles`` memory-op bundles as a trace array.

    A bundle is one load, optionally followed by its read-modify-write
    store (for L3-bound populations, with probability
    ``params.write_fraction``), so the returned array can be up to twice
    ``n_bundles`` long.

    Args:
        params: resolved generator parameters for one application.
        n_bundles: number of primary memory operations to draw.
        rng: the component RNG (use :func:`repro.common.rng.derive_rng`).
        base_line: constant added to every line address — gives each core
            a disjoint address space in multiprogrammed runs.
        stream_cursor: starting offset of the sequential population, so a
            trace can be generated in chunks that continue the stream.
        mid_cursor: starting offset of the mid region's sequential scan.

    Returns:
        A :data:`TRACE_DTYPE` array in program order.
    """
    if n_bundles <= 0:
        raise TraceError(f"n_bundles must be positive, got {n_bundles}")

    rates = np.array(
        [
            params.hot_pki,
            params.mid_pki,
            params.stream_pki,
            params.chase_miss_pki,
            params.chase_hit_pki,
        ],
        dtype=np.float64,
    )
    probs = rates / rates.sum()
    kinds = rng.choice(5, size=n_bundles, p=probs).astype(np.uint8)

    lines = np.empty(n_bundles, dtype=np.int64)

    # hot: two-tier Zipf-ish reuse (L1-resident tier + L2-resident tier).
    hot_mask = kinds == KIND_HOT
    n_hot = int(hot_mask.sum())
    if n_hot:
        tier1 = rng.random(n_hot) < params.hot1_fraction
        hot_lines = np.where(
            tier1,
            HOT1_BASE + rng.integers(0, params.hot1_lines, size=n_hot),
            HOT2_BASE + rng.integers(0, params.hot2_lines, size=n_hot),
        )
        lines[hot_mask] = hot_lines

    # mid: sequential scan over the L3-resident region (L2-defeating
    # reuse distance; every touch hits the L3 once the region is warm).
    mid_mask = kinds == KIND_MID
    n_mid = int(mid_mask.sum())
    if n_mid:
        offsets = (mid_cursor + np.arange(n_mid, dtype=np.int64)) % params.mid_lines
        lines[mid_mask] = MID_BASE + offsets

    # stream: strictly sequential with a rolling cursor.
    stream_mask = kinds == KIND_STREAM
    n_stream = int(stream_mask.sum())
    if n_stream:
        offsets = (stream_cursor + np.arange(n_stream, dtype=np.int64)) % params.stream_lines
        lines[stream_mask] = STREAM_BASE + offsets

    # chase-miss: dependent uniform walk over the huge chase region.
    cmiss_mask = kinds == KIND_CHASE_MISS
    n_cmiss = int(cmiss_mask.sum())
    if n_cmiss:
        lines[cmiss_mask] = CHASE_BASE + rng.integers(0, params.chase_lines, size=n_cmiss)

    # chase-hit: dependent walk over the resident chase region with
    # log-uniform (Zipf-like) popularity — pointer chases revisit hot
    # nodes far more often than cold ones.  The skew is what lets a
    # policy's placement of a refetched line pay off (popular lines are
    # re-touched soon), and the region is disjoint from the scanned mid
    # region so a line's criticality is a stable property of its data.
    chit_mask = kinds == KIND_CHASE_HIT
    n_chit = int(chit_mask.sum())
    if n_chit:
        u = rng.random(n_chit)
        rank = np.floor(np.exp(u * np.log(params.chase_res_lines))).astype(np.int64) - 1
        rank = np.clip(rank, 0, params.chase_res_lines - 1)
        # Scatter popularity ranks over the region with an odd-multiplier
        # bijection: hot nodes of a real linked structure sit at arbitrary
        # addresses, not packed at the region base (which would pin their
        # wear onto a couple of S-NUCA banks).
        idx = (rank * 40503) % params.chase_res_lines
        lines[chit_mask] = CHASE_RES_BASE + idx

    # PCs: per-population pools, with a shared noisy pool mixed in.
    pcs = np.empty(n_bundles, dtype=np.uint32)
    for pop in _POPULATIONS:
        kind = _KIND_OF[pop]
        mask = kinds == kind
        count = int(mask.sum())
        if count:
            pcs[mask] = _PC_BASES[pop] + rng.integers(0, PC_POOL[pop], size=count)
    if params.pc_noise > 0:
        # Mixed-behaviour PCs: a fraction of the *L3-bound* loads issue
        # from a shared pool, so those PCs accumulate intermediate
        # ROB-block ratios — the reason predictor accuracy degrades
        # gradually with the threshold (Figure 7) instead of being
        # bimodal.  Hot loads stay out: an L1-resident load never blocks,
        # and folding them in would dilute every noisy PC below any
        # useful threshold.
        noisy = (rng.random(n_bundles) < params.pc_noise) & ~hot_mask
        n_noisy = int(noisy.sum())
        if n_noisy:
            pcs[noisy] = _PC_NOISE_BASE + rng.integers(0, NOISE_PCS, size=n_noisy)

    dep = (kinds == KIND_CHASE_MISS) | (kinds == KIND_CHASE_HIT)

    # Stores: hot stores in place; L3-bound loads get an RMW store record.
    is_write = np.zeros(n_bundles, dtype=np.bool_)
    if n_hot:
        hot_idx = np.flatnonzero(hot_mask)
        store_hot = rng.random(n_hot) < params.hot_store_fraction
        is_write[hot_idx[store_hot]] = True

    gaps = _draw_gaps(rng, n_bundles, params.mean_gap)

    l3_bound = ~hot_mask
    rmw = l3_bound & (rng.random(n_bundles) < params.write_fraction)
    n_rmw = int(rmw.sum())

    if n_rmw == 0:
        trace = np.empty(n_bundles, dtype=TRACE_DTYPE)
        trace["gap"] = gaps
        trace["pc"] = pcs
        trace["line"] = lines + base_line
        trace["is_write"] = is_write
        trace["dep"] = dep
        trace["kind"] = kinds
        return trace

    # Expand RMW bundles into load + store record pairs.
    repeats = np.ones(n_bundles, dtype=np.int64)
    repeats[rmw] = 2
    idx = np.repeat(np.arange(n_bundles), repeats)
    total = idx.size
    # Position of the second copy of each duplicated bundle.
    dup_second = np.zeros(total, dtype=np.bool_)
    dup_second[1:] = idx[1:] == idx[:-1]

    trace = np.empty(total, dtype=TRACE_DTYPE)
    trace["gap"] = gaps[idx]
    trace["gap"][dup_second] = 1  # the store trails its load closely
    trace["pc"] = pcs[idx]
    trace["pc"][dup_second] = _PC_STORE_BASE + (pcs[idx][dup_second] % STORE_PCS)
    trace["line"] = lines[idx] + base_line
    trace["is_write"] = is_write[idx]
    trace["is_write"][dup_second] = True
    trace["dep"] = dep[idx]
    trace["dep"][dup_second] = False  # stores retire via the store buffer
    trace["kind"] = kinds[idx]
    return trace


def bundles_for_instructions(params: GeneratorParams, n_instructions: int) -> int:
    """Bundle count that yields approximately ``n_instructions``.

    Instructions = memory records + gap instructions; with ``record_pki``
    records per kilo-instruction and the RMW expansion factor folded in,
    bundles ≈ instructions × bundle_pki / 1000.
    """
    if n_instructions <= 0:
        raise TraceError("instruction count must be positive")
    return max(1, int(round(n_instructions * params.bundle_pki / 1000.0)))


def trace_instruction_count(trace: np.ndarray) -> int:
    """Total instructions represented by a trace (records + gaps)."""
    return int(trace["gap"].sum(dtype=np.int64)) + len(trace)
