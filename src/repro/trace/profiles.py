"""Per-application behavioural targets (the paper's Table II).

Each :class:`AppProfile` carries the four measured aggregates from
Table II — last-level WPKI (write-backs per kilo-instruction), MPKI
(misses per kilo-instruction), L3 hit rate and single-core IPC — plus two
qualitative knobs that Table II cannot express but Figures 5/7/8 depend
on:

* ``chase_share`` — the fraction of the app's L3-filtered traffic that is
  *dependent* (pointer-chasing), i.e. loads whose latency cannot be hidden
  by memory-level parallelism.  Pointer-chasers (mcf, omnetpp, xalancbmk,
  astar) stall the ROB head on most misses; pure streamers (streamL, lbm,
  libquantum, milc, bwaves) almost never do.
* ``pc_noise`` — the fraction of memory operations issued from PCs that
  mix behaviours, which bounds how well any PC-indexed predictor can do
  (Figure 7's accuracy never reaches 100%).

The numbers are calibration *targets*; `tests/test_trace_calibration.py`
verifies the synthetic traces actually reproduce them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TraceError

#: Write-intensity class boundaries from Section V-A: WPKI + MPKI > 10 is
#: "high", between 1 and 10 "medium", below 1 "low".
HIGH_INTENSITY_MIN = 10.0
MEDIUM_INTENSITY_MIN = 1.0


@dataclass(frozen=True)
class AppProfile:
    """Behavioural targets for one SPEC CPU2006 application."""

    name: str
    wpki: float
    mpki: float
    hitrate: float
    ipc: float
    chase_share: float
    pc_noise: float

    def __post_init__(self) -> None:
        if self.wpki < 0 or self.mpki < 0:
            raise TraceError(f"{self.name}: negative WPKI/MPKI")
        if not (0.0 <= self.hitrate <= 1.0):
            raise TraceError(f"{self.name}: hit rate outside [0,1]")
        if self.ipc <= 0:
            raise TraceError(f"{self.name}: IPC must be positive")
        if not (0.0 <= self.chase_share <= 1.0):
            raise TraceError(f"{self.name}: chase share outside [0,1]")
        if not (0.0 <= self.pc_noise <= 1.0):
            raise TraceError(f"{self.name}: pc noise outside [0,1]")

    @property
    def write_intensity(self) -> float:
        """WPKI + MPKI, the paper's classification metric."""
        return self.wpki + self.mpki


def _p(name, wpki, mpki, hitrate, ipc, chase, noise) -> AppProfile:
    return AppProfile(name, wpki, mpki, hitrate, ipc, chase, noise)


#: Table II, column-for-column, plus the qualitative criticality mix.
#: Ordering follows Table II's three columns (high, medium, low intensity).
ALL_APPS: tuple[AppProfile, ...] = (
    # name         WPKI    MPKI   hit  IPC   chase  noise
    _p("mcf",       68.67, 55.29, 0.20, 0.07, 0.55, 0.20),
    _p("streamL",   36.25, 36.25, 0.00, 0.37, 0.05, 0.35),
    _p("lbm",       31.66, 31.46, 0.01, 0.53, 0.05, 0.35),
    _p("zeusmp",    18.57, 17.13, 0.08, 0.54, 0.15, 0.30),
    _p("bwaves",    14.01, 12.91, 0.08, 0.59, 0.10, 0.35),
    _p("libquantum",11.67, 11.64, 0.00, 0.34, 0.05, 0.35),
    _p("milc",      11.31, 11.28, 0.00, 0.71, 0.08, 0.35),
    _p("omnetpp",   16.22,  0.61, 0.96, 0.78, 0.60, 0.15),
    _p("xalancbmk", 13.17,  0.76, 0.94, 0.89, 0.55, 0.15),
    _p("leslie3d",   5.24,  4.86, 0.07, 1.33, 0.15, 0.35),
    _p("bzip2",      2.89,  0.69, 0.76, 1.63, 0.40, 0.20),
    _p("gromacs",    1.85,  0.61, 0.67, 1.61, 0.25, 0.20),
    _p("hmmer",      2.20,  0.13, 0.94, 2.61, 0.20, 0.15),
    _p("soplex",     1.27,  0.25, 0.80, 0.94, 0.45, 0.15),
    _p("h264ref",    1.09,  0.08, 0.93, 2.00, 0.25, 0.15),
    _p("sjeng",      0.52,  0.32, 0.41, 1.16, 0.50, 0.20),
    _p("sphinx3",    0.30,  0.30, 0.06, 1.96, 0.20, 0.30),
    _p("dealII",     0.33,  0.12, 0.65, 2.27, 0.45, 0.20),
    _p("astar",      0.24,  0.12, 0.54, 2.08, 0.60, 0.20),
    _p("povray",     0.18,  0.04, 0.79, 1.57, 0.30, 0.15),
    _p("namd",       0.04,  0.05, 0.21, 2.34, 0.20, 0.15),
    _p("GemsFDTD",   0.00,  0.01, 0.00, 1.81, 0.10, 0.10),
)

_BY_NAME = {profile.name: profile for profile in ALL_APPS}

#: The eight applications the paper uses for the criticality-predictor
#: studies (Figures 7, 8 and 9).
CRITICALITY_STUDY_APPS: tuple[str, ...] = (
    "mcf",
    "GemsFDTD",
    "lbm",
    "milc",
    "astar",
    "bwaves",
    "bzip2",
    "leslie3d",
)


def get_profile(name: str) -> AppProfile:
    """Look up a Table II application by name.

    Raises:
        TraceError: for unknown application names (listing the known ones,
            since a typo here usually means a workload file is stale).
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise TraceError(f"unknown application {name!r}; known: {known}") from None


def intensity_class(profile: AppProfile) -> str:
    """Classify an app as ``"high"``/``"medium"``/``"low"`` write intensity.

    Section V-A: the sum of WPKI and MPKI > 10 is high, 1..10 medium,
    < 1 low.
    """
    total = profile.write_intensity
    if total > HIGH_INTENSITY_MIN:
        return "high"
    if total >= MEDIUM_INTENSITY_MIN:
        return "medium"
    return "low"


def apps_by_intensity() -> dict[str, list[AppProfile]]:
    """Group all Table II apps by intensity class."""
    groups: dict[str, list[AppProfile]] = {"high": [], "medium": [], "low": []}
    for profile in ALL_APPS:
        groups[intensity_class(profile)].append(profile)
    return groups
