"""Analytic inversion: Table II targets -> trace-generator parameters.

The synthetic workload model composes five access populations, chosen so
that each Table II aggregate is controlled by one knob:

===========  ==========================  =================================
population   address pattern             hierarchy behaviour
===========  ==========================  =================================
hot          Zipf-ish over a small set   L1/L2 hits (IPC base, no L3 role)
mid          uniform over ~1.5 MB        L2 miss, L3 hit (hit-rate target)
stream       sequential over 64 MB       L2 miss, L3 miss, overlappable
chase-miss   dependent walk over 64 MB   L2 miss, L3 miss, ROB-blocking
chase-hit    dependent walk over mid     L2 miss, L3 hit, mildly blocking
===========  ==========================  =================================

MPKI fixes the (stream + chase-miss) rate, the L3 hit rate fixes the
(mid + chase-hit) rate, WPKI fixes the read-modify-write probability of
L3-bound populations (a dirtied L2 line becomes one write-back), and the
profile's ``chase_share`` splits each of those between the independent
and dependent population.  Small closed-form corrections account for mid
lines that are still L2-resident when re-touched and for chase-miss lines
that happen to hit the L3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TraceError
from repro.config import SystemConfig
from repro.trace.profiles import AppProfile

#: Total memory operations (bundles) per kilo-instruction before RMW
#: expansion.  SPEC integer/float codes average roughly 30-40% memory
#: instructions; 300 APKI leaves room for the L3-bound populations of
#: even the most intensive app (mcf needs ~69 PKI at the L3).
DEFAULT_APKI_TOTAL = 300.0

#: Fraction of hot accesses that are stores (dirties L1/L2-resident lines
#: without producing L3 traffic).
HOT_STORE_FRACTION = 0.30

#: Hot-population split: ``hot1`` is L1-resident, ``hot2`` L2-resident.
HOT1_LINES = 256          # 16 KB
HOT2_LINES = 1536         # 96 KB
HOT1_FRACTION = 0.80

#: Streaming / chase-miss region: 2**20 lines = 64 MB, far beyond any L3
#: share, so every touch is a compulsory-like miss.
STREAM_LINES = 1 << 20
CHASE_LINES = 1 << 20

#: Chase-hit popularity is log-uniform; roughly this many of the hottest
#: lines stay resident in the private L1/L2 and never produce L3 traffic.
CHASE_HOT_RESIDENT_LINES = 512

#: Region base line offsets inside one application's private line space.
#: Bases are deliberately *not* all power-of-two aligned: the L3 banks
#: index sets with ``(line >> 4) & mask``, so two regions whose bases are
#: congruent mod (sets << 4) would stack into the same physical sets and
#: fabricate conflict misses no real page-allocated layout has.  The
#: chase region is staggered past the mid region's set range.
HOT1_BASE = 0x0000_0000
HOT2_BASE = 0x0001_0000
MID_BASE = 0x0010_0000
CHASE_RES_BASE = 0x0020_4B00
STREAM_BASE = 0x0100_0000
CHASE_BASE = 0x0200_0000

#: PC pool sizes per population (load PCs; stores draw from a disjoint
#: pool since the predictor only tracks loads).
PC_POOL = {"hot": 64, "mid": 32, "stream": 16, "chase_miss": 16, "chase_hit": 16}
NOISE_PCS = 24
STORE_PCS = 32


@dataclass(frozen=True)
class GeneratorParams:
    """Fully-resolved parameters for :func:`repro.trace.generator.generate_trace`."""

    app_name: str
    # Per-kilo-instruction rates of each bundle population.
    hot_pki: float
    mid_pki: float
    stream_pki: float
    chase_miss_pki: float
    chase_hit_pki: float
    # Probability that an L3-bound load is followed by a store to the
    # same line (read-modify-write) — the WPKI control.
    write_fraction: float
    hot_store_fraction: float
    # Region geometry (in lines).
    hot1_lines: int
    hot2_lines: int
    hot1_fraction: float
    mid_lines: int
    chase_res_lines: int
    stream_lines: int
    chase_lines: int
    # Predictor-confusability knob.
    pc_noise: float

    def __post_init__(self) -> None:
        for field_name in (
            "hot_pki",
            "mid_pki",
            "stream_pki",
            "chase_miss_pki",
            "chase_hit_pki",
        ):
            if getattr(self, field_name) < 0:
                raise TraceError(f"{self.app_name}: negative {field_name}")
        if not (0.0 <= self.write_fraction <= 1.0):
            raise TraceError(f"{self.app_name}: write fraction outside [0,1]")
        if self.bundle_pki <= 0:
            raise TraceError(f"{self.app_name}: no memory traffic at all")

    @property
    def bundle_pki(self) -> float:
        """Memory-op bundles per kilo-instruction (before RMW expansion)."""
        return (
            self.hot_pki
            + self.mid_pki
            + self.stream_pki
            + self.chase_miss_pki
            + self.chase_hit_pki
        )

    @property
    def l3_bound_pki(self) -> float:
        """Bundles that reach the L3 (everything but hot)."""
        return self.bundle_pki - self.hot_pki

    @property
    def record_pki(self) -> float:
        """Expected trace records per kilo-instruction (with RMW stores)."""
        return self.bundle_pki + self.write_fraction * self.l3_bound_pki

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between consecutive records."""
        non_mem = max(0.0, 1000.0 - self.record_pki)
        return non_mem / self.record_pki


def warm_sets(params: GeneratorParams, *, l2_lines: int = 4096) -> dict:
    """Steady-state cache residency to install before measurement.

    The paper warms its caches with 100 M instructions before measuring;
    at laptop-scale budgets the steady-state residency is installed
    directly instead:

    * ``l1`` — the L1-resident hot tier;
    * ``l2_clean`` — both hot tiers (clean in the L2);
    * ``l2_dirty_window`` — the most recently scanned tail of the mid
      region, which in steady state fills the L2's remaining capacity
      with lines awaiting eviction; ``l2_dirty_stride`` marks every
      k-th of them dirty so the first lap already produces write-backs
      at the app's WPKI rate (stride 0 = none dirty);
    * ``l3`` — hot tiers plus the whole mid region (the L3-resident
      working set).

    Streaming/chase-miss populations have no steady-state residency.
    """
    hot = params.hot1_lines + params.hot2_lines
    window = max(0, min(l2_lines - hot, params.mid_lines))
    if params.write_fraction > 0:
        stride = max(1, round(1.0 / params.write_fraction))
    else:
        stride = 0
    return {
        "l1": range(HOT1_BASE, HOT1_BASE + params.hot1_lines),
        "l2_clean": [
            range(HOT1_BASE, HOT1_BASE + params.hot1_lines),
            range(HOT2_BASE, HOT2_BASE + params.hot2_lines),
        ],
        "l2_dirty_window": range(
            MID_BASE + params.mid_lines - window, MID_BASE + params.mid_lines
        ),
        "l2_dirty_stride": stride,
        "l3": [
            range(HOT1_BASE, HOT1_BASE + params.hot1_lines),
            range(HOT2_BASE, HOT2_BASE + params.hot2_lines),
            range(MID_BASE, MID_BASE + params.mid_lines),
            range(CHASE_RES_BASE, CHASE_RES_BASE + params.chase_res_lines),
        ],
    }


def derive_params(
    profile: AppProfile,
    config: SystemConfig | None = None,
    *,
    apki_total: float = DEFAULT_APKI_TOTAL,
) -> GeneratorParams:
    """Invert one Table II row into generator parameters.

    ``config`` supplies the L2/L3 geometry used for the closed-form
    residency corrections; the Table I baseline is assumed when omitted.
    """
    if config is None:
        from repro.config import baseline_config

        config = baseline_config()

    line_bytes = config.l2.line_bytes
    l2_lines = config.l2.size_bytes // line_bytes
    l3_share_lines = config.l3_bank.size_bytes // line_bytes

    hitrate = min(profile.hitrate, 0.97)
    mpki = profile.mpki
    # Total L3 accesses implied by the miss count and hit rate.
    apki_l3 = mpki / (1.0 - hitrate) if mpki > 0 else 0.0
    hit_pki = apki_l3 - mpki

    # L3-resident working sets: the scanned (mid) region and the chased
    # (chase-res) region are disjoint, as array sweeps and linked
    # structures are in real programs — so a line's criticality is a
    # stable property of the data, not of which PC touched it last.
    # Together with the hot tiers they fill most of a 2 MB L3 share
    # (so the 1 MB sensitivity configuration starts missing, exactly as
    # in the paper) while each still defeats the 256 KB L2.
    mid_lines = max(3 * l2_lines, (9 * l3_share_lines) // 16)
    chase_res_lines = max(l2_lines, l3_share_lines // 4)

    chase = profile.chase_share
    stream_pki = (1.0 - chase) * mpki
    chase_miss_pki = chase * mpki
    mid_pki = (1.0 - chase) * hit_pki
    chase_hit_pki = chase * hit_pki

    # Correction 1: chase-hit draws are log-uniform over the mid region,
    # so the hottest few hundred lines live in the L1/L2 and their
    # touches never reach the L3.  Under log-uniform popularity the
    # L2-absorbed fraction is ln(resident)/ln(region); inflate the rate
    # so the L3 still sees the target hit traffic.  (The mid scan itself
    # has reuse distance == mid_lines and never hits the L2.)
    if chase_hit_pki > 0 and chase_res_lines > CHASE_HOT_RESIDENT_LINES:
        import math

        l2_resident_frac = min(
            0.85, math.log(CHASE_HOT_RESIDENT_LINES) / math.log(chase_res_lines)
        )
        chase_hit_pki /= 1.0 - l2_resident_frac

    # Correction 2: uniform chase-miss draws over 64 MB hit a 2 MB L3
    # share ~3% of the time; inflate so measured MPKI lands on target.
    l3_hit_frac_chase = min(0.5, l3_share_lines / CHASE_LINES)
    if chase_miss_pki > 0:
        chase_miss_pki /= 1.0 - l3_hit_frac_chase

    write_fraction = min(1.0, profile.wpki / apki_l3) if apki_l3 > 0 else 0.0

    hot_pki = max(20.0, apki_total - (mid_pki + stream_pki + chase_miss_pki + chase_hit_pki))

    return GeneratorParams(
        app_name=profile.name,
        hot_pki=hot_pki,
        mid_pki=mid_pki,
        stream_pki=stream_pki,
        chase_miss_pki=chase_miss_pki,
        chase_hit_pki=chase_hit_pki,
        write_fraction=write_fraction,
        hot_store_fraction=HOT_STORE_FRACTION,
        hot1_lines=HOT1_LINES,
        hot2_lines=HOT2_LINES,
        hot1_fraction=HOT1_FRACTION,
        mid_lines=mid_lines,
        chase_res_lines=chase_res_lines,
        stream_lines=STREAM_LINES,
        chase_lines=CHASE_LINES,
        pc_noise=profile.pc_noise,
    )
