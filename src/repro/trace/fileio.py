"""Trace serialization: save/load synthetic traces as ``.npz`` files.

The simulator is trace-driven; persisting generated traces lets users

* inspect/modify the reference stream with standard numpy tooling,
* re-run experiments on *identical* inputs across library versions,
* feed externally produced traces (any record array with the
  :data:`~repro.trace.generator.TRACE_DTYPE` fields) into the pipeline.

The format is a plain ``numpy.savez_compressed`` archive with one array
per record field plus a small JSON-encoded metadata header (app name,
generator parameters, library version) so a trace file is
self-describing.
"""

from __future__ import annotations

import dataclasses
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.common.errors import TraceError
from repro.trace.generator import TRACE_DTYPE
from repro.trace.synthetic import GeneratorParams

#: Format version written into every trace file.
FORMAT_VERSION = 1


def save_trace(
    path: str | Path,
    trace: np.ndarray,
    *,
    params: GeneratorParams | None = None,
    extra: dict | None = None,
) -> None:
    """Write a trace array (and its provenance) to ``path``.

    Raises:
        TraceError: when the array does not have the trace dtype fields.
    """
    _check_fields(trace)
    meta = {
        "format_version": FORMAT_VERSION,
        "records": int(len(trace)),
        "params": dataclasses.asdict(params) if params is not None else None,
        "extra": extra or {},
    }
    columns = {name: np.ascontiguousarray(trace[name]) for name in TRACE_DTYPE.names}
    np.savez_compressed(
        Path(path),
        _meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **columns,
    )


def load_trace(path: str | Path) -> tuple[np.ndarray, dict]:
    """Read a trace file; returns ``(trace_array, metadata)``.

    Every way a file can be bad surfaces as :class:`TraceError` — never a
    raw ``zipfile``/``KeyError``/decoder exception — so callers (and the
    CLI) can report "this trace file is unusable" uniformly:

    * unreadable, truncated, or non-zip bytes,
    * missing/corrupt metadata or column arrays,
    * unsupported ``format_version``,
    * column lengths disagreeing with the metadata record count.

    Raises:
        TraceError: for any malformed, truncated, or unsupported file.
    """
    try:
        with np.load(Path(path)) as archive:
            if "_meta" not in archive:
                raise TraceError(f"{path}: not a repro trace file (no metadata)")
            meta = json.loads(bytes(archive["_meta"]).decode("utf-8"))
            if not isinstance(meta, dict):
                raise TraceError(f"{path}: malformed trace metadata")
            if meta.get("format_version") != FORMAT_VERSION:
                raise TraceError(
                    f"{path}: unsupported trace format "
                    f"{meta.get('format_version')!r} (expected {FORMAT_VERSION})"
                )
            missing = [n for n in TRACE_DTYPE.names if n not in archive]
            if missing:
                raise TraceError(f"{path}: missing trace fields {missing}")
            length = meta.get("records")
            if not isinstance(length, int) or length < 0:
                raise TraceError(
                    f"{path}: metadata record count {length!r} is not a "
                    f"non-negative integer"
                )
            trace = np.empty(length, dtype=TRACE_DTYPE)
            for name in TRACE_DTYPE.names:
                column = archive[name]
                if len(column) != length:
                    raise TraceError(
                        f"{path}: field {name!r} has {len(column)} records, "
                        f"metadata says {length}"
                    )
                trace[name] = column
    except TraceError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError,
            json.JSONDecodeError, UnicodeDecodeError) as exc:
        # np.load raises BadZipFile/ValueError/OSError for truncated or
        # non-npz bytes, and member reads can fail mid-archive; json /
        # unicode errors mean the metadata blob itself is corrupt.
        raise TraceError(f"{path}: cannot read trace file: {exc}") from exc
    return trace, meta


def params_from_meta(meta: dict) -> GeneratorParams | None:
    """Rebuild the generator parameters recorded in a trace file."""
    raw = meta.get("params")
    if raw is None:
        return None
    return GeneratorParams(**raw)


def _check_fields(trace: np.ndarray) -> None:
    if trace.dtype.names is None:
        raise TraceError("trace must be a structured array")
    missing = [n for n in TRACE_DTYPE.names if n not in trace.dtype.names]
    if missing:
        raise TraceError(f"trace is missing fields {missing}")
