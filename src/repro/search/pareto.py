"""Pareto-frontier extraction and hypervolume over search objectives.

Objectives are named metrics with a fixed sense:

* ``ipc`` — multiprogram throughput, maximised;
* ``lifetime`` — worst bank lifetime in years, maximised;
* ``energy`` — total LLC energy in mJ, minimised;
* ``wear_cov`` — per-bank write imbalance, minimised.

A point *dominates* another when it is no worse in every objective and
strictly better in at least one.  The *frontier* is the set of
non-dominated points.  The *hypervolume* is the measure of objective
space dominated by the frontier relative to a reference point that is
worse than every evaluated point — a single scalar that grows whenever
the frontier advances, used for trend tracking across search runs
(exact sweep in 2-D, recursive slicing for higher dimensions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError

#: Known objective names and whether bigger is better.
OBJECTIVE_SENSES = {
    "ipc": True,
    "lifetime": True,
    "energy": False,
    "wear_cov": False,
}


@dataclass(frozen=True)
class Objective:
    """One scoring axis: a metric name plus its sense."""

    name: str
    maximize: bool

    def better(self, a: float, b: float) -> bool:
        """True when ``a`` beats ``b`` on this axis."""
        return a > b if self.maximize else a < b


def parse_objectives(names) -> tuple:
    """Resolve objective names against :data:`OBJECTIVE_SENSES`.

    Raises:
        ReproError: unknown name, duplicate, or fewer than one.
    """
    names = tuple(names)
    if not names:
        raise ReproError("need at least one objective")
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate objectives: {names}")
    objectives = []
    for name in names:
        try:
            objectives.append(Objective(name, OBJECTIVE_SENSES[name]))
        except KeyError:
            raise ReproError(
                f"unknown objective {name!r}; "
                f"known: {tuple(sorted(OBJECTIVE_SENSES))}"
            ) from None
    return tuple(objectives)


def dominates(a: dict, b: dict, objectives) -> bool:
    """True when metric map ``a`` Pareto-dominates ``b``."""
    better = False
    for obj in objectives:
        va, vb = a[obj.name], b[obj.name]
        if obj.better(vb, va):
            return False
        if obj.better(va, vb):
            better = True
    return better


def pareto_indices(points: list, objectives) -> list[int]:
    """Indices of the non-dominated points, in input order.

    ``points`` is a list of metric maps.  Duplicated metric vectors are
    all kept (they dominate nothing and nothing dominates them), so the
    result is stable under reordering of equals.
    """
    out = []
    for i, p in enumerate(points):
        if not any(
            dominates(q, p, objectives) for j, q in enumerate(points) if j != i
        ):
            out.append(i)
    return out


def default_reference(points: list, objectives) -> dict:
    """A reference dominated by every point: the per-axis worst, padded.

    The 10 % pad keeps boundary points from contributing zero volume.
    """
    if not points:
        raise ReproError("cannot derive a reference from zero points")
    ref = {}
    for obj in objectives:
        values = [float(p[obj.name]) for p in points]
        worst = min(values) if obj.maximize else max(values)
        span = (max(values) - min(values)) or abs(worst) or 1.0
        ref[obj.name] = worst - 0.1 * span if obj.maximize else worst + 0.1 * span
    return ref


def _gains(point: dict, reference: dict, objectives) -> tuple:
    """Distances from the reference, all axes converted to maximise."""
    out = []
    for obj in objectives:
        gain = (
            float(point[obj.name]) - float(reference[obj.name])
            if obj.maximize
            else float(reference[obj.name]) - float(point[obj.name])
        )
        out.append(max(0.0, gain))
    return tuple(out)


def _hv(points: list) -> float:
    """Hypervolume of the union of boxes ``[0, p]`` (recursive slicing)."""
    points = [p for p in points if all(c > 0.0 for c in p)]
    if not points:
        return 0.0
    if len(points[0]) == 1:
        return max(p[0] for p in points)
    # Slab sweep on the first coordinate, descending: the cross-section
    # between consecutive levels is the (d-1)-volume of everything at
    # least that tall.
    points.sort(key=lambda p: -p[0])
    volume = 0.0
    for i, point in enumerate(points):
        lower = points[i + 1][0] if i + 1 < len(points) else 0.0
        depth = point[0] - lower
        if depth <= 0.0:
            continue
        volume += depth * _hv([q[1:] for q in points[: i + 1]])
    return volume


def hypervolume(points: list, objectives, reference: dict | None = None) -> float:
    """Dominated hypervolume of ``points`` w.r.t. ``reference``.

    ``reference`` defaults to :func:`default_reference` over the same
    points; pass an explicit one when tracking trends across runs (the
    scalar is only comparable under a fixed reference).
    """
    if not points:
        return 0.0
    if reference is None:
        reference = default_reference(points, objectives)
    return _hv([_gains(p, reference, objectives) for p in points])
