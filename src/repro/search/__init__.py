"""Design-space exploration over NUCA/ReRAM configurations.

The paper evaluates one hand-picked Re-NUCA operating point; this
package turns the question it raises — how to trade IPC against
write-endurance lifetime (and energy, and wear balance) — into a search
problem over the full configuration space:

* :mod:`repro.search.space` — declarative :class:`SearchSpace` over
  config fields with a deterministic point → :class:`~repro.jobs.spec.JobSpec`
  encoder, so every evaluated point inherits content-addressed caching,
  journal resume, retries/quarantine and spans from the job engine;
* :mod:`repro.search.samplers` — grid, seeded-random and Halton-style
  low-discrepancy samplers plus a seeded local-search mutator;
* :mod:`repro.search.drivers` — a multi-fidelity successive-halving
  driver and a fixed-budget driver, both journaled and resumable;
* :mod:`repro.search.pareto` — non-dominated frontier extraction and a
  hypervolume-vs-reference scalar for trend tracking.

See ``docs/SEARCH.md`` for the full contract.
"""

from repro.search.drivers import (
    Evaluation,
    SearchJournal,
    SearchOutcome,
    run_search,
)
from repro.search.pareto import (
    OBJECTIVE_SENSES,
    Objective,
    dominates,
    hypervolume,
    pareto_indices,
    parse_objectives,
)
from repro.search.samplers import (
    grid_points,
    halton_points,
    mutate_point,
    random_points,
)
from repro.search.space import (
    ChoiceDimension,
    EncodedPoint,
    FloatDimension,
    IntDimension,
    SearchSpace,
    load_space,
    point_id_of,
    preset_space,
)

__all__ = [
    "ChoiceDimension",
    "EncodedPoint",
    "Evaluation",
    "FloatDimension",
    "IntDimension",
    "OBJECTIVE_SENSES",
    "Objective",
    "SearchJournal",
    "SearchOutcome",
    "SearchSpace",
    "dominates",
    "grid_points",
    "halton_points",
    "hypervolume",
    "load_space",
    "mutate_point",
    "pareto_indices",
    "parse_objectives",
    "point_id_of",
    "preset_space",
    "random_points",
    "run_search",
]
