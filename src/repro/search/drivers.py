"""Search drivers: multi-fidelity successive halving and fixed budgets.

A driver proposes candidate points (see :mod:`repro.search.samplers`),
evaluates them through :func:`repro.jobs.run_jobs` — one batch per
*rung*, so serial and parallel execution produce bit-identical results —
and extracts the Pareto frontier at the final budget.

**Successive halving** (the multi-fidelity driver): rung 0 evaluates
every candidate at the schedule's smallest instruction budget; each
following rung keeps the top ``promote`` fraction (scalarised over the
normalised objectives, point-id tie-break) and re-evaluates it at the
next budget.  Cheap low-fidelity rungs prune the space; only survivors
pay full price.

**Resume**: every completed (point, budget) evaluation is appended to a
:class:`SearchJournal` (fsync per record, torn-final-line tolerant —
the same contract as :class:`~repro.jobs.journal.SweepJournal`), and
each rung's simulations run under their own sweep journal next to it.
Re-running with ``resume=True`` replays finished evaluations from the
search journal and finished simulations from the rung journals, so a
SIGKILLed search re-simulates only the remainder.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigError, ReproError
from repro.config import SystemConfig, baseline_config
from repro.jobs.scheduler import run_jobs
from repro.obs.ledger import current_git_sha
from repro.search.pareto import (
    default_reference,
    hypervolume,
    pareto_indices,
    parse_objectives,
)
from repro.search.samplers import grid_points, halton_points, random_points
from repro.search.space import (
    EncodedPoint,
    SearchSpace,
    jobs_for_point,
    point_id_of,
)

#: Search-journal record layout version.
SEARCH_JOURNAL_FORMAT_VERSION = 1

#: Driver names accepted by :func:`run_search`.
DRIVERS = ("halving", "random", "grid")

#: Sampler names accepted by :func:`run_search`.
SAMPLERS = ("halton", "random", "grid")

#: Safety multiplier when filtering invalid corners out of a sampler
#: stream (a space could be mostly invalid; fail loudly past this).
_PROPOSE_OVERDRAW = 50


@dataclass
class Evaluation:
    """One completed (point, budget) measurement."""

    point_id: str
    values: dict
    scheme: str
    rung: int
    budget: int
    #: All objective metrics, whichever subset the search optimises:
    #: ``ipc`` (mean over workloads), ``lifetime`` (min), ``energy``
    #: (mean mJ), ``wear_cov`` (mean).
    metrics: dict
    #: True for the paper's Re-NUCA default, evaluated alongside the
    #: final rung as the plot's reference marker.
    reference: bool = False
    #: JobSpec fingerprints of the simulations folded into ``metrics``
    #: (one per workload, job order).  The linkage key into run ledgers:
    #: a ledger record with a matching fingerprint is the exact run that
    #: produced this measurement.  Empty for pre-linkage journals.
    fingerprints: tuple = ()

    def to_dict(self) -> dict:
        return {
            "point_id": self.point_id,
            "values": self.values,
            "scheme": self.scheme,
            "rung": self.rung,
            "budget": self.budget,
            "metrics": self.metrics,
            "reference": self.reference,
            "fingerprints": list(self.fingerprints),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Evaluation":
        try:
            return cls(
                point_id=str(data["point_id"]),
                values=dict(data["values"]),
                scheme=str(data["scheme"]),
                rung=int(data["rung"]),
                budget=int(data["budget"]),
                metrics={str(k): float(v) for k, v in data["metrics"].items()},
                reference=bool(data.get("reference", False)),
                fingerprints=tuple(
                    str(f) for f in data.get("fingerprints", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed evaluation payload: {exc}") from exc


class SearchJournal:
    """Append-only JSONL record of completed point evaluations.

    Keyed by ``(point_id, budget)`` — rung indices are derivable but a
    point promoted twice to the same budget (schedules with repeated
    budgets are rejected upstream) would be the same measurement.
    Shares :class:`~repro.jobs.journal.SweepJournal`'s robustness
    contract: fsync per record, torn final line ignored on read, earlier
    corruption and unknown versions raise.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    def load(self) -> dict:
        """Completed evaluations keyed ``(point_id, budget)``."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        except OSError as exc:
            raise ReproError(
                f"cannot read search journal {self.path}: {exc}"
            ) from exc
        out: dict = {}
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    # Torn final append from a killed search: that
                    # evaluation simply reruns (its simulations are in
                    # the rung journal anyway).
                    break
                raise ReproError(
                    f"{self.path}:{lineno}: malformed search record: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ReproError(
                    f"{self.path}:{lineno}: search record is not an object"
                )
            if record.get("v") != SEARCH_JOURNAL_FORMAT_VERSION:
                raise ReproError(
                    f"{self.path}:{lineno}: unsupported search journal "
                    f"format {record.get('v')!r} "
                    f"(expected {SEARCH_JOURNAL_FORMAT_VERSION})"
                )
            evaluation = Evaluation.from_dict(record)
            out[(evaluation.point_id, evaluation.budget)] = evaluation
        return out

    def open(self, *, truncate: bool = False) -> None:
        """Open for appending; ``truncate=True`` starts fresh."""
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(
                self.path, "w" if truncate else "a", encoding="utf-8"
            )
        except OSError as exc:
            raise ReproError(
                f"cannot open search journal {self.path}: {exc}"
            ) from exc

    def record(self, evaluation: Evaluation) -> None:
        """Append one evaluation (flushed and fsynced immediately)."""
        if self._fh is None:
            self.open()
        payload = {"v": SEARCH_JOURNAL_FORMAT_VERSION}
        payload.update(evaluation.to_dict())
        self._fh.write(json.dumps(payload) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SearchJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class SearchOutcome:
    """Everything one search run produced."""

    driver: str
    seed: int | None
    objectives: tuple
    budget_schedule: tuple
    workload_numbers: tuple
    evaluations: list = field(default_factory=list)
    #: Final-budget evaluations on the Pareto frontier, input order.
    frontier: list = field(default_factory=list)
    hypervolume: float = 0.0
    #: Reference used for the hypervolume scalar ({objective: value}).
    reference: dict = field(default_factory=dict)
    reference_point_id: str | None = None
    #: Engine accounting summed over rungs plus search-level counters.
    report: dict = field(default_factory=dict)
    space: dict = field(default_factory=dict)
    #: Provenance: commit the search ran at (None outside a checkout)
    #: and its wall-clock completion time — the keys the history layer
    #: orders frontier overlays by.
    git_sha: str | None = None
    created_at: float | None = None

    def final_evaluations(self) -> list:
        """Evaluations at the last budget (the frontier's candidates)."""
        last = self.budget_schedule[-1]
        return [e for e in self.evaluations if e.budget == last]

    def to_dict(self) -> dict:
        return {
            "format_version": 1,
            "driver": self.driver,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "budget_schedule": list(self.budget_schedule),
            "workload_numbers": list(self.workload_numbers),
            "evaluations": [e.to_dict() for e in self.evaluations],
            "frontier": [e.point_id for e in self.frontier],
            "hypervolume": self.hypervolume,
            "reference": self.reference,
            "reference_point_id": self.reference_point_id,
            "report": self.report,
            "space": self.space,
            "git_sha": self.git_sha,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchOutcome":
        try:
            if data.get("format_version") != 1:
                raise ReproError(
                    f"unsupported search outcome format "
                    f"{data.get('format_version')!r}"
                )
            evaluations = [Evaluation.from_dict(e) for e in data["evaluations"]]
            frontier_ids = set(data["frontier"])
            last = list(data["budget_schedule"])[-1]
            return cls(
                driver=str(data["driver"]),
                seed=None if data["seed"] is None else int(data["seed"]),
                objectives=tuple(data["objectives"]),
                budget_schedule=tuple(data["budget_schedule"]),
                workload_numbers=tuple(data["workload_numbers"]),
                evaluations=evaluations,
                frontier=[
                    e for e in evaluations
                    if e.budget == last and e.point_id in frontier_ids
                ],
                hypervolume=float(data["hypervolume"]),
                reference=dict(data["reference"]),
                reference_point_id=data.get("reference_point_id"),
                report=dict(data["report"]),
                space=dict(data.get("space", {})),
                git_sha=(
                    None if data.get("git_sha") is None
                    else str(data["git_sha"])
                ),
                created_at=(
                    None if data.get("created_at") is None
                    else float(data["created_at"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed search outcome: {exc}") from exc


def _objective_metrics(results) -> dict:
    """Fold one point's per-workload results into objective metrics."""
    n = len(results)
    return {
        "ipc": sum(r.ipc for r in results) / n,
        "lifetime": min(r.min_lifetime for r in results),
        "energy": sum(r.energy_mj for r in results) / n,
        "wear_cov": sum(r.wear_cov for r in results) / n,
    }


def _propose(
    space: SearchSpace,
    sampler: str,
    n_points: int,
    *,
    seed: int | None,
    base: SystemConfig,
) -> tuple[list, int]:
    """First ``n_points`` unique *valid* points of the sampler stream.

    Returns ``(encoded_points, invalid_count)``.  Invalid corners (the
    config layer rejects them at encode time) are skipped
    deterministically — the stream itself is a pure function of the
    seed, so every run skips the same corners.
    """
    if sampler == "grid":
        candidates = grid_points(space)
    elif sampler == "random":
        candidates = random_points(
            space, max(n_points, 1) * _PROPOSE_OVERDRAW, seed=seed
        )
    elif sampler == "halton":
        candidates = halton_points(
            space, max(n_points, 1) * _PROPOSE_OVERDRAW, seed=seed
        )
    else:
        raise ReproError(
            f"unknown sampler {sampler!r}; known: {SAMPLERS}"
        )
    encoded: list = []
    seen: set = set()
    invalid = 0
    for values in candidates:
        if len(encoded) >= n_points:
            break
        pid = point_id_of(values)
        if pid in seen:
            continue
        seen.add(pid)
        try:
            encoded.append(space.encode(values, base=base))
        except ConfigError:
            invalid += 1
    if not encoded:
        raise ReproError(
            "search space yielded no valid points "
            f"({invalid} invalid corners rejected)"
        )
    return encoded, invalid


def _promotion_rank(evaluations: list, objectives) -> list:
    """Evaluations sorted best-first by normalised scalar score.

    Each objective is min-max normalised over the rung (flipped for
    minimised ones); the score is the mean.  Ties break on point id so
    promotion is deterministic regardless of execution order.
    """
    spans = {}
    for obj in objectives:
        values = [float(e.metrics[obj.name]) for e in evaluations]
        lo, hi = min(values), max(values)
        spans[obj.name] = (lo, (hi - lo) or 1.0)

    def score(evaluation) -> float:
        total = 0.0
        for obj in objectives:
            lo, span = spans[obj.name]
            unit = (float(evaluation.metrics[obj.name]) - lo) / span
            total += unit if obj.maximize else 1.0 - unit
        return total / len(objectives)

    return sorted(evaluations, key=lambda e: (-score(e), e.point_id))


def _rung_journal_path(journal: SearchJournal | None, rung: int):
    if journal is None:
        return None
    path = journal.path
    return path.with_name(f"{path.stem}.rung{rung}{path.suffix or '.jsonl'}")


def run_search(
    space: SearchSpace,
    *,
    driver: str = "halving",
    sampler: str = "halton",
    n_points: int = 16,
    budget_schedule: tuple = (2000, 8000),
    objectives=("ipc", "lifetime"),
    workload_numbers: tuple = (1,),
    seed: int | None = 1,
    base: SystemConfig | None = None,
    promote: float = 0.5,
    include_reference: bool = True,
    reference_scheme: str = "Re-NUCA",
    # -- job-engine passthrough (see repro.jobs.run_jobs) --
    max_workers: int = 1,
    cache=None,
    journal: SearchJournal | str | Path | None = None,
    resume: bool = False,
    retries: int = 2,
    stage1=None,
    stage1_store=None,
    telemetry=None,
    progress=None,
    observer=None,
    ledger=None,
    job_timeout_s: float | None = None,
    spans=None,
) -> SearchOutcome:
    """Run one design-space search end to end.

    Deterministic by construction: candidates are a pure function of
    ``(space, sampler, n_points, seed)``, every rung is one
    :func:`~repro.jobs.run_jobs` batch whose results come back in job
    order, and promotion/frontier extraction are pure — so the evaluated
    point set and the frontier are identical at any ``max_workers``.

    Raises:
        ReproError: bad driver/sampler/schedule, or ``resume`` without a
            journal.
    """
    if driver not in DRIVERS:
        raise ReproError(f"unknown driver {driver!r}; known: {DRIVERS}")
    budget_schedule = tuple(int(b) for b in budget_schedule)
    if not budget_schedule or any(b <= 0 for b in budget_schedule):
        raise ReproError("budget schedule must be positive instruction counts")
    if len(set(budget_schedule)) != len(budget_schedule):
        raise ReproError("budget schedule entries must be distinct")
    if not (0.0 < promote <= 1.0):
        raise ReproError("promote fraction must be in (0, 1]")
    objectives = parse_objectives(objectives)
    workload_numbers = tuple(int(n) for n in workload_numbers)
    if base is None:
        base = baseline_config()
    if isinstance(journal, (str, Path)):
        journal = SearchJournal(journal)
    if resume and journal is None:
        raise ReproError("--resume needs a search journal path")

    if driver == "grid":
        sampler = "grid"
        n_points = min(n_points, space.cardinality()) if n_points else \
            space.cardinality()
    if driver != "halving":
        budget_schedule = (budget_schedule[-1],)

    candidates, invalid = _propose(
        space, sampler, n_points, seed=seed, base=base
    )

    reference_point = None
    if include_reference:
        ref_values = {"__reference__": reference_scheme}
        reference_point = EncodedPoint(
            point_id=point_id_of(ref_values),
            values=ref_values,
            config=base,
            scheme=reference_scheme,
            fault=None,
        )

    prior: dict = {}
    if journal is not None:
        if resume:
            prior = journal.load()
        journal.open(truncate=not resume)

    counters = {
        "points": len(candidates),
        "invalid_points": invalid,
        "evals_total": 0,
        "evals_resumed": 0,
        "jobs_total": 0,
        "jobs_executed": 0,
        "jobs_cache_hits": 0,
        "jobs_resumed": 0,
        "jobs_retries": 0,
        "jobs_failed": 0,
    }
    all_evaluations: list = []
    survivors = list(candidates)

    for rung, budget in enumerate(budget_schedule):
        is_final = rung == len(budget_schedule) - 1
        points = list(survivors)
        if is_final and reference_point is not None and \
                reference_point.point_id not in {p.point_id for p in points}:
            points.append(reference_point)

        pending: list = []
        rung_evals: dict = {}
        for point in points:
            key = (point.point_id, budget)
            if key in prior:
                cached = prior[key]
                cached.rung = rung
                cached.reference = (
                    reference_point is not None
                    and point.point_id == reference_point.point_id
                )
                rung_evals[point.point_id] = cached
                counters["evals_resumed"] += 1
            else:
                pending.append(point)

        if pending:
            # Distinct points can encode to the same experiment (the
            # reference point vs a sampled Re-NUCA default); the batch
            # is deduplicated by job fingerprint and both evaluations
            # read the shared result.
            jobs, index_of, slices, prints = [], {}, {}, {}
            for point in pending:
                batch = jobs_for_point(
                    point, workload_numbers,
                    seed=seed, n_instructions=budget,
                )
                indices = []
                fingerprints = []
                for job in batch:
                    fingerprint = job.spec.fingerprint()
                    if fingerprint not in index_of:
                        index_of[fingerprint] = len(jobs)
                        jobs.append(job)
                    indices.append(index_of[fingerprint])
                    fingerprints.append(fingerprint)
                slices[point.point_id] = indices
                prints[point.point_id] = tuple(fingerprints)
            results, report = run_jobs(
                jobs,
                max_workers=max_workers,
                cache=cache,
                journal=_rung_journal_path(journal, rung),
                resume=resume,
                retries=retries,
                stage1=stage1,
                stage1_store=stage1_store,
                telemetry=telemetry,
                progress=progress,
                observer=observer,
                ledger=ledger,
                job_timeout_s=job_timeout_s,
                spans=spans,
            )
            counters["jobs_total"] += report.total
            counters["jobs_executed"] += report.executed
            counters["jobs_cache_hits"] += report.cache_hits
            counters["jobs_resumed"] += report.resumed
            counters["jobs_retries"] += report.retries
            counters["jobs_failed"] += report.failed
            for point in pending:
                evaluation = Evaluation(
                    point_id=point.point_id,
                    values=point.values,
                    scheme=point.scheme,
                    rung=rung,
                    budget=budget,
                    metrics=_objective_metrics(
                        [results[i] for i in slices[point.point_id]]
                    ),
                    reference=(
                        reference_point is not None
                        and point.point_id == reference_point.point_id
                    ),
                    fingerprints=prints[point.point_id],
                )
                rung_evals[point.point_id] = evaluation
                if journal is not None:
                    journal.record(evaluation)

        ordered = [rung_evals[p.point_id] for p in points]
        counters["evals_total"] += len(ordered)
        all_evaluations.extend(ordered)

        if not is_final:
            ranked = _promotion_rank(
                [e for e in ordered if not e.reference], objectives
            )
            keep = max(1, int(len(ranked) * promote))
            kept_ids = {e.point_id for e in ranked[:keep]}
            survivors = [p for p in survivors if p.point_id in kept_ids]

    if journal is not None:
        journal.close()

    final = [
        e for e in all_evaluations if e.budget == budget_schedule[-1]
    ]
    metric_maps = [e.metrics for e in final]
    front_idx = pareto_indices(metric_maps, objectives)
    frontier = [final[i] for i in front_idx]
    reference = default_reference(metric_maps, objectives)
    volume = hypervolume(
        [final[i].metrics for i in front_idx], objectives, reference
    )

    return SearchOutcome(
        driver=driver,
        seed=seed,
        objectives=tuple(o.name for o in objectives),
        budget_schedule=budget_schedule,
        workload_numbers=workload_numbers,
        evaluations=all_evaluations,
        frontier=frontier,
        hypervolume=volume,
        reference=reference,
        reference_point_id=(
            reference_point.point_id if reference_point is not None else None
        ),
        report=counters,
        space=space.to_dict(),
        git_sha=current_git_sha(),
        created_at=time.time(),
    )
