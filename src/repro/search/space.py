"""Declarative search spaces over :class:`~repro.config.SystemConfig`.

A :class:`SearchSpace` is an ordered tuple of named dimensions.  Each
dimension name is either

* a dotted path into :class:`~repro.config.SystemConfig`
  (``rnuca_cluster_size``, ``criticality.threshold_percent``,
  ``l3_replacement``, ``l3_way_limit``, ``noc.hop_cycles``,
  ``reram.write_penalty_cycles``, ...),
* one of the special keys: ``scheme`` (the NUCA mapping policy),
  ``num_banks`` (rebuilds the machine via
  :func:`~repro.config.scaled_config`, which also resizes the mesh), or
  ``fault.<field>`` (builds the run's
  :class:`~repro.config.FaultConfig`).

A *point* is a plain ``{name: value}`` dict; :func:`SearchSpace.encode`
turns it into an :class:`EncodedPoint` carrying the fully validated
``SystemConfig`` — invalid corners (a sampler will generate them) die
right here with :class:`~repro.common.errors.ConfigError` naming the
offending field, never mid-simulation in a worker.  Encoding is
deterministic and the point's identity (:func:`point_id_of`) is a
content hash of its canonical JSON, so the same point is the same cache
entry everywhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigError, ReproError
from repro.config import FaultConfig, SystemConfig, baseline_config, scaled_config
from repro.jobs.scheduler import SweepJob
from repro.jobs.spec import JobSpec
from repro.nuca import POLICY_NAMES
from repro.trace.workloads import make_workloads

#: Space-file layout version.
SPACE_FORMAT_VERSION = 1

#: Scheme names a ``scheme`` dimension may take (D-NUCA is a valid
#: policy too, but it always runs on the reference replay path — see
#: ``kernel_supported`` — so it is opt-in, not part of the default set).
SCHEME_CHOICES = POLICY_NAMES + ("D-NUCA",)

#: Fault fields a ``fault.<field>`` dimension may set.
_FAULT_FIELDS = ("age_fraction", "transient_rate", "remap_penalty_cycles")


# -- dimensions ---------------------------------------------------------------


@dataclass(frozen=True)
class IntDimension:
    """Integer range ``[lo, hi]`` inclusive, stepped by ``step``."""

    name: str
    lo: int
    hi: int
    step: int = 1

    kind = "int"

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ReproError(f"dimension {self.name!r}: lo > hi")
        if self.step <= 0:
            raise ReproError(f"dimension {self.name!r}: step must be positive")

    def grid(self) -> list:
        """All values, in order."""
        return list(range(self.lo, self.hi + 1, self.step))

    def from_unit(self, u: float) -> int:
        """Map ``u`` in [0, 1) onto the grid."""
        values = self.grid()
        return values[min(len(values) - 1, int(u * len(values)))]

    def to_dict(self) -> dict:
        return {"kind": "int", "name": self.name, "lo": self.lo,
                "hi": self.hi, "step": self.step}


@dataclass(frozen=True)
class FloatDimension:
    """Float range ``[lo, hi]``; ``log=True`` samples geometrically.

    ``steps`` is the grid resolution used by the grid sampler (endpoints
    included); continuous samplers ignore it.
    """

    name: str
    lo: float
    hi: float
    steps: int = 5
    log: bool = False

    kind = "float"

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ReproError(f"dimension {self.name!r}: lo > hi")
        if self.steps < 2:
            raise ReproError(f"dimension {self.name!r}: need >= 2 grid steps")
        if self.log and self.lo <= 0:
            raise ReproError(
                f"dimension {self.name!r}: log scale needs lo > 0"
            )

    def grid(self) -> list:
        if self.hi == self.lo:
            return [self.lo]
        out = []
        for i in range(self.steps):
            out.append(self.from_unit(i / (self.steps - 1)))
        return out

    def from_unit(self, u: float) -> float:
        """Map ``u`` in [0, 1] onto the range (geometric when ``log``)."""
        u = min(1.0, max(0.0, u))
        if self.log:
            return float(self.lo * math.exp(u * math.log(self.hi / self.lo)))
        return float(self.lo + u * (self.hi - self.lo))

    def to_dict(self) -> dict:
        return {"kind": "float", "name": self.name, "lo": self.lo,
                "hi": self.hi, "steps": self.steps, "log": self.log}


@dataclass(frozen=True)
class ChoiceDimension:
    """Explicit value list (strings, ints, or ``None``)."""

    name: str
    choices: tuple

    kind = "choice"

    def __post_init__(self) -> None:
        if not self.choices:
            raise ReproError(f"dimension {self.name!r}: empty choice list")
        object.__setattr__(self, "choices", tuple(self.choices))

    def grid(self) -> list:
        return list(self.choices)

    def from_unit(self, u: float) -> object:
        return self.choices[min(len(self.choices) - 1,
                                int(u * len(self.choices)))]

    def to_dict(self) -> dict:
        return {"kind": "choice", "name": self.name,
                "choices": list(self.choices)}


_DIMENSION_KINDS = {
    "int": IntDimension,
    "float": FloatDimension,
    "choice": ChoiceDimension,
}


def _dimension_from_dict(data: dict) -> object:
    try:
        kind = data["kind"]
        cls = _DIMENSION_KINDS[kind]
    except KeyError as exc:
        raise ReproError(f"malformed dimension payload: {data!r}") from exc
    fields = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in data.items() if k in fields}
    if cls is ChoiceDimension and "choices" in kwargs:
        kwargs["choices"] = tuple(kwargs["choices"])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ReproError(f"malformed dimension payload: {exc}") from exc


# -- points -------------------------------------------------------------------


def point_id_of(values: dict) -> str:
    """Stable content id of one point (12 hex chars of SHA-256)."""
    canonical = json.dumps(values, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class EncodedPoint:
    """One validated search point: values plus the machine they describe."""

    point_id: str
    values: dict
    config: SystemConfig
    scheme: str
    fault: FaultConfig | None = None

    def label(self) -> str:
        """Short human-readable point name."""
        return f"{self.point_id}/{self.scheme}"


def _with_field(obj, path: str, parts: list[str], value):
    name = parts[0]
    if not any(f.name == name for f in dataclasses.fields(obj)):
        raise ConfigError(
            f"{path}: no such config field "
            f"(at {type(obj).__name__}.{name})"
        )
    if len(parts) == 1:
        return dataclasses.replace(obj, **{name: value})
    sub = getattr(obj, name)
    if not dataclasses.is_dataclass(sub):
        raise ConfigError(f"{path}: {name} is not a config section")
    return dataclasses.replace(
        obj, **{name: _with_field(sub, path, parts[1:], value)}
    )


# -- the space ----------------------------------------------------------------


@dataclass(frozen=True)
class SearchSpace:
    """An ordered, named set of dimensions (see the module docstring)."""

    dimensions: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise ReproError("search space has no dimensions")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate dimension names: {names}")
        for dim in self.dimensions:
            if dim.name == "scheme":
                bad = [c for c in dim.grid() if c not in SCHEME_CHOICES]
                if bad:
                    raise ReproError(
                        f"scheme dimension has unknown schemes {bad}; "
                        f"known: {SCHEME_CHOICES}"
                    )
            elif dim.name.startswith("fault."):
                field = dim.name.split(".", 1)[1]
                if field not in _FAULT_FIELDS:
                    raise ReproError(
                        f"dimension {dim.name!r}: fault field must be one "
                        f"of {_FAULT_FIELDS}"
                    )

    @property
    def names(self) -> tuple:
        """Dimension names in declaration order."""
        return tuple(d.name for d in self.dimensions)

    def cardinality(self) -> int:
        """Full-factorial grid size."""
        n = 1
        for dim in self.dimensions:
            n *= len(dim.grid())
        return n

    # -- encoding -------------------------------------------------------------

    def encode(
        self,
        values: dict,
        *,
        base: SystemConfig | None = None,
        default_scheme: str = "Re-NUCA",
    ) -> EncodedPoint:
        """Validate a point and build its machine configuration.

        Raises:
            ConfigError: the point describes an invalid machine (the
                message names the offending field).
            ReproError: the point does not match this space's dimensions.
        """
        if set(values) != set(self.names):
            raise ReproError(
                f"point keys {sorted(values)} do not match space "
                f"dimensions {sorted(self.names)}"
            )
        config = base if base is not None else baseline_config()
        scheme = default_scheme
        fault_kwargs: dict = {}
        # num_banks first: it rebuilds the mesh every other field
        # validates against.
        if "num_banks" in values:
            config = scaled_config(config, cores=int(values["num_banks"]))
        for name in self.names:
            value = values[name]
            if name == "num_banks":
                continue
            if name == "scheme":
                if value not in SCHEME_CHOICES:
                    raise ConfigError(f"scheme: unknown scheme {value!r}")
                scheme = str(value)
            elif name.startswith("fault."):
                fault_kwargs[name.split(".", 1)[1]] = value
            else:
                config = _with_field(config, name, name.split("."), value)
        fault = FaultConfig(**fault_kwargs) if fault_kwargs else None
        if fault is not None and not fault.active:
            fault = None
        return EncodedPoint(
            point_id=point_id_of(values),
            values=dict(values),
            config=config,
            scheme=scheme,
            fault=fault,
        )

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": SPACE_FORMAT_VERSION,
            "dimensions": [d.to_dict() for d in self.dimensions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        if (
            not isinstance(data, dict)
            or data.get("format_version") != SPACE_FORMAT_VERSION
        ):
            raise ReproError(
                f"unsupported search-space format "
                f"{data.get('format_version') if isinstance(data, dict) else data!r} "
                f"(expected {SPACE_FORMAT_VERSION})"
            )
        dims = data.get("dimensions")
        if not isinstance(dims, list) or not dims:
            raise ReproError("search-space payload has no dimensions")
        return cls(tuple(_dimension_from_dict(d) for d in dims))


def load_space(path: str | Path) -> SearchSpace:
    """Read a space JSON file (see :meth:`SearchSpace.to_dict`)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read search space {path}: {exc}") from exc
    return SearchSpace.from_dict(payload)


#: Built-in spaces, usable as ``repro search --space <preset>``.
_PRESETS = {
    # The headline NUCA trade-off space: scheme x cluster x criticality
    # threshold x replacement policy x way throttling.  Corners pairing
    # a way limit with a non-LRU policy are invalid by design (they
    # demonstrate spec-build-time validation).
    "nuca": lambda: SearchSpace((
        ChoiceDimension("scheme", POLICY_NAMES),
        ChoiceDimension("rnuca_cluster_size", (2, 4)),
        FloatDimension("criticality.threshold_percent", 1.0, 10.0, steps=4),
        ChoiceDimension("l3_replacement", ("lru", "srrip", "clean-first")),
        ChoiceDimension("l3_way_limit", (None, 8)),
    )),
    # A small scheme-only space for smoke tests and CI.
    "schemes": lambda: SearchSpace((
        ChoiceDimension("scheme", POLICY_NAMES),
        FloatDimension("criticality.threshold_percent", 1.0, 6.0, steps=3),
    )),
}


def preset_space(name: str) -> SearchSpace:
    """Resolve a named built-in space.

    Raises:
        ReproError: for an unknown preset name.
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown search-space preset {name!r}; "
            f"known: {tuple(sorted(_PRESETS))}"
        ) from None
    return factory()


# -- point -> jobs ------------------------------------------------------------

_WORKLOAD_CACHE: dict = {}


def workloads_for(num_cores: int, seed: int | None, count: int):
    """Deterministic workload list for one machine size (memoized)."""
    key = (num_cores, seed, count)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = make_workloads(
            num_cores=num_cores, seed=seed, count=count
        )
    return _WORKLOAD_CACHE[key]


def jobs_for_point(
    point: EncodedPoint,
    workload_numbers: tuple,
    *,
    seed: int | None,
    n_instructions: int,
) -> list[SweepJob]:
    """The :func:`~repro.jobs.scheduler.run_jobs` batch of one point.

    One job per workload number; each spec carries the point's own
    (full-signature) configuration, so caching, journal resume and
    quarantine apply per (point, workload, budget) with no extra
    machinery.
    """
    if not workload_numbers:
        raise ReproError("a point needs at least one workload")
    count = max(workload_numbers)
    workloads = workloads_for(point.config.num_cores, seed, count)
    jobs = []
    for number in workload_numbers:
        if not (1 <= number <= len(workloads)):
            raise ReproError(
                f"workload number {number} out of range 1..{len(workloads)}"
            )
        workload = workloads[number - 1]
        jobs.append(SweepJob(
            spec=JobSpec.for_run(
                workload, point.scheme, point.config,
                seed=seed, n_instructions=n_instructions,
                fault_config=point.fault,
            ),
            config=point.config,
        ))
    return jobs
