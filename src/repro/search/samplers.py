"""Point samplers for :class:`~repro.search.space.SearchSpace`.

All samplers are pure functions of ``(space, n, seed)`` — no global
randomness, no wall clock — so the same invocation always proposes the
same candidate list, which is what makes a search run bit-reproducible
across serial and parallel execution (the driver never re-samples).

* :func:`grid_points` — the full factorial grid, declaration order.
* :func:`random_points` — i.i.d. draws from a
  :func:`~repro.common.rng.derive_rng` stream.
* :func:`halton_points` — Halton low-discrepancy sequence (radical
  inverse in consecutive primes, one prime per dimension; no
  dependencies beyond stdlib).  Covers the space far more evenly than
  random draws at small ``n``.
* :func:`mutate_point` / :func:`evolve_points` — seeded local-search
  neighbourhood moves for evolutionary drivers.
"""

from __future__ import annotations

import itertools

from repro.common.errors import ReproError
from repro.common.rng import derive_rng
from repro.search.space import SearchSpace

#: First primes, one per dimension (spaces are small; extend on demand).
_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)

#: Leading Halton indices skipped (the sequence's early terms cluster).
_HALTON_SKIP = 20


def grid_points(space: SearchSpace) -> list[dict]:
    """Full factorial grid in declaration order (first dim outermost)."""
    axes = [dim.grid() for dim in space.dimensions]
    names = space.names
    return [
        dict(zip(names, combo)) for combo in itertools.product(*axes)
    ]


def random_points(space: SearchSpace, n: int, *, seed: int | None) -> list[dict]:
    """``n`` i.i.d. points from the seeded sampler stream."""
    if n <= 0:
        raise ReproError("sample count must be positive")
    rng = derive_rng(seed, "search", "random")
    out = []
    for _ in range(n):
        out.append({
            dim.name: dim.from_unit(float(rng.random()))
            for dim in space.dimensions
        })
    return out


def _radical_inverse(base: int, index: int) -> float:
    value, factor = 0.0, 1.0 / base
    while index:
        value += (index % base) * factor
        index //= base
        factor /= base
    return value


def halton_points(space: SearchSpace, n: int, *, seed: int | None = None) -> list[dict]:
    """``n`` Halton-sequence points; ``seed`` rotates the start index.

    The sequence itself is deterministic; the seed only offsets where in
    the stream sampling starts (scrambling-by-shift), so different seeds
    explore different-but-equally-uniform subsets.
    """
    if n <= 0:
        raise ReproError("sample count must be positive")
    if len(space.dimensions) > len(_PRIMES):
        raise ReproError(
            f"halton sampler supports up to {len(_PRIMES)} dimensions"
        )
    start = _HALTON_SKIP + (0 if seed is None else (seed % 1009) * 61)
    out = []
    for i in range(n):
        index = start + i
        out.append({
            dim.name: dim.from_unit(_radical_inverse(_PRIMES[d], index))
            for d, dim in enumerate(space.dimensions)
        })
    return out


def mutate_point(space: SearchSpace, values: dict, rng) -> dict:
    """One local move: re-draw a single randomly chosen dimension.

    Int dimensions step ±1 grid position, float dimensions jitter by up
    to a fifth of the range, choices re-draw uniformly; the mutated
    point always stays inside the space.
    """
    dims = space.dimensions
    dim = dims[int(rng.integers(len(dims)))]
    mutated = dict(values)
    grid = dim.grid()
    if dim.kind == "float":
        u = float(rng.random())
        # Jitter around the current value in unit space.
        span = dim.hi - dim.lo
        if span > 0 and not dim.log:
            current = (float(values[dim.name]) - dim.lo) / span
            u = min(1.0, max(0.0, current + (u - 0.5) * 0.4))
        mutated[dim.name] = dim.from_unit(u)
    elif dim.kind == "int":
        idx = grid.index(values[dim.name]) if values[dim.name] in grid else 0
        idx = max(0, min(len(grid) - 1, idx + (1 if rng.random() < 0.5 else -1)))
        mutated[dim.name] = grid[idx]
    else:
        mutated[dim.name] = grid[int(rng.integers(len(grid)))]
    return mutated


def evolve_points(
    space: SearchSpace,
    parents: list[dict],
    n: int,
    *,
    seed: int | None,
) -> list[dict]:
    """``n`` mutants of ``parents`` (round-robin), seeded and stable."""
    if not parents:
        raise ReproError("evolution needs at least one parent point")
    if n <= 0:
        raise ReproError("sample count must be positive")
    rng = derive_rng(seed, "search", "evolve")
    return [
        mutate_point(space, parents[i % len(parents)], rng)
        for i in range(n)
    ]
