"""High-level façade: one object that owns a full simulated machine.

:class:`System` bundles a configuration, a seed, the stage-1 cache and
the workload set behind a small task-oriented API — the entry point the
examples and notebooks use when they do not need the lower-level runner
knobs::

    system = System()                      # the Table I machine
    row = system.characterize("mcf")       # Table II columns
    result = system.run(0, "Re-NUCA")      # WL1 under Re-NUCA
    table = system.compare(0)              # all five schemes side by side
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.config import SystemConfig, baseline_config
from repro.cpu.core import Stage1Result
from repro.sim.metrics import WorkloadSchemeResult
from repro.sim.runner import DEFAULT_INSTRUCTIONS, Stage1Cache, run_workload
from repro.telemetry import Telemetry
from repro.trace.workloads import Workload, make_workloads

#: Scheme set used by :meth:`System.compare` when none is given.
DEFAULT_SCHEMES: tuple[str, ...] = (
    "S-NUCA", "R-NUCA", "Re-NUCA", "Private", "Naive",
)


class System:
    """A configured machine plus its memoised simulation state."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        seed: int | None = None,
        n_instructions: int = DEFAULT_INSTRUCTIONS,
    ) -> None:
        self.config = config or baseline_config()
        self.seed = seed
        self.n_instructions = n_instructions
        self.stage1 = Stage1Cache()
        self.workloads: list[Workload] = make_workloads(
            num_cores=self.config.num_cores, seed=seed
        )

    # -- workload resolution ----------------------------------------------------

    def workload(self, which: int | str | Workload) -> Workload:
        """Resolve an index (0-based), a name ("WL3"), or a Workload."""
        if isinstance(which, Workload):
            if which.num_cores != self.config.num_cores:
                raise ReproError(
                    f"workload {which.name} has {which.num_cores} apps; "
                    f"this system has {self.config.num_cores} cores"
                )
            return which
        if isinstance(which, int):
            if not (0 <= which < len(self.workloads)):
                raise ReproError(
                    f"workload index {which} out of range 0.."
                    f"{len(self.workloads) - 1}"
                )
            return self.workloads[which]
        for workload in self.workloads:
            if workload.name == which:
                return workload
        raise ReproError(f"no workload named {which!r}")

    # -- simulation entry points ---------------------------------------------------

    def characterize(self, app: str, *, n_instructions: int | None = None) -> Stage1Result:
        """Single-core Table II characterisation of one application."""
        return self.stage1.get(
            app,
            self.config,
            seed=self.seed,
            n_instructions=n_instructions or self.n_instructions,
        )

    def run(
        self,
        which: int | str | Workload,
        scheme: str,
        *,
        n_instructions: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> WorkloadSchemeResult:
        """One workload under one NUCA scheme.

        ``telemetry`` opts the run into observability: counters, event
        tracing, interval dumps and phase profiling (see
        ``docs/OBSERVABILITY.md``).
        """
        return run_workload(
            self.workload(which),
            scheme,
            self.config,
            seed=self.seed,
            n_instructions=n_instructions or self.n_instructions,
            stage1=self.stage1,
            telemetry=telemetry,
        )

    def compare(
        self,
        which: int | str | Workload,
        schemes: tuple[str, ...] = DEFAULT_SCHEMES,
        *,
        n_instructions: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> dict[str, WorkloadSchemeResult]:
        """One workload under several schemes (shared stage-1 state).

        A shared ``telemetry`` handle sees every scheme: counters
        accumulate over the comparison, gauges end up reflecting the
        last scheme run.  Use one handle per scheme for isolated series.
        """
        return {
            scheme: self.run(
                which, scheme, n_instructions=n_instructions,
                telemetry=telemetry,
            )
            for scheme in schemes
        }

    # -- convenience reductions ---------------------------------------------------------

    def summary(self, results: dict[str, WorkloadSchemeResult]) -> str:
        """Text table of a :meth:`compare` outcome."""
        from repro.experiments.report import format_table

        rows = []
        for scheme, result in results.items():
            writes = result.bank_writes
            cv = float(writes.std() / writes.mean()) if writes.mean() else 0.0
            rows.append(
                (scheme, result.ipc, result.min_lifetime, cv,
                 result.llc_fetch_hit_rate)
            )
        return format_table(
            ["scheme", "IPC", "min life [y]", "wear CV", "LLC hit"], rows
        )
