"""Persist evaluation results as JSON.

``MatrixResult`` objects hold everything the paper's figures need; this
module round-trips them to a documented JSON layout so that

* EXPERIMENTS.md numbers can be regenerated without re-simulating,
* long benchmark runs can be resumed/compared across machines,
* external tooling (plotting notebooks) can consume the results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.common.errors import ReproError
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.telemetry.intervals import IntervalSeries

#: Format version written into every result file.
FORMAT_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The content goes to a temporary file in the same directory first and
    is moved into place with :func:`os.replace`, so a reader never sees
    a truncated file and an interrupted writer never clobbers a previous
    good version.  Used by :func:`save_matrix` and the sweep engine's
    :class:`~repro.jobs.cache.ResultCache`.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def result_to_dict(result: WorkloadSchemeResult) -> dict:
    out = {
        "workload": result.workload,
        "scheme": result.scheme,
        "apps": list(result.apps),
        "per_core_ipc": result.per_core_ipc.tolist(),
        "per_core_instructions": result.per_core_instructions.tolist(),
        "per_core_cycles": result.per_core_cycles.tolist(),
        "bank_writes": result.bank_writes.tolist(),
        "bank_lifetimes": result.bank_lifetimes.tolist(),
        "elapsed_cycles": result.elapsed_cycles,
        "llc_fetch_hit_rate": result.llc_fetch_hit_rate,
        "llc_mean_fetch_latency": result.llc_mean_fetch_latency,
        "noc_mean_hops": result.noc_mean_hops,
        "critical_fill_fraction": result.critical_fill_fraction,
        "llc_fetches": result.llc_fetches,
        "llc_writebacks": result.llc_writebacks,
        "noc_total_hops": result.noc_total_hops,
        "energy_mj": result.energy_mj,
        "age_fraction": result.age_fraction,
        "effective_capacity": result.effective_capacity,
        "dead_banks": result.dead_banks,
        "remap_traffic": result.remap_traffic,
        "fills_skipped": result.fills_skipped,
        "transient_faults": result.transient_faults,
    }
    # Interval-dump series are optional (telemetry runs only); the key is
    # simply absent otherwise, keeping old files and new readers aligned.
    if result.intervals is not None:
        out["intervals"] = result.intervals.to_dict()
    # Failure markers (quarantined --keep-going cells) use the same
    # optional-key convention: absent means a real result.
    if result.failed:
        out["failed"] = True
        out["failure_reason"] = result.failure_reason
    return out


def result_from_dict(data: dict) -> WorkloadSchemeResult:
    return WorkloadSchemeResult(
        workload=data["workload"],
        scheme=data["scheme"],
        apps=tuple(data["apps"]),
        per_core_ipc=np.asarray(data["per_core_ipc"]),
        per_core_instructions=np.asarray(data["per_core_instructions"], dtype=np.int64),
        per_core_cycles=np.asarray(data["per_core_cycles"]),
        bank_writes=np.asarray(data["bank_writes"], dtype=np.int64),
        bank_lifetimes=np.asarray(data["bank_lifetimes"]),
        elapsed_cycles=data["elapsed_cycles"],
        llc_fetch_hit_rate=data["llc_fetch_hit_rate"],
        llc_mean_fetch_latency=data["llc_mean_fetch_latency"],
        noc_mean_hops=data["noc_mean_hops"],
        critical_fill_fraction=data.get("critical_fill_fraction", 0.0),
        llc_fetches=data.get("llc_fetches", 0),
        llc_writebacks=data.get("llc_writebacks", 0),
        noc_total_hops=data.get("noc_total_hops", 0),
        energy_mj=data.get("energy_mj", 0.0),
        age_fraction=data.get("age_fraction", 0.0),
        effective_capacity=data.get("effective_capacity", 1.0),
        dead_banks=data.get("dead_banks", 0),
        remap_traffic=data.get("remap_traffic", 0),
        fills_skipped=data.get("fills_skipped", 0),
        transient_faults=data.get("transient_faults", 0),
        intervals=(
            IntervalSeries.from_dict(data["intervals"])
            if "intervals" in data
            else None
        ),
        failed=bool(data.get("failed", False)),
        failure_reason=str(data.get("failure_reason", "")),
    )


def save_matrix(path: str | Path, matrix: MatrixResult) -> None:
    """Write one matrix (all its workload x scheme cells) to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "label": matrix.label,
        "schemes": list(matrix.schemes),
        "workloads": list(matrix.workloads),
        "results": [
            result_to_dict(result) for result in matrix.results.values()
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def load_matrix(path: str | Path) -> MatrixResult:
    """Read a matrix written by :func:`save_matrix`.

    Raises:
        ReproError: for a wrong format version or malformed payload.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read result file {path}: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported result format "
            f"{payload.get('format_version')!r} (expected {FORMAT_VERSION})"
        )
    matrix = MatrixResult(
        label=payload["label"],
        schemes=tuple(payload["schemes"]),
        workloads=tuple(payload["workloads"]),
    )
    for raw in payload["results"]:
        matrix.add(result_from_dict(raw))
    return matrix
