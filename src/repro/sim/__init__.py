"""Simulation orchestration: calibration, the two-stage pipeline, metrics.

Stage 1 (:class:`~repro.sim.runner.Stage1Cache`) simulates each
application once per upper-hierarchy configuration — core + L1/L2 +
nominal L3 — yielding its L3 reference stream.  Stage 2
(:func:`~repro.sim.runner.run_workload`) merges 16 per-core streams and
drives the NUCA LLC under one mapping policy, producing per-bank wear and
per-core IPC.  Stage-1 results are cached and shared across the 5
policies x 10 workloads of the evaluation, which is what makes the full
matrix tractable in pure Python.
"""

from repro.sim.calibrate import calibrated_base_cpi
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.sim.runner import Stage1Cache, run_matrix, run_workload
from repro.sim.store import load_matrix, save_matrix
from repro.sim.system import System

__all__ = [
    "calibrated_base_cpi",
    "MatrixResult",
    "WorkloadSchemeResult",
    "Stage1Cache",
    "run_matrix",
    "run_workload",
    "load_matrix",
    "save_matrix",
    "System",
]
