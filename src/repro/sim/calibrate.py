"""Per-application base-CPI calibration.

The interval core model splits CPI into a *base* part (every non-memory
resource: issue width, functional units, branch mispredictions, L1-hit
latencies) and the memory-stall part it simulates explicitly.  Table II
gives each app's total single-core IPC on the baseline machine, so the
base part is whatever is left after simulating the stalls:

    base_cpi = 1 / IPC_target - stall_cpi(measured)

``stall_cpi`` itself depends mildly on ``base_cpi`` (a slower front-end
hides more memory latency), so the solver iterates a couple of short
fixed-point steps — plenty, since the dependence is weak and the paper's
conclusions rest on *relative* IPC between NUCA schemes.

Calibrations are memoised per (app, config signature, seed).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.cpu.core import AppSimulator
from repro.trace.profiles import get_profile

#: Instruction budget of one calibration probe run.
CALIBRATION_INSTRUCTIONS = 120_000

#: Fixed-point iterations (2 suffices; see module docstring).
CALIBRATION_STEPS = 2

#: Clamp range for the base CPI (0.25 = 4-wide issue upper bound;
#: 20 covers even mcf's 14+ CPI).
BASE_CPI_MIN = 0.25
BASE_CPI_MAX = 20.0

_cache: dict[tuple, float] = {}


def config_signature(config: SystemConfig) -> tuple:
    """Hashable summary of the configuration fields stage 1 depends on.

    Memoised on the config instance: sweep inner loops call this once
    per :meth:`~repro.sim.runner.Stage1Cache.get`, and rebuilding the
    tuple from six nested dataclasses on every lookup is pure overhead.
    Configs are frozen, so the signature can never go stale; the cache
    slot is written through ``object.__setattr__`` and lives outside the
    declared fields (invisible to ``==``, ``hash`` and ``asdict``).
    """
    sig = config.__dict__.get("_signature")
    if sig is None:
        sig = _build_signature(config)
        object.__setattr__(config, "_signature", sig)
    return sig


def _build_signature(config: SystemConfig) -> tuple:
    # Every field stage 1 reads, and nothing stage 2 owns: trace synthesis
    # (cache geometries incl. line size), the interval core (ROB), the
    # private hierarchy and nominal L3 (sizes/assoc/latencies), the
    # one-hop L3 round trip, the DRAM model (row-buffer + bandwidth), and
    # the criticality predictor.  NUCA/NoC-topology/ReRAM/TLB knobs are
    # deliberately absent so sweeps over them share one characterisation
    # (guarded by tests/test_stage1_store.py).
    return (
        config.num_cores,
        config.core.clock_hz,
        config.core.rob_entries,
        config.l1.size_bytes,
        config.l1.assoc,
        config.l1.latency,
        config.l1.line_bytes,
        config.l2.size_bytes,
        config.l2.assoc,
        config.l2.latency,
        config.l2.line_bytes,
        config.l3_bank.size_bytes,
        config.l3_bank.assoc,
        config.l3_bank.latency,
        config.l3_bank.line_bytes,
        config.noc.hop_cycles,
        config.memory.latency_cycles,
        config.memory.row_hit_latency_cycles,
        config.memory.bandwidth_lines_per_cycle,
        config.memory.lines_per_row,
        config.memory.dram_banks,
        config.criticality.threshold_percent,
        config.criticality.block_cycles,
        config.criticality.table_entries,
    )


def calibrated_base_cpi(
    app: str,
    config: SystemConfig,
    *,
    seed: int | None = None,
    probe_instructions: int = CALIBRATION_INSTRUCTIONS,
) -> float:
    """Base CPI that lands the app's simulated IPC near its Table II value."""
    profile = get_profile(app)
    key = (app, config_signature(config), seed, probe_instructions)
    cached = _cache.get(key)
    if cached is not None:
        return cached

    target_cpi = 1.0 / profile.ipc
    base = max(BASE_CPI_MIN, min(BASE_CPI_MAX, 0.7 * target_cpi))
    for _ in range(CALIBRATION_STEPS):
        sim = AppSimulator(app, config, seed=seed, base_cpi=base)
        result = sim.run(probe_instructions)
        measured_cpi = result.cycles / result.instructions
        stall_cpi = measured_cpi - base
        base = max(BASE_CPI_MIN, min(BASE_CPI_MAX, target_cpi - stall_cpi))

    _cache[key] = base
    return base


def clear_cache() -> None:
    """Forget all memoised calibrations (tests use this)."""
    _cache.clear()
