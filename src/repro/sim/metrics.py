"""Result containers and metric aggregation for the evaluation.

The paper's reported quantities:

* **IPC** — multiprogram throughput, the sum of per-core IPCs; Figure 11
  plots each scheme's percentage improvement over S-NUCA per workload.
* **Harmonic-mean lifetime per bank** — for each of the 16 banks, the
  harmonic mean over the 10 workloads of that bank's lifetime
  (Figures 3, 12, 13, 15, 17).
* **Raw minimum lifetime** — the minimum over banks *and* workloads
  (Table III): the first capacity loss the machine would suffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError
from repro.reram.endurance import lifetime_summary
from repro.telemetry.intervals import IntervalSeries


@dataclass
class WorkloadSchemeResult:
    """Stage-2 outcome of one (workload, scheme) pair."""

    workload: str
    scheme: str
    apps: tuple[str, ...]
    per_core_ipc: np.ndarray
    per_core_instructions: np.ndarray
    per_core_cycles: np.ndarray
    bank_writes: np.ndarray
    bank_lifetimes: np.ndarray
    elapsed_cycles: float
    llc_fetch_hit_rate: float
    llc_mean_fetch_latency: float
    noc_mean_hops: float
    critical_fill_fraction: float = 0.0
    llc_fetches: int = 0
    llc_writebacks: int = 0
    noc_total_hops: int = 0
    #: Total LLC energy (mJ) over the measured phase, from
    #: :func:`repro.reram.energy.energy_of_result` (ReRAM coefficients):
    #: leakage + bank reads/writes + NoC hop traversal.  A headline
    #: metric so sweeps and the design-space search can minimise it.
    energy_mj: float = 0.0
    # -- degradation metrics (fault-injection runs; defaults = pristine) --
    #: Fraction of nominal cell endurance consumed by the average bank.
    age_fraction: float = 0.0
    #: Usable LLC frames / nominal frames after fault retirement.
    effective_capacity: float = 1.0
    #: Banks fully out of service.
    dead_banks: int = 0
    #: Accesses redirected away from dead banks (remap-layer traffic).
    remap_traffic: int = 0
    #: Fills dropped because the target set had no live frames.
    fills_skipped: int = 0
    #: Transient read faults injected during the measured phase.
    transient_faults: int = 0
    #: Interval-dump time series (telemetry runs only; see
    #: :mod:`repro.telemetry.intervals`).
    intervals: IntervalSeries | None = None
    # -- failure marker (``--keep-going`` sweeps only) --
    #: True when this cell is a quarantined placeholder, not a result:
    #: the job crashed, timed out or exhausted its retries and the sweep
    #: continued without it.  All metric arrays are zeros.
    failed: bool = False
    #: Human-readable failure cause (``timeout: exceeded 30s deadline``).
    failure_reason: str = ""

    @classmethod
    def failed_cell(
        cls,
        *,
        workload: str,
        scheme: str,
        apps: tuple[str, ...],
        n_banks: int,
        reason: str,
        age_fraction: float = 0.0,
    ) -> "WorkloadSchemeResult":
        """A zeroed placeholder for a cell the sweep gave up on."""
        n_cores = len(apps)
        return cls(
            workload=workload,
            scheme=scheme,
            apps=tuple(apps),
            per_core_ipc=np.zeros(n_cores),
            per_core_instructions=np.zeros(n_cores, dtype=np.int64),
            per_core_cycles=np.zeros(n_cores),
            bank_writes=np.zeros(n_banks, dtype=np.int64),
            bank_lifetimes=np.zeros(n_banks),
            elapsed_cycles=0.0,
            llc_fetch_hit_rate=0.0,
            llc_mean_fetch_latency=0.0,
            noc_mean_hops=0.0,
            age_fraction=age_fraction,
            failed=True,
            failure_reason=reason,
        )

    @property
    def ipc(self) -> float:
        """Throughput: sum of per-core IPCs."""
        return float(self.per_core_ipc.sum())

    @property
    def min_lifetime(self) -> float:
        """Worst bank lifetime in this workload."""
        return float(self.bank_lifetimes.min())

    @property
    def wear_cov(self) -> float:
        """Per-bank write coefficient of variation (lower = more even wear)."""
        writes = self.bank_writes
        mean = float(writes.mean()) if writes.size else 0.0
        if mean == 0.0:
            return 0.0
        return float(writes.std() / mean)

    @property
    def degraded(self) -> bool:
        """True when faults actually affected this run.

        An aged cache whose frames all survived (``age_fraction`` below
        the endurance wall, no scheduled bank failures, no soft faults)
        ran exactly like pristine hardware, so age alone does not mark a
        run degraded — only observed effects do: lost capacity, dead
        banks, remapped traffic, dropped fills or injected soft faults.
        """
        return (
            self.effective_capacity < 1.0
            or self.dead_banks > 0
            or self.transient_faults > 0
            or self.remap_traffic > 0
            or self.fills_skipped > 0
        )


@dataclass
class MatrixResult:
    """All (workload x scheme) results of one evaluation configuration."""

    label: str
    schemes: tuple[str, ...]
    workloads: tuple[str, ...]
    results: dict[tuple[str, str], WorkloadSchemeResult] = field(default_factory=dict)

    def add(self, result: WorkloadSchemeResult, *, replace: bool = False) -> None:
        """Register one stage-2 result.

        A duplicate (workload, scheme) cell is rejected with
        :class:`~repro.common.errors.ReproError` unless ``replace=True``:
        the parallel sweep engine retries failed jobs, so a silent
        second ``add`` could overwrite a good cell with a different
        object and hide a scheduling bug.  Callers that *mean* to
        refresh a cell (e.g. re-running one point of a loaded matrix)
        must say so explicitly.
        """
        key = (result.workload, result.scheme)
        if not replace and key in self.results:
            raise ReproError(
                f"duplicate result for workload={result.workload!r} "
                f"scheme={result.scheme!r} in matrix {self.label!r} "
                "(pass replace=True to overwrite)"
            )
        self.results[key] = result

    @property
    def failed_cells(self) -> list[WorkloadSchemeResult]:
        """Quarantined placeholder cells, in insertion order."""
        return [r for r in self.results.values() if r.failed]

    def get(self, workload: str, scheme: str) -> WorkloadSchemeResult:
        """Fetch one result, with a helpful error when missing."""
        try:
            return self.results[(workload, scheme)]
        except KeyError:
            raise ReproError(
                f"no result for workload={workload!r} scheme={scheme!r} "
                f"in matrix {self.label!r}"
            ) from None

    # -- paper metrics ---------------------------------------------------------

    def ipc_of(self, scheme: str) -> dict[str, float]:
        """Throughput IPC per workload for one scheme."""
        return {wl: self.get(wl, scheme).ipc for wl in self.workloads}

    def ipc_improvement_over(
        self, scheme: str, baseline: str = "S-NUCA"
    ) -> dict[str, float]:
        """Figure 11: percent IPC improvement per workload vs a baseline."""
        out = {}
        for wl in self.workloads:
            base = self.get(wl, baseline).ipc
            if base <= 0:
                raise ReproError(f"baseline IPC is zero for {wl}")
            out[wl] = 100.0 * (self.get(wl, scheme).ipc / base - 1.0)
        return out

    def mean_ipc_improvement(self, scheme: str, baseline: str = "S-NUCA") -> float:
        """Average of the per-workload improvements (the paper's 'Avg' bar)."""
        vals = list(self.ipc_improvement_over(scheme, baseline).values())
        return float(np.mean(vals))

    def lifetime_matrix(self, scheme: str) -> np.ndarray:
        """Workloads x banks lifetime matrix for one scheme."""
        return np.stack(
            [self.get(wl, scheme).bank_lifetimes for wl in self.workloads]
        )

    def lifetime_summary_of(self, scheme: str) -> dict:
        """Figure 3/12 bars + Table III raw minimum for one scheme."""
        return lifetime_summary(self.lifetime_matrix(scheme))

    def raw_min_lifetime(self, scheme: str) -> float:
        """Table III: minimum lifetime over banks and workloads."""
        return self.lifetime_summary_of(scheme)["raw_min"]

    def hmean_bank_lifetimes(self, scheme: str) -> np.ndarray:
        """Per-bank harmonic-mean lifetimes (one bar group in Fig. 3/12)."""
        return self.lifetime_summary_of(scheme)["hmean_per_bank"]

    def tradeoff_points(self, baseline: str = "S-NUCA") -> dict[str, tuple[float, float]]:
        """Figure 4b: (mean IPC, h-mean lifetime) point per scheme."""
        points = {}
        for scheme in self.schemes:
            mean_ipc = float(np.mean([self.get(wl, scheme).ipc for wl in self.workloads]))
            hmean_life = self.lifetime_summary_of(scheme)["hmean_overall"]
            points[scheme] = (mean_ipc, hmean_life)
        return points
