"""Content-addressed on-disk store of stage-1 characterisation results.

A :class:`Stage1Store` persists full :class:`~repro.cpu.core.Stage1Result`
payloads — Table II statistics, criticality meters and the complete L3
reference stream — keyed by ``(app, config_signature, seed,
n_instructions)``.  It is the disk tier below the in-memory
:class:`~repro.sim.runner.Stage1Cache`: parallel sweep workers,
successive-halving search rungs and repeat runs all need the *same*
per-app characterisation for a given upper-hierarchy configuration, and
without a shared store each worker process re-simulates it from cold.

Because the stored result carries its calibrated ``base_cpi``, a store
hit skips the calibration probes too — a fully warm store performs zero
stage-1 simulations.

Invalidation rules (mirroring :class:`~repro.jobs.cache.ResultCache`):

* the key covers every stage-1 input — the app, the stage-1-relevant
  configuration fields (:func:`~repro.sim.calibrate.config_signature`),
  the seed and the instruction budget — plus ``STAGE1_FORMAT_VERSION``;
* every entry embeds ``STAGE1_FORMAT_VERSION``; entries written by an
  incompatible engine read as misses, never as errors;
* corrupt or truncated entries read as misses (writes are atomic:
  temp file + ``os.replace``), and are additionally counted on the
  ``corrupt`` telemetry counter.

Hit/miss/write/corrupt totals are observable as ``jobs.stage1.store.*``
counters once :meth:`Stage1Store.bind_telemetry` is called.

The payload is a single ``.npz`` member set: the stream and meter arrays
verbatim (dtype-preserving, so round-trips are bit-exact) plus one JSON
metadata member for the scalar statistics.  Python's JSON float encoding
uses ``repr``, which round-trips every finite double exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.common.errors import ReproError
from repro.config import SystemConfig

#: On-disk entry layout version; bump to invalidate every stored result.
STAGE1_FORMAT_VERSION = 1

#: L3Stream array fields, in declaration order.
_STREAM_FIELDS = (
    "ts", "line", "pc", "is_wb", "is_load", "predicted", "true_critical",
    "nominal_lat", "stall", "slack", "mlp",
)

#: CriticalityMeters array fields.
_METER_ARRAYS = (
    "true_positive", "predicted_critical", "agree",
    "noncritical_fetches", "noncritical_writes",
)

_CACHE_STATS_FIELDS = (
    "demand_reads", "demand_writes", "hits", "misses", "fills",
    "writebacks", "clean_evictions", "invalidations",
)
_MSHR_STATS_FIELDS = ("primary_misses", "secondary_misses", "stalls")
_CPT_STATS_FIELDS = (
    "lookups", "lookup_hits", "predictions_critical", "inserts", "evictions",
)


class Stage1Store:
    """Content-addressed on-disk tier for stage-1 results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"cannot create stage-1 store at {self.root}: {exc}"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_entries = 0
        self._registry = None

    # -- telemetry ---------------------------------------------------------

    def bind_telemetry(self, registry) -> None:
        """Mirror totals onto ``jobs.stage1.store.*`` counters."""
        self._registry = registry
        for name in ("hits", "misses", "writes", "corrupt"):
            registry.counter(f"jobs.stage1.store.{name}")

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(f"jobs.stage1.store.{name}").inc()

    # -- addressing --------------------------------------------------------

    def fingerprint(
        self,
        app: str,
        config: SystemConfig,
        *,
        seed: int | None,
        n_instructions: int,
    ) -> str:
        """Content address of one stage-1 run's entry."""
        from repro.sim.calibrate import config_signature

        key = {
            "format_version": STAGE1_FORMAT_VERSION,
            "app": app,
            "config_signature": list(config_signature(config)),
            "seed": seed,
            "n_instructions": n_instructions,
        }
        digest = hashlib.sha256(
            json.dumps(key, sort_keys=True).encode("utf-8")
        ).hexdigest()
        return digest[:32]

    def path_for(self, fingerprint: str) -> Path:
        """On-disk location of one fingerprint's entry."""
        return self.root / f"{fingerprint}.npz"

    # -- read/write --------------------------------------------------------

    def get(
        self,
        app: str,
        config: SystemConfig,
        *,
        seed: int | None = None,
        n_instructions: int,
    ):
        """The stored result, or None on a miss.

        Stale-version, corrupt and unreadable entries all read as misses
        (the store is an accelerator; re-simulating is always safe);
        damaged entries additionally bump the ``corrupt`` counter.
        """
        path = self.path_for(
            self.fingerprint(app, config, seed=seed, n_instructions=n_instructions)
        )
        if not path.exists():
            self.misses += 1
            self._count("misses")
            return None
        try:
            result = self._load(path)
        except (
            OSError, zipfile.BadZipFile, KeyError, ValueError, TypeError,
            EOFError,
        ):
            self.corrupt_entries += 1
            self._count("corrupt")
            self.misses += 1
            self._count("misses")
            return None
        if result is None:  # valid file, incompatible version
            self.misses += 1
            self._count("misses")
            return None
        self.hits += 1
        self._count("hits")
        return result

    def put(
        self,
        result,
        config: SystemConfig,
        *,
        seed: int | None = None,
        n_instructions: int,
    ) -> None:
        """Persist one result under its key (atomic)."""
        fingerprint = self.fingerprint(
            result.app, config, seed=seed, n_instructions=n_instructions
        )
        path = self.path_for(fingerprint)
        meters = result.meters
        meta = {
            "format_version": STAGE1_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "app": result.app,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "base_cpi": result.base_cpi,
            "mem_queue_cycles": result.mem_queue_cycles,
            "meters": {
                "thresholds": list(meters.thresholds),
                "loads": meters.loads,
                "blocked_loads": meters.blocked_loads,
                "fetches": meters.fetches,
                "writes": meters.writes,
            },
            "l1_stats": self._stats_dict(result.l1_stats, _CACHE_STATS_FIELDS),
            "l2_stats": self._stats_dict(result.l2_stats, _CACHE_STATS_FIELDS),
            "l3_stats": self._stats_dict(result.l3_stats, _CACHE_STATS_FIELDS),
            "mshr_stats": self._stats_dict(result.mshr_stats, _MSHR_STATS_FIELDS),
            "cpt_stats": self._stats_dict(result.cpt_stats, _CPT_STATS_FIELDS),
        }
        arrays = {
            f"stream_{name}": getattr(result.stream, name)
            for name in _STREAM_FIELDS
        }
        arrays.update(
            {f"meters_{name}": getattr(meters, name) for name in _METER_ARRAYS}
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, meta=json.dumps(meta), **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        self._count("writes")

    @staticmethod
    def _stats_dict(stats, fields) -> dict:
        return {name: getattr(stats, name) for name in fields}

    def _load(self, path: Path):
        from repro.cache.cache import CacheStats
        from repro.cache.mshr import MshrStats
        from repro.core.criticality import CptStats, CriticalityMeters
        from repro.cpu.core import L3Stream, Stage1Result

        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if (
                not isinstance(meta, dict)
                or meta.get("format_version") != STAGE1_FORMAT_VERSION
            ):
                return None
            stream = L3Stream(
                **{name: data[f"stream_{name}"] for name in _STREAM_FIELDS}
            )
            m = meta["meters"]
            meters = CriticalityMeters(
                thresholds=tuple(m["thresholds"]),
                loads=m["loads"],
                blocked_loads=m["blocked_loads"],
                fetches=m["fetches"],
                writes=m["writes"],
                **{name: data[f"meters_{name}"] for name in _METER_ARRAYS},
            )
        return Stage1Result(
            app=meta["app"],
            instructions=meta["instructions"],
            cycles=meta["cycles"],
            base_cpi=meta["base_cpi"],
            stream=stream,
            meters=meters,
            l1_stats=CacheStats(**meta["l1_stats"]),
            l2_stats=CacheStats(**meta["l2_stats"]),
            l3_stats=CacheStats(**meta["l3_stats"]),
            mshr_stats=MshrStats(**meta["mshr_stats"]),
            cpt_stats=CptStats(**meta["cpt_stats"]),
            mem_queue_cycles=meta["mem_queue_cycles"],
        )

    # -- chaos -------------------------------------------------------------

    def corrupt(
        self,
        app: str,
        config: SystemConfig,
        *,
        seed: int | None = None,
        n_instructions: int,
    ) -> None:
        """Overwrite one entry with a truncated payload (chaos harness).

        The invariant under test is that the next :meth:`get` treats the
        mangled entry as a miss — the run re-simulates — rather than
        raising.  Deliberately bypasses the atomic-write path; a missing
        entry is left missing.
        """
        path = self.path_for(
            self.fingerprint(app, config, seed=seed, n_instructions=n_instructions)
        )
        if not path.exists():
            return
        path.write_bytes(b"PK\x03\x04 truncated")

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))


def as_stage1_store(store) -> Stage1Store | None:
    """Coerce a ``Stage1Store``/path/None into a store handle."""
    if store is None or isinstance(store, Stage1Store):
        return store
    return Stage1Store(store)
