"""The two-stage experiment runner.

Stage 1 — per application, per upper-hierarchy configuration — is
cache-managed by :class:`Stage1Cache` (calibration probe + full run).
Stage 2 — :func:`run_workload` — merges the per-core L3 reference
streams of a 16-app mix by timestamp and drives one NUCA LLC instance,
yielding a :class:`~repro.sim.metrics.WorkloadSchemeResult`.
:func:`run_matrix` sweeps workloads x schemes, which is the shape of
every headline experiment in the paper.

Instruction budgets default to ``REPRO_INSTRUCTIONS`` (environment
variable) per core; the paper used 100 M instructions per core after
warm-up — lifetime and IPC are rate-based, so a few hundred thousand
instructions per core reproduce the shapes at laptop scale.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError
from repro.config import FaultConfig, SystemConfig, baseline_config
from repro.core.criticality import CriticalityPredictor, bind_cpt_telemetry
from repro.cpu.core import AppSimulator, Stage1Result
from repro.faults.injector import FaultInjector
from repro.mem.model import MainMemory
from repro.noc.mesh import Mesh
from repro.nuca import NucaLLC, make_policy
from repro.nuca.kernel import kernel_supported
from repro.nuca.kernel import replay as kernel_replay
from repro.obs.spans import DISABLED_SPANS
from repro.reram.endurance import lifetimes_for_banks
from repro.reram.energy import energy_of_result
from repro.reram.wear import WearTracker
from repro.sim.calibrate import calibrated_base_cpi, config_signature
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult
from repro.telemetry import DISABLED_PROFILER, Telemetry
from repro.telemetry.intervals import IntervalSeries
from repro.trace.workloads import Workload

#: Per-core instruction budget when the caller does not specify one.
DEFAULT_INSTRUCTIONS: int = int(os.environ.get("REPRO_INSTRUCTIONS", "300000"))

#: Per-core address-space stride: each core's lines live in a disjoint
#: 2**44-line region.
CORE_ADDRESS_STRIDE_SHIFT = 44


def _core_base(core: int) -> int:
    """Base line address of one core's private address space.

    Besides the disjoint high bits, each core gets a large odd low-bit
    scramble: physical page allocation decorrelates different processes'
    addresses, so two cores running the *same* binary must not have
    congruent bank/set bits (they would otherwise collide in exactly the
    same LLC sets, which no real multiprogrammed system does).
    """
    return ((core + 1) << CORE_ADDRESS_STRIDE_SHIFT) + core * 40_503_551


#: Default :class:`Stage1Cache` capacity.  A stage-1 result retains the
#: full per-app L3 reference stream (several MB at paper-scale budgets),
#: so long sweeps over many apps/configurations must not grow the memo
#: without bound; 128 entries comfortably covers the 22-app pool across
#: a handful of configurations while capping worst-case memory.
DEFAULT_STAGE1_ENTRIES = 128


class Stage1Cache:
    """Memoised stage-1 runs keyed by (app, config, seed, budget).

    The memo is a bounded LRU: once ``max_entries`` distinct
    (app, configuration, seed, budget) runs are held, the least recently
    used one is evicted.  Size and eviction totals are observable as the
    ``jobs.stage1.entries`` / ``jobs.stage1.evictions`` telemetry gauges,
    lookup totals as the ``jobs.stage1.hits`` / ``jobs.stage1.misses``
    counters (bound by :func:`run_workload` whenever telemetry is
    attached).

    ``store`` layers a shared on-disk tier
    (:class:`~repro.sim.stage1_store.Stage1Store`, or a directory path)
    below the memo: LRU misses consult the store before simulating, and
    fresh simulations are persisted.  A store hit also skips the
    calibration probes — the stored result carries its ``base_cpi`` — so
    a fully warm store performs zero stage-1 simulations.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_STAGE1_ENTRIES,
        *,
        store=None,
    ) -> None:
        from repro.sim.stage1_store import as_stage1_store

        if max_entries <= 0:
            raise ReproError("stage-1 cache needs at least one entry")
        self.max_entries = max_entries
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        self.store = as_stage1_store(store)
        self._registry = None
        self._cache: OrderedDict[tuple, Stage1Result] = OrderedDict()

    def get(
        self,
        app: str,
        config: SystemConfig,
        *,
        seed: int | None = None,
        n_instructions: int = DEFAULT_INSTRUCTIONS,
    ) -> Stage1Result:
        """Fetch (or compute) the stage-1 result for one app."""
        key = (app, config_signature(config), seed, n_instructions)
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            self._count("hits")
            return result
        self.misses += 1
        self._count("misses")
        if self.store is not None:
            result = self.store.get(
                app, config, seed=seed, n_instructions=n_instructions
            )
            if result is not None:
                self._install(key, result)
                return result
        base_cpi = calibrated_base_cpi(app, config, seed=seed)
        sim = AppSimulator(app, config, seed=seed, base_cpi=base_cpi)
        result = sim.run(n_instructions)
        if self.store is not None:
            self.store.put(
                result, config, seed=seed, n_instructions=n_instructions
            )
        self._install(key, result)
        return result

    def _install(self, key: tuple, result: Stage1Result) -> None:
        self._cache[key] = result
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(f"jobs.stage1.{name}").inc()

    def bind_telemetry(self, registry) -> None:
        """Expose the memo as ``jobs.stage1.*`` gauges and counters."""
        self._registry = registry
        registry.gauge("jobs.stage1.entries", fn=lambda: float(len(self._cache)))
        registry.gauge("jobs.stage1.evictions", fn=lambda: float(self.evictions))
        registry.counter("jobs.stage1.hits")
        registry.counter("jobs.stage1.misses")
        if self.store is not None:
            self.store.bind_telemetry(registry)

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all memoised runs (eviction count persists)."""
        self._cache.clear()


@dataclass
class _MergedStream:
    """All cores' L3 references in global timestamp order."""

    ts: np.ndarray
    core: np.ndarray
    line: np.ndarray
    pc: np.ndarray
    is_wb: np.ndarray
    is_load: np.ndarray
    stall: np.ndarray
    slack: np.ndarray
    mlp: np.ndarray
    nominal: np.ndarray
    order: np.ndarray       # permutation applied (for un-sorting latencies)
    #: Per-core (lo, hi) slices in the *unsorted* concatenation covering
    #: the measured (first-copy) records, aligned with each core's
    #: original :class:`~repro.cpu.core.L3Stream` record order.
    measured_slices: tuple[tuple[int, int], ...] = ()
    total: int = field(init=False)

    def __post_init__(self) -> None:
        self.total = len(self.ts)


def _merge_streams(results: list[Stage1Result]) -> _MergedStream:
    """Merge per-core streams into one global-time reference sequence.

    Cores finish their instruction budgets at very different cycle
    counts (IPC spans 0.07..2.6), but in the machine every core runs
    continuously: a fast application keeps executing — and keeps
    generating LLC traffic — while a slow one is still working through
    its budget.  Each core's stream is therefore **replayed cyclically**
    (same working set, timestamps shifted by whole run lengths) until
    the slowest core's horizon.  Only the first copy carries exposure
    accounting (it is the measured instruction window); replays exist to
    produce realistic interference and wear rates.
    """
    horizon = max(float(r.cycles) for r in results)
    cols: dict[str, list[np.ndarray]] = {
        name: [] for name in
        ("ts", "line", "pc", "is_wb", "is_load", "stall", "slack", "mlp", "nominal")
    }
    core_parts = []
    measured_slices: list[tuple[int, int]] = []
    cursor = 0
    for core, result in enumerate(results):
        s = result.stream
        span = max(float(result.cycles), 1.0)
        reps = max(1, int(np.ceil(horizon / span)))
        line = s.line + _core_base(core)
        measured_slices.append((cursor, cursor + len(s)))
        for rep in range(reps):
            ts_rep = s.ts + rep * span
            if rep:
                keep = ts_rep <= horizon
                if not keep.any():
                    break
                ts_rep = ts_rep[keep]
            else:
                keep = slice(None)
            cols["ts"].append(ts_rep)
            cols["line"].append(line[keep])
            cols["pc"].append(s.pc[keep])
            cols["is_wb"].append(s.is_wb[keep])
            cols["is_load"].append(s.is_load[keep])
            cols["stall"].append(s.stall[keep])
            cols["slack"].append(s.slack[keep])
            cols["mlp"].append(s.mlp[keep])
            cols["nominal"].append(s.nominal_lat[keep])
            count = len(ts_rep)
            core_parts.append(np.full(count, core, dtype=np.int16))
            cursor += count
    ts = np.concatenate(cols["ts"])
    order = np.argsort(ts, kind="stable")
    merged = {name: np.concatenate(parts)[order] for name, parts in cols.items()}
    return _MergedStream(
        core=np.concatenate(core_parts)[order],
        order=order,
        measured_slices=tuple(measured_slices),
        **merged,
    )


def _warm_llc(
    llc,
    workload: Workload,
    config: SystemConfig,
    results1: list[Stage1Result],
    *,
    seed: int | None,
) -> None:
    """Install each core's L3-resident working set, then zero the meters.

    Mirrors the paper's warm-up phase: without it, short runs would count
    one compulsory miss per working-set line, drowning the steady-state
    hit rates of cache-friendly applications.  The caller is responsible
    for :meth:`~repro.nuca.llc.NucaLLC.reset_measurement` afterwards (it
    may want to snapshot warm-up wear or apply faults first).

    For criticality-consuming policies (Re-NUCA), each resident line is
    installed with the criticality its last long-run fetch would have
    carried: in steady state a line's mapping reflects the predictor's
    verdict at its most recent refetch, so lines are prefilled critical
    with the app's measured predicted-critical fetch fraction.  (For the
    other policies placement ignores criticality, so the flag is inert.)
    """
    from repro.common.rng import derive_rng
    from repro.trace.profiles import get_profile
    from repro.trace.synthetic import derive_params, warm_sets

    uses_criticality = getattr(llc.policy, "consumes_criticality", False)
    for core, app in enumerate(workload.apps):
        params = derive_params(get_profile(app), config)
        offset = _core_base(core)
        p_critical = 0.0
        if uses_criticality:
            s = results1[core].stream
            fetches = ~s.is_wb & s.is_load
            if fetches.any():
                p_critical = float(s.predicted[fetches].mean())
        rng = derive_rng(seed, "prefill", workload.name, core)
        for block in warm_sets(params, l2_lines=config.l2.num_lines)["l3"]:
            # One rng.random(len(block)) draw per block, exactly as the
            # historical per-line loop consumed it — warm-up criticality
            # stays deterministic per (seed, workload, core, block).
            lines = [line + offset for line in block]
            if p_critical > 0.0:
                crit_draws = rng.random(len(block)) < p_critical
                llc.prefill_many(core, lines, critical=crit_draws.tolist())
            else:
                llc.prefill_many(core, lines)


@dataclass
class ReplayInputs:
    """Everything the measured stage-2 replay loop consumes.

    Produced by :func:`prepare_replay`: stage-1 results, the constructed
    and *warmed* LLC (measurement already reset), the merged reference
    stream, and the criticality-predictor state for schemes that consume
    it.  Benches and equivalence tests use this to time / drive the
    replay in isolation from stage 1 and warm-up.
    """

    results1: list[Stage1Result]
    mesh: Mesh
    memory: MainMemory
    wear: WearTracker
    policy: object
    injector: FaultInjector | None
    llc: NucaLLC
    merged: _MergedStream
    cpts: list[CriticalityPredictor] | None
    threshold: float
    block_cycles: float


def prepare_replay(
    workload: Workload,
    scheme: str,
    config: SystemConfig | None = None,
    *,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    fault_config: FaultConfig | None = None,
    telemetry: Telemetry | None = None,
    prof=DISABLED_PROFILER,
    spans=DISABLED_SPANS,
) -> ReplayInputs:
    """Build the warmed stage-2 state without running the measured loop.

    Factored out of :func:`run_workload` so throughput benches can time
    the replay alone (stage 1 and warm-up excluded) and so equivalence
    tests can drive the kernel and reference paths from identical state.
    """
    config = config or baseline_config()
    if workload.num_cores != config.num_cores:
        raise ReproError(
            f"workload {workload.name} has {workload.num_cores} apps but the "
            f"configuration has {config.num_cores} cores"
        )
    stage1 = Stage1Cache() if stage1 is None else stage1
    with prof.phase("stage1"), spans.span("stage1"):
        results1 = [
            stage1.get(app, config, seed=seed, n_instructions=n_instructions)
            for app in workload.apps
        ]

    mesh = Mesh(config.noc)
    memory = MainMemory(config.memory)
    inject = fault_config is not None and fault_config.active
    # Per-line tracking feeds the endurance fault model's set weighting.
    wear = WearTracker(
        config.num_banks,
        track_lines=inject and fault_config.age_fraction > 0,
    )
    policy = make_policy(scheme, config, mesh, wear)
    injector = (
        FaultInjector(config, fault_config, seed=seed) if inject else None
    )
    if telemetry is not None:
        wear.bind_telemetry(telemetry.registry)
        mesh.bind_telemetry(telemetry.registry)
        policy.attach_telemetry(telemetry)
        if injector is not None:
            injector.bind_telemetry(telemetry.registry, trace=telemetry.trace)
    llc = NucaLLC(
        config, policy, mesh, memory, wear, faults=injector, telemetry=telemetry
    )
    with prof.phase("warm-up"), spans.span("warm-up"):
        _warm_llc(llc, workload, config, results1, seed=seed)
        if injector is not None:
            llc.apply_faults(wear.snapshot())
        llc.reset_measurement()

    merged = _merge_streams(results1)

    # For criticality-consuming policies (Re-NUCA) the Criticality
    # Predictor Table runs *online* in the measured loop, trained with
    # ground truth re-evaluated under this scheme's own latencies —
    # criticality is content-dependent (a load that hits never blocks;
    # the same load blocks once interference turns its hits into
    # misses), and the paper's predictor adapts to that feedback at run
    # time.
    uses_criticality = getattr(policy, "consumes_criticality", False)
    cpts = (
        [CriticalityPredictor(config.criticality) for _ in results1]
        if uses_criticality else None
    )
    return ReplayInputs(
        results1=results1,
        mesh=mesh,
        memory=memory,
        wear=wear,
        policy=policy,
        injector=injector,
        llc=llc,
        merged=merged,
        cpts=cpts,
        threshold=config.criticality.threshold_percent / 100.0,
        block_cycles=config.criticality.block_cycles,
    )


def _kernel_engaged(use_kernel: bool | None, telemetry, prep: ReplayInputs) -> bool:
    """Resolve the ``use_kernel`` tri-state against the prepared run."""
    instrumented = telemetry is not None or prep.injector is not None
    if use_kernel is None:
        if instrumented or os.environ.get("REPRO_KERNEL", "1") == "0":
            return False
        return kernel_supported(prep.llc)
    if use_kernel:
        if instrumented or not kernel_supported(prep.llc):
            raise ReproError(
                "the replay kernel cannot drive this run (telemetry/fault "
                "instrumentation attached, or an unsupported policy or "
                "cache mode); drop use_kernel=True to use the reference path"
            )
        return True
    return False


def run_workload(
    workload: Workload,
    scheme: str,
    config: SystemConfig | None = None,
    *,
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    fault_config: FaultConfig | None = None,
    telemetry: Telemetry | None = None,
    ledger=None,
    use_kernel: bool | None = None,
    spans=None,
) -> WorkloadSchemeResult:
    """Stage-2 simulation of one workload under one NUCA scheme.

    ``fault_config`` injects end-of-life faults: after warm-up, the wear
    snapshot of the warmed LLC seeds the deterministic fault derivation
    (hot banks/sets have consumed more endurance), dead frames and banks
    are retired, and the measured phase runs on the degraded cache.  The
    run always completes; degradation shows up in the result's
    ``effective_capacity``/``remap_traffic``/IPC instead of exceptions.

    ``telemetry`` opts into observability (see ``docs/OBSERVABILITY.md``):
    the components register their instruments on its registry, structured
    events flow to its trace, the run is phase-timed by its profiler,
    and — when ``telemetry.interval_instructions`` is set — the measured
    phase periodically snapshots the registry into the result's
    ``intervals`` series.  Passing ``None`` (the default) leaves the
    simulation on its un-instrumented fast path.

    ``ledger`` — a :class:`~repro.obs.ledger.RunLedger` or its path —
    appends one provenance record for this run (identity, fingerprint,
    wall time, headline metrics, and — when the telemetry profiler is
    enabled — this run's phase totals).  Sweeps should pass the ledger
    to :func:`run_matrix`/``run_jobs`` instead, which also stamp how
    each cell was resolved.

    ``use_kernel`` selects the measured-loop implementation: ``None``
    (default) auto-engages the vectorized replay kernel
    (:mod:`repro.nuca.kernel`) whenever the run is un-instrumented —
    no telemetry, no fault injection — and the configuration is
    supported; ``True`` forces it (raising :class:`ReproError` when it
    cannot run); ``False`` pins the reference object-graph path.  Both
    paths produce field-for-field identical results (see
    ``docs/PERFORMANCE.md``); ``REPRO_KERNEL=0`` in the environment
    disables auto-engagement globally.

    ``spans`` — a :class:`~repro.obs.spans.SpanRecorder` — brackets the
    run's phases (stage1 / warm-up / measure / reduce) as spans for the
    live-monitoring layer (see ``docs/OBSERVABILITY.md``).  It is
    deliberately separate from ``telemetry``: span brackets sit outside
    the measured loop, so a spans-only run keeps the vectorized kernel
    engaged.  Defaults to ``telemetry.spans`` when a handle carries
    one, else to the disabled recorder.
    """
    stage1 = Stage1Cache() if stage1 is None else stage1
    if telemetry is not None:
        stage1.bind_telemetry(telemetry.registry)
    if spans is None:
        spans = (
            telemetry.spans
            if telemetry is not None and telemetry.spans is not None
            else DISABLED_SPANS
        )
    prof = telemetry.profiler if telemetry is not None else DISABLED_PROFILER
    # Ledger provenance: wall time from here; profiler phase totals as a
    # delta, so a handle reused across runs records only this run's share.
    run_started = time.perf_counter()
    prof_before = prof.export_state() if prof.enabled else []
    config = config or baseline_config()
    prep = prepare_replay(
        workload, scheme, config,
        seed=seed, n_instructions=n_instructions, stage1=stage1,
        fault_config=fault_config, telemetry=telemetry, prof=prof,
        spans=spans,
    )
    results1 = prep.results1
    mesh = prep.mesh
    policy = prep.policy
    llc = prep.llc
    merged = prep.merged
    cpts = prep.cpts

    # Telemetry wiring for the measured phase.  Everything below stays
    # None/0 without a telemetry handle, so the reference loop's added
    # cost in the disabled case is a couple of short-circuited tests.
    cpt_predicted = cpt_mispredicts = None
    snapshot = None
    intervals: IntervalSeries | None = None
    interval_every = 0
    total_instr = int(sum(r.instructions for r in results1))
    if cpts is not None and telemetry is not None:
        bind_cpt_telemetry(telemetry.registry, cpts)
        cpt_predicted = telemetry.registry.counter("cpt.predictions")
        cpt_mispredicts = telemetry.registry.counter("cpt.mispredicts")
    if telemetry is not None and telemetry.interval_instructions > 0:
        # The interval unit is committed instructions (gem5-style); the
        # loop walks LLC accesses, so convert via the measured run's
        # instructions-per-access ratio.
        interval_every = max(
            1,
            round(
                merged.total * telemetry.interval_instructions
                / max(1, total_instr)
            ),
        )
        intervals = IntervalSeries(telemetry.interval_instructions)
        snapshot = telemetry.registry.snapshot

    fast = _kernel_engaged(use_kernel, telemetry, prep)
    with prof.phase("measure"), spans.span("measure", kernel=fast):
        if fast:
            scheme_lat_sorted = kernel_replay(
                llc, merged,
                cpts=cpts, threshold=prep.threshold,
                block_cycles=prep.block_cycles,
            )
        else:
            scheme_lat_sorted = _replay_reference(
                llc, merged,
                cpts=cpts, threshold=prep.threshold,
                block_cycles=prep.block_cycles,
                telemetry=telemetry, intervals=intervals,
                interval_every=interval_every, total_instr=total_instr,
                cpt_predicted=cpt_predicted, cpt_mispredicts=cpt_mispredicts,
            )
    if intervals is not None:
        # Close the series so delta sums always equal the run totals.
        intervals.record(
            accesses=merged.total,
            instructions=total_instr,
            cycles=float(merged.ts[-1]) if merged.total else 0.0,
            sample=snapshot(),
        )

    with prof.phase("reduce"), spans.span("reduce"):
        # Un-sort latencies back to per-core record order.
        scheme_lat = np.empty(merged.total, dtype=np.float32)
        scheme_lat[merged.order] = scheme_lat_sorted

        # Per-core IPC via the exposure model.
        n_cores = len(results1)
        ipc = np.zeros(n_cores)
        instructions = np.zeros(n_cores, dtype=np.int64)
        cycles = np.zeros(n_cores)
        for core, result in enumerate(results1):
            lo, hi = merged.measured_slices[core]
            delta = float(result.stream.exposure_delta(scheme_lat[lo:hi]).sum())
            core_cycles = max(1.0, result.cycles + delta)
            cycles[core] = core_cycles
            instructions[core] = result.instructions
            ipc[core] = result.instructions / core_cycles

        elapsed = float(cycles.max())
        lifetimes = lifetimes_for_banks(
            llc.wear.bank_writes,
            elapsed,
            config.core.clock_hz,
            lines_per_bank=config.l3_bank.num_lines,
            cell_endurance=config.reram.cell_endurance,
            wear_spread=config.reram.intra_bank_wear_spread,
        )

    critical_fraction = getattr(policy, "critical_fraction", 0.0)
    result = WorkloadSchemeResult(
        workload=workload.name,
        scheme=scheme,
        apps=workload.apps,
        per_core_ipc=ipc,
        per_core_instructions=instructions,
        per_core_cycles=cycles,
        bank_writes=llc.wear.bank_writes.copy(),
        bank_lifetimes=lifetimes,
        elapsed_cycles=elapsed,
        llc_fetch_hit_rate=llc.stats.fetch_hit_rate,
        llc_mean_fetch_latency=llc.stats.mean_fetch_latency,
        noc_mean_hops=mesh.stats.mean_hops,
        critical_fill_fraction=critical_fraction,
        llc_fetches=llc.stats.fetches,
        llc_writebacks=llc.stats.writebacks,
        noc_total_hops=mesh.stats.total_hops,
        age_fraction=fault_config.age_fraction if fault_config else 0.0,
        effective_capacity=llc.effective_capacity_fraction(),
        dead_banks=llc.dead_bank_count,
        remap_traffic=llc.stats.remap_traffic,
        fills_skipped=llc.stats.fills_skipped,
        transient_faults=llc.stats.transient_faults,
        intervals=intervals,
    )
    result.energy_mj = energy_of_result(result, config).total_mj

    if ledger is not None:
        from repro.jobs.spec import JobSpec
        from repro.obs.ledger import RunRecord, as_ledger

        profile: dict[str, float] = {}
        if prof.enabled:
            before = {tuple(p): s for p, _calls, s in prof_before}
            for path, _calls, seconds in prof.export_state():
                share = seconds - before.get(tuple(path), 0.0)
                if share > 0.0:
                    profile["/".join(path)] = share
        fingerprint = JobSpec.for_run(
            workload, scheme, config,
            seed=seed, n_instructions=n_instructions,
            fault_config=fault_config,
        ).fingerprint()
        with as_ledger(ledger) as run_ledger:
            run_ledger.append(RunRecord.for_result(
                result,
                seed=seed,
                n_instructions=n_instructions,
                wall_time_s=time.perf_counter() - run_started,
                fingerprint=fingerprint,
                profile=profile,
            ))

    return result


def _replay_reference(
    llc: NucaLLC,
    merged: _MergedStream,
    *,
    cpts,
    threshold: float,
    block_cycles: float,
    telemetry=None,
    intervals=None,
    interval_every: int = 0,
    total_instr: int = 0,
    cpt_predicted=None,
    cpt_mispredicts=None,
) -> np.ndarray:
    """The reference measured loop: one object-graph call per record.

    This is the semantic ground truth the kernel is verified against,
    and the only path able to carry telemetry/fault instrumentation.
    The numpy-to-list conversions live here so the kernel path never
    materializes the Python lists.
    """
    scheme_lat_sorted = np.zeros(merged.total, dtype=np.float32)
    fetch = llc.fetch
    writeback = llc.writeback
    trace = telemetry.trace if telemetry is not None else None
    snapshot = telemetry.registry.snapshot if telemetry is not None else None
    ts_l = merged.ts.tolist()
    core_l = merged.core.tolist()
    line_l = merged.line.tolist()
    wb_l = merged.is_wb.tolist()
    load_l = merged.is_load.tolist()
    pc_l = merged.pc.tolist()
    stall_l = merged.stall.tolist()
    slack_l = merged.slack.tolist()
    mlp_l = merged.mlp.tolist()
    nominal_l = merged.nominal.tolist()
    lat_out = scheme_lat_sorted  # direct ndarray indexing is fine for writes
    for i in range(merged.total):
        if interval_every and i and i % interval_every == 0:
            intervals.record(
                accesses=i,
                instructions=(i * total_instr) // merged.total,
                cycles=ts_l[i],
                sample=snapshot(),
            )
            if trace is not None:
                trace.emit(
                    "run.interval", ts=ts_l[i],
                    index=len(intervals) - 1, accesses=i,
                )
        core = core_l[i]
        if wb_l[i]:
            writeback(core, line_l[i], ts_l[i])
            continue
        if cpts is not None and load_l[i]:
            ratio = cpts[core].ratio(pc_l[i])
            predicted = ratio is not None and ratio >= threshold
        else:
            predicted = False
        lat, _hit = fetch(core, line_l[i], ts_l[i], predicted)
        lat_out[i] = lat
        if cpts is not None and load_l[i]:
            # Ground truth under this scheme's latency (exposure model).
            diff = lat - nominal_l[i]
            stall = stall_l[i]
            if stall > 0:
                stall2 = stall + diff / mlp_l[i]
            else:
                stall2 = (diff - slack_l[i]) / mlp_l[i]
            blocked = stall2 >= block_cycles
            cpts[core].observe_commit(pc_l[i], blocked)
            if cpt_mispredicts is not None:
                if predicted:
                    cpt_predicted.inc()
                if predicted != blocked:
                    cpt_mispredicts.inc()
                if trace is not None:
                    trace.emit(
                        "cpt.predict", ts=ts_l[i], core=core,
                        pc=pc_l[i], predicted=predicted, blocked=blocked,
                    )
    return scheme_lat_sorted


def run_matrix(
    workloads: list[Workload],
    schemes: tuple[str, ...],
    config: SystemConfig | None = None,
    *,
    label: str = "baseline",
    seed: int | None = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    stage1: Stage1Cache | None = None,
    stage1_store=None,
    fault_config: FaultConfig | None = None,
    telemetry: Telemetry | None = None,
    progress=None,
    parallel: int = 1,
    cache_dir=None,
    journal=None,
    resume: bool = False,
    retries: int = 1,
    observer=None,
    ledger=None,
    job_timeout_s: float | None = None,
    keep_going: bool = False,
    quarantine=None,
    chaos=None,
    spans=None,
) -> MatrixResult:
    """Run every workload under every scheme (the paper's result grid).

    ``progress`` is an optional callback ``(workload, scheme) -> None``
    invoked before each stage-2 run (the benches use it for narration).
    ``fault_config`` applies the same fault-injection point to every cell.
    ``telemetry`` is shared by every cell: counters accumulate across the
    grid while gauges always reflect the most recent run.

    The grid is resolved by the sweep engine (see ``docs/SWEEPS.md``):

    * ``parallel`` — worker processes; 1 (the default) runs in-process
      with ``stage1`` shared across cells, exactly the historical serial
      behaviour.  For the same seed a parallel run produces a matrix
      field-for-field equal to the serial one (per-job randomness
      derives from ``(seed, workload, scheme)``, never from scheduling).
      With ``parallel > 1`` the per-cell telemetry of each worker is
      merged back deterministically; a caller-supplied ``stage1`` is
      not consulted (workers keep their own).
    * ``cache_dir`` — content-addressed result cache directory; cells
      whose inputs are unchanged are served without simulating.
    * ``stage1_store`` — shared on-disk stage-1 store
      (:class:`~repro.sim.stage1_store.Stage1Store` or a directory
      path); workers and repeat runs reuse one characterisation per
      (app, config, seed, budget) instead of re-simulating it.
    * ``journal``/``resume`` — append-only completion journal enabling
      resumption of an interrupted sweep.
    * ``retries`` — per-cell retries on transient (non-``ReproError``)
      failures.
    * ``observer`` — live :class:`~repro.obs.progress.JobEvent` hook
      (what ``repro sweep --progress`` renders).
    * ``ledger`` — :class:`~repro.obs.ledger.RunLedger` (or path); one
      provenance record per cell, appended after the grid resolves.
    * ``job_timeout_s``/``keep_going``/``quarantine``/``chaos`` — the
      resilience knobs of :func:`repro.jobs.scheduler.run_jobs`:
      watchdog deadline, quarantine-and-continue for poison cells
      (FAILED placeholders land in the matrix), the quarantine journal
      path and the chaos-injection plan (tests/CI only).  See
      ``docs/RESILIENCE.md``.
    """
    from repro.jobs.scheduler import matrix_jobs, run_jobs

    config = config or baseline_config()
    matrix = MatrixResult(
        label=label,
        schemes=tuple(schemes),
        workloads=tuple(wl.name for wl in workloads),
    )
    jobs = matrix_jobs(
        workloads, tuple(schemes), config,
        seed=seed, n_instructions=n_instructions, fault_config=fault_config,
    )
    results, _report = run_jobs(
        jobs,
        max_workers=parallel,
        cache=cache_dir,
        journal=journal,
        resume=resume,
        retries=retries,
        stage1=stage1,
        stage1_store=stage1_store,
        telemetry=telemetry,
        progress=(
            None if progress is None
            else lambda job: progress(job.spec.workload, job.spec.scheme)
        ),
        observer=observer,
        ledger=ledger,
        job_timeout_s=job_timeout_s,
        keep_going=keep_going,
        quarantine=quarantine,
        chaos=chaos,
        spans=spans,
    )
    for result in results:
        matrix.add(result)
    return matrix
