"""Main-memory timing model.

Table I's machine uses JEDEC DDR3 with an FR-FCFS scheduler; what the
evaluation actually depends on is (a) a large fixed miss penalty and
(b) bandwidth back-pressure when many cores stream at once.  The model
here provides exactly those two effects: each line-sized request pays a fixed
``latency_cycles`` plus queueing behind a single service pipe with a
configurable lines-per-cycle rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.config import MemoryConfig


@dataclass
class MemoryStats:
    """Request accounting for one memory channel group."""

    requests: int = 0
    row_hits: int = 0
    total_queue_cycles: float = 0.0

    @property
    def mean_queue_cycles(self) -> float:
        """Mean cycles spent waiting for the service pipe."""
        return self.total_queue_cycles / self.requests if self.requests else 0.0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        return self.row_hits / self.requests if self.requests else 0.0


@dataclass
class MainMemory:
    """DDR3-like memory: open-row locality + a bandwidth-limited pipe.

    ``request(now, line)`` returns the cycle at which the requested line
    is available.  Requests are serviced in arrival order: each occupies
    the service pipe for ``1 / bandwidth_lines_per_cycle`` cycles (burst
    back-pressure), and pays the row-hit latency when it lands in the
    row left open by the previous access to the same DRAM bank — the
    FR-FCFS behaviour that makes sequential streams much cheaper than
    pointer chases.
    """

    config: MemoryConfig
    stats: MemoryStats = field(default_factory=MemoryStats)
    _pipe_free: float = 0.0

    def __post_init__(self) -> None:
        self._row_shift = (self.config.lines_per_row - 1).bit_length()
        self._bank_mask = self.config.dram_banks - 1
        self._open_rows: dict[int, int] = {}

    def request(self, now: float, line: int | None = None) -> float:
        """Issue one line fetch/writeback at cycle ``now``.

        Args:
            now: request arrival cycle.
            line: line address (None = assume a row miss; used by paths
                that have no address, e.g. abstract victims).

        Returns:
            Completion cycle (data available / write retired).
        """
        if now < 0:
            raise SimulationError(f"memory request at negative time {now}")
        service = 1.0 / self.config.bandwidth_lines_per_cycle
        start = max(now, self._pipe_free)
        self._pipe_free = start + service
        self.stats.requests += 1
        self.stats.total_queue_cycles += start - now
        latency = self.config.latency_cycles
        if line is not None:
            row = line >> self._row_shift
            bank = row & self._bank_mask
            if self._open_rows.get(bank) == row:
                latency = self.config.row_hit_latency_cycles
                self.stats.row_hits += 1
            else:
                self._open_rows[bank] = row
        return start + latency

    def reset(self) -> None:
        """Clear queue/row state and statistics."""
        self.stats = MemoryStats()
        self._pipe_free = 0.0
        self._open_rows.clear()
