"""Main-memory substrate (DDR3-like fixed latency + bandwidth queue)."""

from repro.mem.model import MainMemory, MemoryStats

__all__ = ["MainMemory", "MemoryStats"]
