"""Enhanced TLB with per-line Mapping Bit Vectors — Section IV-C.

Each TLB entry covers one 4-KB page and is augmented with a 64-bit
Mapping Bit Vector (MBV): bit *i* records how line *i* of the page is
currently mapped in the LLC (0 = S-NUCA / non-critical, 1 = R-NUCA /
critical).  The vector is consulted on every L2 miss so the controller
knows which mapping function locates the line, and updated when a line is
allocated (to the predicted criticality) or evicted from the LLC (reset
to 0, as the paper requires).

The paper leaves the fate of MBV state on a TLB *entry* eviction
unspecified; we write the vector back to a page-table-side backing store
and restore it on refill (one extra PTE field), because silently zeroing
it would strand R-NUCA-resident lines where no lookup can find them.
This choice is recorded in DESIGN.md; the write-back/refill traffic is
counted in :class:`TlbStats` so its cost is visible.

Geometry follows the paper: 64 entries, 8-way set-associative, per L1I
and L1D (we model the data-side instance; 64 bits x 64 entries = 512 B
of MBV state per instance, 1 KB per core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import SetAssocArray
from repro.common.errors import SimulationError
from repro.common.units import log2_exact
from repro.config import TlbConfig


@dataclass
class TlbStats:
    """Enhanced-TLB event counters."""

    lookups: int = 0
    hits: int = 0
    refills: int = 0
    evictions: int = 0
    mbv_writebacks: int = 0
    mbv_restores: int = 0

    @property
    def hit_rate(self) -> float:
        """TLB hit rate over lookups."""
        return self.hits / self.lookups if self.lookups else 0.0


class EnhancedTlb:
    """One core's data-side enhanced TLB.

    The interface is line-address based (the simulator's currency); the
    TLB internally splits a line address into page number and
    line-in-page index.

    ``lines_per_page`` is fixed at 64 for the default 4-KB page / 64-B
    line geometry but derives from the config so alternative geometries
    stay testable.
    """

    def __init__(self, config: TlbConfig | None = None, *, line_bytes: int = 64) -> None:
        self.config = config or TlbConfig()
        self.lines_per_page = self.config.page_bytes // line_bytes
        self._line_shift = log2_exact(self.lines_per_page)
        self._line_mask = self.lines_per_page - 1
        self.stats = TlbStats()
        self._array = SetAssocArray(self.config.num_sets, self.config.assoc)
        self._set_mask = self.config.num_sets - 1
        # Page-table backing store for MBVs of non-resident pages.
        self._backing: dict[int, int] = {}
        # Optional telemetry: an EventTrace receiving tlb.mbv_flip events
        # (None keeps the mapping-bit paths free of any tracing work).
        self._trace = None
        self._core: int | None = None

    def attach_trace(self, trace, *, core: int | None = None) -> None:
        """Emit ``tlb.mbv_flip`` events (bit transitions) to ``trace``.

        ``core`` labels the events with the owning core's id.  Pass
        ``None`` to detach.
        """
        self._trace = trace
        self._core = core

    # -- address helpers -------------------------------------------------------

    def page_of(self, line: int) -> int:
        """Line address -> page number."""
        return line >> self._line_shift

    def line_index(self, line: int) -> int:
        """Line address -> bit index within the page's MBV."""
        return line & self._line_mask

    # -- the MBV protocol --------------------------------------------------------

    def mapping_bit(self, line: int) -> bool:
        """Read the mapping bit for ``line`` (True = R-NUCA / critical).

        Touches the TLB (counts a lookup, refills on miss) because the
        hardware reads the MBV from the TLB entry during address
        translation.
        """
        mbv_ref = self._touch(self.page_of(line))
        return bool((mbv_ref[0] >> self.line_index(line)) & 1)

    def set_mapping_bit(self, line: int, critical: bool) -> None:
        """Record the mapping used when ``line`` was allocated in the LLC."""
        page = self.page_of(line)
        mbv_ref = self._touch(page, count_lookup=False)
        bit = 1 << self.line_index(line)
        if self._trace is not None and bool(mbv_ref[0] & bit) != critical:
            self._trace.emit(
                "tlb.mbv_flip",
                core=self._core, page=page,
                line_index=self.line_index(line), value=critical,
            )
        if critical:
            mbv_ref[0] |= bit
        else:
            mbv_ref[0] &= ~bit

    def clear_mapping_bit(self, line: int) -> None:
        """Reset the bit when ``line`` is evicted from the LLC.

        The eviction may belong to a page whose TLB entry is gone; the
        backing store is updated directly in that case (the hardware
        analogue is the PTE update on the eventual writeback path).
        """
        page = self.page_of(line)
        bit = 1 << self.line_index(line)
        set_idx = page & self._set_mask
        entry = self._array.lookup(set_idx, page, touch=False)
        if entry is not None:
            if self._trace is not None and entry[0] & bit:
                self._trace.emit(
                    "tlb.mbv_flip",
                    core=self._core, page=page,
                    line_index=self.line_index(line), value=False,
                )
            entry[0] &= ~bit
        elif page in self._backing:
            if self._trace is not None and self._backing[page] & bit:
                self._trace.emit(
                    "tlb.mbv_flip",
                    core=self._core, page=page,
                    line_index=self.line_index(line), value=False,
                )
            self._backing[page] &= ~bit
            if not self._backing[page]:
                del self._backing[page]

    # -- internals ----------------------------------------------------------------

    def _touch(self, page: int, *, count_lookup: bool = True) -> list[int]:
        """Return the (mutable) MBV holder for ``page``, refilling on miss."""
        if count_lookup:
            self.stats.lookups += 1
        set_idx = page & self._set_mask
        entry = self._array.lookup(set_idx, page)
        if entry is not None:
            if count_lookup:
                self.stats.hits += 1
            return entry
        # Refill: restore the MBV from the page table.
        self.stats.refills += 1
        restored = self._backing.pop(page, 0)
        if restored:
            self.stats.mbv_restores += 1
        holder = [restored]
        victim = self._array.insert(set_idx, page, holder)
        if victim is not None:
            victim_page, victim_entry = victim
            self.stats.evictions += 1
            if victim_entry[0]:
                self._backing[victim_page] = victim_entry[0]
                self.stats.mbv_writebacks += 1
        return holder

    # -- inspection -----------------------------------------------------------------

    def resident_pages(self) -> list[int]:
        """Pages currently holding a TLB entry (test helper)."""
        return [page for _s, page, _e in self._array.iter_all()]

    def mbv_of_page(self, page: int) -> int:
        """Full 64-bit MBV of a page, wherever it currently lives."""
        set_idx = page & self._set_mask
        entry = self._array.lookup(set_idx, page, touch=False)
        if entry is not None:
            return entry[0]
        return self._backing.get(page, 0)

    def check_invariants(self) -> None:
        """Backing store must never shadow a resident page."""
        for page in self.resident_pages():
            if page in self._backing:
                raise SimulationError(
                    f"page {page:#x} resident in TLB but also in backing store"
                )
