"""The paper's primary contribution: Re-NUCA.

Three cooperating mechanisms (Section IV):

* :mod:`repro.core.criticality` — the Criticality Predictor Table (CPT),
  a PC-indexed table of ``robBlockCount`` / ``numLoadsCount`` counters
  that classifies a load as critical when its historical ROB-head-block
  ratio reaches the criticality threshold (3% by default).
* :mod:`repro.core.tlb` — the enhanced TLB whose 64-bit Mapping Bit
  Vector remembers, per cache line of each page, which mapping function
  (S-NUCA or R-NUCA) the line was allocated with.
* :mod:`repro.core.renuca` — the hybrid mapping policy itself: critical
  lines are placed in the R-NUCA cluster near the requesting core,
  non-critical lines are spread over all banks with S-NUCA.
"""

from repro.core.criticality import (
    CriticalityPredictor,
    CriticalityMeters,
    STANDARD_THRESHOLDS,
)
from repro.core.tlb import EnhancedTlb, TlbStats
from repro.core.renuca import ReNucaPolicy

__all__ = [
    "CriticalityPredictor",
    "CriticalityMeters",
    "STANDARD_THRESHOLDS",
    "EnhancedTlb",
    "TlbStats",
    "ReNucaPolicy",
]
