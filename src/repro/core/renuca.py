"""The Re-NUCA hybrid mapping policy — Section IV.

Placement rule:

* a fill predicted **critical** is placed with the R-NUCA mapping, in the
  4-bank cluster at most one hop from the requesting core;
* a fill predicted **non-critical** is placed with the S-NUCA mapping,
  spread over all 16 banks — distributing both the fill itself and every
  future write-back of the line.

The *current* mapping of each line is remembered in the requesting
core's enhanced TLB (one Mapping Bit per line of each page): lookups read
the bit to know which mapping function locates the line, allocations set
it to the prediction, and LLC evictions reset it to 0.  A line therefore
keeps one mapping for its whole on-chip lifetime, exactly as the paper
specifies ("since a cache line does not change the criticality status in
its on-chip lifetime, we do not need to update the MBV bits ... unless
the cache line is to be evicted").

Because a line is first brought in "assumed not critical" when its PC has
no predictor history, Re-NUCA biases toward lifetime first and earns back
latency once the predictor warms up — the behaviour behind the paper's
"best of both worlds" claim.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.config import SystemConfig
from repro.core.tlb import EnhancedTlb
from repro.noc.mesh import Mesh
from repro.nuca.policies import MappingPolicy
from repro.nuca.rnuca import RNucaPolicy
from repro.nuca.snuca import SNucaPolicy


class ReNucaPolicy(MappingPolicy):
    """Hybrid S-NUCA / R-NUCA placement keyed on predicted criticality."""

    name = "Re-NUCA"
    consumes_criticality = True

    def __init__(self, config: SystemConfig, mesh: Mesh) -> None:
        self.config = config
        self._snuca = SNucaPolicy(config.num_banks)
        self._rnuca = RNucaPolicy(mesh, config.rnuca_cluster_size)
        self.tlbs = [
            EnhancedTlb(config.tlb, line_bytes=config.l3_bank.line_bytes)
            for _ in range(config.num_cores)
        ]
        self.critical_allocations = 0
        self.noncritical_allocations = 0

    # -- MappingPolicy interface ------------------------------------------------

    def locate(self, core: int, line: int) -> int:
        """Read the core's Mapping Bit to pick the mapping function."""
        if self.tlbs[core].mapping_bit(line):
            return self._rnuca.bank_of(core, line)
        return self._snuca.locate(core, line)

    def place(self, core: int, line: int, critical: bool) -> int:
        """Critical fills go near the core, non-critical fills spread out."""
        if critical:
            return self._rnuca.bank_of(core, line)
        return self._snuca.place(core, line, critical)

    def writeback_bank(self, core: int, line: int) -> int:
        """A write-back re-allocation keeps the line's recorded mapping."""
        return self.locate(core, line)

    def on_allocate(self, core: int, line: int, bank: int, critical: bool) -> None:
        """Record the mapping choice in the owner's enhanced TLB."""
        self.tlbs[core].set_mapping_bit(line, critical)
        if critical:
            self.critical_allocations += 1
        else:
            self.noncritical_allocations += 1

    def on_evict(self, line: int, bank: int, aux: object) -> None:
        """LLC eviction resets the line's Mapping Bit (Section IV-C).

        ``aux`` carries the owning core recorded at fill time; without it
        the bit could not be found (line address spaces are per-core).
        """
        if not isinstance(aux, tuple) or len(aux) != 2:
            raise SimulationError(f"Re-NUCA eviction without owner aux for {line:#x}")
        owner, _critical = aux
        self.tlbs[owner].clear_mapping_bit(line)

    def reset_counters(self) -> None:
        """Zero the allocation-mix counters (after warm-up prefill)."""
        self.critical_allocations = 0
        self.noncritical_allocations = 0

    def reset(self) -> None:
        """Fresh TLBs and counters (between workloads)."""
        self.tlbs = [
            EnhancedTlb(self.config.tlb, line_bytes=self.config.l3_bank.line_bytes)
            for _ in range(self.config.num_cores)
        ]
        self.critical_allocations = 0
        self.noncritical_allocations = 0

    # -- telemetry ------------------------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Register Re-NUCA gauges and wire MBV-flip tracing into the TLBs.

        Gauges cover the placement mix (critical vs. spread fills) and
        the aggregate enhanced-TLB behaviour (hit rate, MBV write-back /
        restore traffic — the mechanism's storage cost made visible).
        """
        self.telemetry = telemetry
        registry = telemetry.registry
        registry.gauge(
            "renuca.critical_allocations", lambda: self.critical_allocations
        )
        registry.gauge(
            "renuca.noncritical_allocations",
            lambda: self.noncritical_allocations,
        )
        registry.gauge("renuca.critical_fraction", lambda: self.critical_fraction)
        registry.gauge(
            "tlb.lookups", lambda: sum(t.stats.lookups for t in self.tlbs)
        )
        registry.gauge("tlb.hits", lambda: sum(t.stats.hits for t in self.tlbs))
        registry.gauge(
            "tlb.mbv_writebacks",
            lambda: sum(t.stats.mbv_writebacks for t in self.tlbs),
        )
        registry.gauge(
            "tlb.mbv_restores",
            lambda: sum(t.stats.mbv_restores for t in self.tlbs),
        )
        if telemetry.trace is not None:
            for core, tlb in enumerate(self.tlbs):
                tlb.attach_trace(telemetry.trace, core=core)

    # -- reporting ------------------------------------------------------------------

    @property
    def critical_fraction(self) -> float:
        """Share of fills that went through the R-NUCA mapping."""
        total = self.critical_allocations + self.noncritical_allocations
        return self.critical_allocations / total if total else 0.0

    def storage_overhead_bytes(self) -> int:
        """Extra state of the mechanism: MBV bits across all TLBs.

        64 entries x 64 bits = 512 B per TLB instance; the paper doubles
        it for L1I+L1D (1 KB/core, 16 KB for the machine).  We model the
        data-side instance and report the paper's full figure.
        """
        per_tlb = self.config.tlb.entries * self.tlbs[0].lines_per_page // 8
        return 2 * per_tlb * self.config.num_cores
