"""The Criticality Predictor Table (CPT) — Section IV-B.

Each entry pairs a load PC with two counters:

* ``num_loads`` — loads issued by this PC so far (incremented at issue,
  Figure 6 step 2),
* ``rob_blocks`` — how many of them went on to block the ROB head
  (incremented at commit when the stall is observed, Figure 6 step 3).

A load is *predicted critical* when ``rob_blocks >= (x/100) * num_loads``
with ``x`` the criticality threshold (3% default — Figure 7 shows lower
thresholds predict better under the paper's accuracy definition).  A PC
with no entry predicts non-critical ("when a cache line is brought to the
cache for the first time, we assume it is not critical"); its entry is
inserted when the load commits.

Unlike the ranking predictor of Ghose et al. [3], no stall-time fields
are kept — the single threshold comparison is the paper's stated
simplification.

:class:`CriticalityMeters` additionally evaluates *all* standard
thresholds side-by-side in one run (for Figures 7/8/9) by snapshotting
the counter ratio at issue time and scoring each threshold against the
commit-time ground truth.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.config import CriticalityConfig

#: The thresholds swept in Figures 7, 8 and 9 (percent).
STANDARD_THRESHOLDS: tuple[float, ...] = (3, 5, 10, 20, 25, 33, 50, 75, 100)


@dataclass
class CptStats:
    """Predictor bookkeeping counters."""

    lookups: int = 0
    lookup_hits: int = 0
    predictions_critical: int = 0
    inserts: int = 0
    evictions: int = 0


class CriticalityPredictor:
    """PC-indexed criticality predictor with a bounded table.

    The table evicts its least-recently-touched entry when full (the
    paper does not give a CPT capacity; 4096 entries comfortably covers
    the synthetic apps' PC working sets and the capacity is
    configurable).
    """

    def __init__(self, config: CriticalityConfig | None = None) -> None:
        self.config = config or CriticalityConfig()
        if self.config.table_entries <= 0:
            raise ConfigError("CPT capacity must be positive")
        self.threshold = self.config.threshold_percent / 100.0
        self.stats = CptStats()
        # pc -> [num_loads, rob_blocks]
        self._table: OrderedDict[int, list[int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._table)

    def ratio(self, pc: int) -> float | None:
        """Current block ratio of a PC, or None when untracked.

        Also counts the issue-side ``num_loads`` increment (Figure 6
        step 2), so call exactly once per issued load.
        """
        self.stats.lookups += 1
        entry = self._table.get(pc)
        if entry is None:
            return None
        self.stats.lookup_hits += 1
        self._table.move_to_end(pc)
        ratio = entry[1] / entry[0] if entry[0] else 0.0
        entry[0] += 1
        return ratio

    def predict(self, pc: int) -> bool:
        """Predict at issue whether this load is critical."""
        ratio = self.ratio(pc)
        critical = ratio is not None and ratio >= self.threshold
        if critical:
            self.stats.predictions_critical += 1
        return critical

    def observe_commit(self, pc: int, blocked: bool) -> None:
        """Commit-time update (Figure 6 step 3 / new-entry insertion)."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.config.table_entries:
                self._table.popitem(last=False)
                self.stats.evictions += 1
            self._table[pc] = [1, 1 if blocked else 0]
            self.stats.inserts += 1
            return
        if blocked:
            entry[1] += 1

    def snapshot(self) -> dict[int, tuple[int, int]]:
        """Copy of the table contents (num_loads, rob_blocks) per PC."""
        return {pc: (e[0], e[1]) for pc, e in self._table.items()}

    def bind_telemetry(self, registry, *, prefix: str = "cpt") -> None:
        """Register gauges over this predictor's counters under ``prefix``."""
        registry.gauge(f"{prefix}.lookups", lambda: self.stats.lookups)
        registry.gauge(f"{prefix}.lookup_hits", lambda: self.stats.lookup_hits)
        registry.gauge(
            f"{prefix}.predictions_critical",
            lambda: self.stats.predictions_critical,
        )
        registry.gauge(f"{prefix}.inserts", lambda: self.stats.inserts)
        registry.gauge(f"{prefix}.evictions", lambda: self.stats.evictions)
        registry.gauge(f"{prefix}.entries", lambda: len(self._table))


def bind_cpt_telemetry(registry, cpts) -> None:
    """Register aggregate ``cpt.*`` gauges over a group of predictors.

    The stage-2 runner drives one :class:`CriticalityPredictor` per core;
    the interval dumps want machine-level series, so the gauges sum over
    the group.  (``cpt.predictions`` / ``cpt.mispredicts`` counters are
    incremented by the runner itself, which is the only place issue-time
    predictions meet commit-time ground truth.)
    """
    cpts = list(cpts)
    registry.gauge("cpt.lookups", lambda: sum(c.stats.lookups for c in cpts))
    registry.gauge(
        "cpt.lookup_hits", lambda: sum(c.stats.lookup_hits for c in cpts)
    )
    registry.gauge("cpt.inserts", lambda: sum(c.stats.inserts for c in cpts))
    registry.gauge("cpt.evictions", lambda: sum(c.stats.evictions for c in cpts))
    registry.gauge("cpt.entries", lambda: sum(len(c) for c in cpts))


@dataclass
class CriticalityMeters:
    """Multi-threshold accounting for Figures 5, 7, 8 and 9.

    The core feeds it three event kinds:

    * :meth:`load_committed` — every committed load, with the CPT ratio
      that was current at its issue and the ground-truth blocked flag
      (Figure 5 = blocked fraction; Figure 7 = per-threshold accuracy).
    * :meth:`block_fetched` — every cache block fetched from memory, with
      its issue-time ratio (Figure 8 = per-threshold non-critical share).
    * :meth:`block_written` — every write into the LLC (fill or
      write-back), with the ratio the written block was fetched under
      (Figure 9 = per-threshold non-critical-write share).

    "Accuracy" follows the paper's framing: among loads that truly block
    the ROB head, the fraction the predictor flags as critical — which is
    why a 100% threshold scores ~14.5% and 3% scores ~83% in Figure 7.
    """

    thresholds: tuple[float, ...] = STANDARD_THRESHOLDS
    loads: int = 0
    blocked_loads: int = 0
    #: Per-threshold count of truly-blocked loads predicted critical.
    true_positive: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Per-threshold count of loads predicted critical.
    predicted_critical: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Per-threshold count of correct predictions (either direction).
    agree: np.ndarray = field(default=None)  # type: ignore[assignment]
    fetches: int = 0
    noncritical_fetches: np.ndarray = field(default=None)  # type: ignore[assignment]
    writes: int = 0
    noncritical_writes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(self.thresholds)
        self._cuts = np.asarray(self.thresholds, dtype=np.float64) / 100.0
        for name in (
            "true_positive",
            "predicted_critical",
            "agree",
            "noncritical_fetches",
            "noncritical_writes",
        ):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(n, dtype=np.int64))

    def _critical_mask(self, ratio: float | None) -> np.ndarray:
        if ratio is None:
            return np.zeros(len(self._cuts), dtype=bool)
        return ratio >= self._cuts

    def load_committed(self, issue_ratio: float | None, blocked: bool) -> None:
        """Record one committed load (all loads, hits included)."""
        self.loads += 1
        mask = self._critical_mask(issue_ratio)
        self.predicted_critical += mask
        if blocked:
            self.blocked_loads += 1
            self.true_positive += mask
            self.agree += mask
        else:
            self.agree += ~mask

    def block_fetched(self, issue_ratio: float | None) -> None:
        """Record one block fetched from memory into the LLC."""
        self.fetches += 1
        self.noncritical_fetches += ~self._critical_mask(issue_ratio)

    def block_written(self, fetch_ratio: float | None) -> None:
        """Record one LLC write (fill or write-back) and its block's ratio."""
        self.writes += 1
        self.noncritical_writes += ~self._critical_mask(fetch_ratio)

    # -- figure extraction -----------------------------------------------------

    @property
    def noncritical_load_percent(self) -> float:
        """Figure 5: percent of loads that do not block the ROB head."""
        if not self.loads:
            return 0.0
        return 100.0 * (1.0 - self.blocked_loads / self.loads)

    def accuracy_percent(self) -> dict[float, float]:
        """Figure 7: per-threshold accuracy (recall of blocking loads)."""
        out = {}
        for i, t in enumerate(self.thresholds):
            denom = self.blocked_loads
            out[t] = 100.0 * self.true_positive[i] / denom if denom else 0.0
        return out

    def agreement_percent(self) -> dict[float, float]:
        """Per-threshold overall agreement with ground truth (both classes)."""
        return {
            t: (100.0 * self.agree[i] / self.loads if self.loads else 0.0)
            for i, t in enumerate(self.thresholds)
        }

    def noncritical_block_percent(self) -> dict[float, float]:
        """Figure 8: per-threshold percent of fetched blocks non-critical."""
        return {
            t: (100.0 * self.noncritical_fetches[i] / self.fetches if self.fetches else 0.0)
            for i, t in enumerate(self.thresholds)
        }

    def noncritical_write_percent(self) -> dict[float, float]:
        """Figure 9: per-threshold percent of LLC writes to non-critical blocks."""
        return {
            t: (100.0 * self.noncritical_writes[i] / self.writes if self.writes else 0.0)
            for i, t in enumerate(self.thresholds)
        }
