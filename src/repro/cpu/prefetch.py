"""Region-based stream prefetcher (L2-side).

Sequential misses are the easiest memory traffic to hide: a stream
prefetcher watching the L2 miss stream detects an ascending pattern
within an address region and runs ahead of the demand loads, so the
loads themselves complete with L2-hit-like latency.  The *traffic* to
the L3/memory is unchanged — every line is still fetched once — but its
latency is absorbed off the critical path.

This component is what separates bandwidth-bound from latency-bound
behaviour in the criticality sense of the paper: streaming loads stop
blocking the ROB head (their PCs settle far below any criticality
threshold), while pointer chases — unpredictable by a stride detector —
keep their full, ROB-blocking latency.  Without it, every burst-leader
stream miss registers as critical and the paper's ~50/50 critical split
(Figures 8/9) cannot arise.

The detector keeps one entry per active region (``region = line >>
region_shift``): the last line touched there.  A miss landing within
``max_stride`` lines above its region's previous miss counts as
stream-covered; anything else (first touch of a region, backward or
random jumps) is a demand miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass
class PrefetchStats:
    """Detector outcome counters."""

    queries: int = 0
    covered: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of misses the prefetcher ran ahead of."""
        return self.covered / self.queries if self.queries else 0.0


class StreamPrefetcher:
    """Region-based ascending-stream detector with bounded state.

    Args:
        region_shift: log2 of the region size in lines (10 -> 64 KB
            regions for 64-B lines).
        max_stride: largest forward jump (in lines) still considered part
            of the stream (covers read-modify-write duplicates and small
            skips).
        max_regions: detector capacity; least-recently-active regions are
            evicted (a real prefetcher has a handful of stream slots).
    """

    def __init__(
        self,
        *,
        region_shift: int = 10,
        max_stride: int = 4,
        max_regions: int = 64,
    ) -> None:
        if region_shift < 0:
            raise ConfigError("region shift cannot be negative")
        if max_stride < 1:
            raise ConfigError("max stride must be at least one line")
        if max_regions < 1:
            raise ConfigError("need at least one detector slot")
        self.region_shift = region_shift
        self.max_stride = max_stride
        self.max_regions = max_regions
        self.stats = PrefetchStats()
        self._last: OrderedDict[int, int] = OrderedDict()

    def covers(self, line: int) -> bool:
        """Record an L2 miss to ``line``; True when prefetch-covered.

        A covered miss means the prefetcher had already issued the fetch
        and the demand load completes at L2-hit latency; the caller still
        sends the fetch down the hierarchy (it is the prefetch itself).
        """
        self.stats.queries += 1
        region = line >> self.region_shift
        last = self._last.get(region)
        if last is None:
            if len(self._last) >= self.max_regions:
                self._last.popitem(last=False)
        else:
            self._last.move_to_end(region)
        self._last[region] = line
        if last is not None and 0 < line - last <= self.max_stride:
            self.stats.covered += 1
            return True
        return False

    def reset(self) -> None:
        """Forget all streams."""
        self._last.clear()
        self.stats = PrefetchStats()
