"""Vectorized stage-1 characterisation kernel (the un-instrumented fast path).

The stage-1 hot loop replays hundreds of thousands of trace bundles; the
reference implementation (:meth:`~repro.cpu.core.AppSimulator.run`) walks
the full object graph per record — :meth:`~repro.cache.cache.Cache.access`
(one frozen ``AccessResult`` per level), :meth:`~repro.cpu.rob.
ReorderBuffer.dispatch` (one ``CommittedLoad`` per retired load),
:meth:`~repro.core.criticality.CriticalityMeters.load_committed` (three
numpy element-wise ops per commit) and method dispatch for the CPT, MSHR
file, stream prefetcher and memory pipe.  This module replays the same
bundle chunks with

* the live per-set tag dicts (:meth:`~repro.cache.cache.Cache.set_views`)
  mutated in place — a hit is one C-level ``pop`` + re-insert, a fill
  evicts ``next(iter(ways))``; the warmed ``Cache`` objects' arrays *are*
  the kernel's L1/L2/L3 state, so warm-up and final content need no
  translation;
* the ROB interval arithmetic, CPT issue-query/commit-update, MSHR
  occupancy, stream-prefetch detector and open-row memory pipe inlined as
  local scalars and plain dicts (zero per-record allocations), preserving
  the reference's exact floating-point operation order;
* the criticality meters **deferred**: per-event ``(ratio, blocked)``
  tuples are collected and reduced with batched numpy sums at the end
  (the meter updates are commutative integer adds, unlike the CPT's
  order-sensitive issue/commit interleaving, which stays inline).

Equivalence contract: for every supported configuration the kernel
produces a **field-for-field identical**
:class:`~repro.cpu.core.Stage1Result` to the reference path — Table II
statistics, criticality meters and the full L3 reference stream
including ``stall``/``slack``/``mlp``.  Statistics are transferred back
into the live objects (cache/MSHR/CPT/prefetch/memory stats, ROB clocks,
CPT table) so the simulator reads identically afterwards.

The kernel only drives caches in their native-LRU, un-degraded mode;
:func:`kernel_supported` is the single gate (see
:meth:`~repro.cpu.core.AppSimulator.run`'s ``use_kernel`` tri-state).
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro.common.errors import SimulationError
from repro.common.rng import derive_rng
from repro.trace.generator import bundles_for_instructions, generate_trace


def kernel_supported(sim) -> bool:
    """True when the kernel can reproduce ``sim`` bit-for-bit.

    The kernel drives the set dicts directly under the native-LRU
    invariants: insertion order is recency order, the set index is
    ``line & (num_sets - 1)``, and every set has its full associativity.
    Pluggable replacement policies, retired ways (fault degradation),
    index shifts and wear rotations all break those invariants.
    """
    for cache in (sim.l1d, sim.l2, sim.l3):
        if (
            cache._policy is not None
            or cache._way_limits is not None
            or cache.index_shift != 0
            or cache._rotation != 0
        ):
            return False
    return True


def characterize(sim, n_instructions: int, *, base_line: int = 0):
    """Kernel counterpart of :meth:`~repro.cpu.core.AppSimulator.run`."""
    from repro.cache.cache import CacheStats
    from repro.cache.mshr import MshrStats
    from repro.core.criticality import CptStats
    from repro.cpu.core import _CHUNK_BUNDLES, Stage1Result
    from repro.cpu.prefetch import PrefetchStats
    from repro.mem.model import MemoryStats

    if n_instructions <= 0:
        raise SimulationError("instruction budget must be positive")
    sim._warm_caches(base_line)
    params = sim.params
    profile = sim.profile
    rng = derive_rng(sim.seed, "trace", profile.name)
    cursor_rng = derive_rng(sim.seed, "cursors", profile.name)
    stream_cursor = int(cursor_rng.integers(0, params.stream_lines))
    mid_cursor = int(cursor_rng.integers(0, params.mid_lines))
    total_bundles = bundles_for_instructions(params, n_instructions)
    done_bundles = 0

    # --- cache state: the warmed Cache objects' live per-set dicts --------
    l1, l2, l3 = sim.l1d, sim.l2, sim.l3
    l1_sets = l1._array.set_views()
    l2_sets = l2._array.set_views()
    l3_sets = l3._array.set_views()
    l1_mask = l1.num_sets - 1
    l2_mask = l2.num_sets - 1
    l3_mask = l3.num_sets - 1
    l1_assoc = l1.config.assoc
    l2_assoc = l2.config.assoc
    l3_assoc = l3.config.assoc
    l1_dr = l1_dw = l1_hits = l1_misses = l1_fills = l1_wb = l1_clean = 0
    l2_dr = l2_dw = l2_hits = l2_misses = l2_fills = l2_wb = l2_clean = 0
    l3_dr = l3_hits = l3_misses = l3_fills = l3_wb = l3_clean = 0

    # --- ROB interval model as local scalars ------------------------------
    rob = sim.rob
    base_cpi = rob.base_cpi
    pipeline_depth = rob.pipeline_depth
    rob_entries = rob.entries
    disp_clock = rob.dispatch_clock
    disp_idx = rob.dispatch_index
    commit_clock = rob.commit_clock
    commit_idx = rob.commit_index
    total_stall = rob.total_stall_cycles
    loads_committed = rob.loads_committed
    loads_blocked = rob.loads_blocked
    pending: deque[tuple[int, float, int, float]] = deque(rob._pending)
    pending_append = pending.append
    pending_popleft = pending.popleft

    # --- CPT as a plain dict (insertion order == recency order) -----------
    cpt = sim.cpt
    cpt_table: dict[int, list[int]] = dict(cpt._table)
    cpt_get = cpt_table.get
    cpt_cap = cpt.config.table_entries
    cpt_lookups = cpt.stats.lookups
    cpt_lookup_hits = cpt.stats.lookup_hits
    cpt_inserts = cpt.stats.inserts
    cpt_evictions = cpt.stats.evictions

    # --- MSHR / prefetcher / memory pipe ----------------------------------
    mshr_d = sim.mshr._pending
    mshr_cap = sim.mshr.capacity
    mshr_primary = sim.mshr.stats.primary_misses
    mshr_secondary = sim.mshr.stats.secondary_misses

    pf = sim.prefetcher
    pf_d = pf._last
    pf_get = pf_d.get
    pf_move = pf_d.move_to_end
    pf_pop = pf_d.popitem
    pf_shift = pf.region_shift
    pf_stride = pf.max_stride
    pf_max = pf.max_regions
    pf_queries = pf.stats.queries
    pf_covered = pf.stats.covered

    mem = sim.memory
    mem_service = 1.0 / mem.config.bandwidth_lines_per_cycle
    mem_latency = mem.config.latency_cycles
    row_hit_latency = mem.config.row_hit_latency_cycles
    row_shift = mem._row_shift
    bank_mask = mem._bank_mask
    open_rows = mem._open_rows
    open_get = open_rows.get
    pipe_free = mem._pipe_free
    mem_requests = mem.stats.requests
    mem_row_hits = mem.stats.row_hits
    mem_queue = mem.stats.total_queue_cycles

    threshold = sim._threshold
    block_cycles = sim._block_cycles
    l1_lat = float(sim.config.l1.latency)
    upper_lat = sim._upper_lat
    l3_hit_lat = sim._l3_hit_lat

    # --- stream columns + per-load bookkeeping ----------------------------
    ts_col: list[float] = []
    line_col: list[int] = []
    pc_col: list[int] = []
    wb_col: list[bool] = []
    load_col: list[bool] = []
    pred_col: list[bool] = []
    nominal_col: list[float] = []
    mlp_col: list[int] = []
    slack_col: list[float] = []
    stall_col: list[float] = []
    ts_append = ts_col.append
    line_append = line_col.append
    pc_append = pc_col.append
    wb_append = wb_col.append
    load_append = load_col.append
    pred_append = pred_col.append
    nominal_append = nominal_col.append
    mlp_append = mlp_col.append
    slack_append = slack_col.append
    stall_append = stall_col.append

    load_pc: list[int] = []
    load_ratio: list[float | None] = []
    load_rec: list[int] = []
    load_pc_append = load_pc.append
    load_ratio_append = load_ratio.append
    load_rec_append = load_rec.append

    line_ratio: dict[int, float | None] = {}
    line_ratio_get = line_ratio.get

    # --- deferred meter events (reduced with batched numpy at the end) ----
    commit_ratios: list[float | None] = []
    commit_blocked: list[bool] = []
    fetch_ratios: list[float | None] = []
    write_ratios: list[float | None] = []
    commit_ratios_append = commit_ratios.append
    commit_blocked_append = commit_blocked.append
    fetch_ratios_append = fetch_ratios.append
    write_ratios_append = write_ratios.append

    def commit_upto(target: int) -> None:
        # ReorderBuffer._commit_upto with the commit-side CPT update and
        # meter deferral fused in (commit handling of the reference loop).
        nonlocal commit_clock, commit_idx, total_stall
        nonlocal loads_committed, loads_blocked, cpt_inserts, cpt_evictions
        while pending and pending[0][0] <= target:
            idx, complete, token, dispatched = pending_popleft()
            head_arrival = commit_clock + (idx - commit_idx) * base_cpi
            alt = dispatched + pipeline_depth
            if alt > head_arrival:
                head_arrival = alt
            stall = complete - head_arrival
            if stall > 0:
                total_stall += stall
                commit_clock = complete
            else:
                stall = 0.0
                commit_clock = head_arrival
            commit_idx = idx + 1
            loads_committed += 1
            if stall >= 1.0:
                loads_blocked += 1
            blocked = stall >= block_cycles
            lpc = load_pc[token]
            entry = cpt_get(lpc)
            if entry is None:
                if len(cpt_table) >= cpt_cap:
                    del cpt_table[next(iter(cpt_table))]
                    cpt_evictions += 1
                cpt_table[lpc] = [1, 1 if blocked else 0]
                cpt_inserts += 1
            elif blocked:
                entry[1] += 1
            commit_ratios_append(load_ratio[token])
            commit_blocked_append(blocked)
            rec = load_rec[token]
            if rec >= 0:
                stall_col[rec] = stall
        if target >= commit_idx:
            commit_clock += (target - commit_idx + 1) * base_cpi
            commit_idx = target + 1

    def emit_writeback(wline: int, now: float) -> None:
        # AppSimulator._emit_writeback: stream record + nominal-L3 absorb.
        nonlocal l3_fills, l3_wb, l3_clean
        ts_append(now)
        line_append(wline)
        pc_append(0)
        wb_append(True)
        load_append(False)
        pred_append(False)
        nominal_append(0.0)
        mlp_append(1)
        slack_append(0.0)
        stall_append(0.0)
        ways3 = l3_sets[wline & l3_mask]
        entry3 = ways3.get(wline)
        if entry3 is not None:
            entry3[0] = True
        else:
            l3_fills += 1
            if len(ways3) >= l3_assoc:
                victim3 = ways3.pop(next(iter(ways3)))
                if victim3[0]:
                    l3_wb += 1
                else:
                    l3_clean += 1
            ways3[wline] = [True, None]
        write_ratios_append(line_ratio_get(wline))

    chase_ready = 0.0
    while done_bundles < total_bundles:
        chunk = min(_CHUNK_BUNDLES, total_bundles - done_bundles)
        trace = generate_trace(
            params,
            chunk,
            rng,
            base_line=base_line,
            stream_cursor=stream_cursor,
            mid_cursor=mid_cursor,
        )
        primary = ~trace["is_write"]
        stream_cursor += int(np.count_nonzero((trace["kind"] == 2) & primary))
        mid_cursor += int(np.count_nonzero((trace["kind"] == 1) & primary))
        done_bundles += chunk

        gaps = trace["gap"].tolist()
        pcs = trace["pc"].tolist()
        lines = trace["line"].tolist()
        writes = trace["is_write"].tolist()
        deps = trace["dep"].tolist()

        for gap, pc, line, is_write, dep in zip(gaps, pcs, lines, writes, deps):
            # --- rob.dispatch(gap + 1), commits handled inline ------------
            count = gap + 1
            new_index = disp_idx + count
            need = new_index - 1 - rob_entries
            limit = disp_idx - 1
            if limit < need:
                need = limit
            if need >= commit_idx:
                commit_upto(need)
                disp_clock += count * base_cpi
                if disp_clock < commit_clock:
                    disp_clock = commit_clock
            else:
                disp_clock += count * base_cpi
            disp_idx = new_index
            while pending and pending[0][1] <= disp_clock - pipeline_depth:
                commit_upto(pending[0][0])
            now = disp_clock

            # --- issue-side CPT query (loads only) ------------------------
            if is_write:
                ratio = None
                predicted = False
            else:
                cpt_lookups += 1
                entry = cpt_get(pc)
                if entry is None:
                    ratio = None
                    predicted = False
                else:
                    cpt_lookup_hits += 1
                    del cpt_table[pc]
                    cpt_table[pc] = entry
                    n0 = entry[0]
                    ratio = entry[1] / n0 if n0 else 0.0
                    entry[0] = n0 + 1
                    predicted = ratio >= threshold

            # --- cache walk ----------------------------------------------
            rec_idx = -1
            if is_write:
                l1_dw += 1
            else:
                l1_dr += 1
            ways1 = l1_sets[line & l1_mask]
            entry1 = ways1.pop(line, None)
            if entry1 is not None:
                ways1[line] = entry1
                l1_hits += 1
                if is_write:
                    entry1[0] = True
                latency = l1_lat
            else:
                l1_misses += 1
                l1_fills += 1
                victim1 = None
                if len(ways1) >= l1_assoc:
                    vline1 = next(iter(ways1))
                    victim1 = ways1.pop(vline1)
                    if victim1[0]:
                        l1_wb += 1
                    else:
                        l1_clean += 1
                ways1[line] = [is_write, None]
                if victim1 is not None and victim1[0]:
                    # _l2_absorb: the L2 soaks up the dirty L1 victim.
                    ways2v = l2_sets[vline1 & l2_mask]
                    entry2v = ways2v.get(vline1)
                    if entry2v is not None:
                        entry2v[0] = True
                    else:
                        l2_fills += 1
                        dirty_victim = -1
                        if len(ways2v) >= l2_assoc:
                            wline = next(iter(ways2v))
                            wentry = ways2v.pop(wline)
                            if wentry[0]:
                                l2_wb += 1
                                dirty_victim = wline
                            else:
                                l2_clean += 1
                        ways2v[vline1] = [True, None]
                        if dirty_victim >= 0:
                            emit_writeback(dirty_victim, now)
                if is_write:
                    l2_dw += 1
                else:
                    l2_dr += 1
                ways2 = l2_sets[line & l2_mask]
                entry2 = ways2.pop(line, None)
                if entry2 is not None:
                    ways2[line] = entry2
                    l2_hits += 1
                    if is_write:
                        entry2[0] = True
                    latency = upper_lat
                else:
                    l2_misses += 1
                    l2_fills += 1
                    dirty_victim = -1
                    if len(ways2) >= l2_assoc:
                        wline = next(iter(ways2))
                        wentry = ways2.pop(wline)
                        if wentry[0]:
                            l2_wb += 1
                            dirty_victim = wline
                        else:
                            l2_clean += 1
                    ways2[line] = [is_write, None]
                    if dirty_victim >= 0:
                        emit_writeback(dirty_victim, now)

                    # --- L3 reference (fetch) -------------------------
                    pf_queries += 1
                    region = line >> pf_shift
                    last = pf_get(region)
                    if last is None:
                        if len(pf_d) >= pf_max:
                            pf_pop(last=False)
                    else:
                        pf_move(region)
                    pf_d[region] = line
                    if last is not None and 0 < line - last <= pf_stride:
                        pf_covered += 1
                        covered = True
                    else:
                        covered = False

                    l3_dr += 1
                    ways3 = l3_sets[line & l3_mask]
                    entry3 = ways3.pop(line, None)
                    if entry3 is not None:
                        ways3[line] = entry3
                        l3_hits += 1
                        hit3 = True
                        l3_lat = l3_hit_lat
                    else:
                        l3_misses += 1
                        l3_fills += 1
                        if len(ways3) >= l3_assoc:
                            victim3 = ways3.pop(next(iter(ways3)))
                            if victim3[0]:
                                l3_wb += 1
                            else:
                                l3_clean += 1
                        ways3[line] = [False, None]
                        req_t = now + l3_hit_lat
                        start = req_t if req_t > pipe_free else pipe_free
                        pipe_free = start + mem_service
                        mem_requests += 1
                        mem_queue += start - req_t
                        row = line >> row_shift
                        bank = row & bank_mask
                        if open_get(bank) == row:
                            mem_row_hits += 1
                            ready = start + row_hit_latency
                        else:
                            open_rows[bank] = row
                            ready = start + mem_latency
                        hit3 = False
                        l3_lat = l3_hit_lat + (ready - req_t)

                    if covered:
                        latency = upper_lat
                        ratio = None
                        predicted = False
                    else:
                        latency = upper_lat + l3_lat
                    rec_idx = len(ts_col)
                    ts_append(now)
                    line_append(line)
                    pc_append(pc)
                    wb_append(False)
                    load_append(not is_write and not covered)
                    pred_append(predicted)
                    nominal_append(l3_lat)
                    free = rob_entries - (disp_idx - commit_idx)
                    slack_append((free if free > 0 else 0) * base_cpi)
                    stall_append(0.0)
                    line_ratio[line] = ratio
                    if not hit3:
                        fetch_ratios_append(ratio)
                        write_ratios_append(ratio)

            # --- issue timing --------------------------------------------
            issue = now
            if dep and not is_write:
                if chase_ready > issue:
                    issue = chase_ready
            if rec_idx >= 0:
                if latency > upper_lat:
                    if mshr_d:
                        done = [ml for ml, mt in mshr_d.items() if mt <= issue]
                        for ml in done:
                            del mshr_d[ml]
                    if len(mshr_d) >= mshr_cap and line not in mshr_d:
                        issue = min(mshr_d.values())
                        done = [ml for ml, mt in mshr_d.items() if mt <= issue]
                        for ml in done:
                            del mshr_d[ml]
                    complete = issue + latency
                    if line in mshr_d:
                        mshr_secondary += 1
                    else:
                        mshr_d[line] = complete
                        mshr_primary += 1
                    outstanding = len(mshr_d)
                    mlp_append(outstanding if outstanding > 1 else 1)
                else:
                    complete = issue + latency
                    mlp_append(1)
            else:
                complete = issue + latency

            if dep and not is_write:
                chase_ready = complete

            if not is_write:
                token = len(load_pc)
                load_pc_append(pc)
                load_ratio_append(ratio)
                load_rec_append(rec_idx)
                pending_append((disp_idx - 1, complete, token, disp_clock))

    commit_upto(disp_idx - 1)  # rob.drain()

    # --- batched meter reduction ------------------------------------------
    meters = sim.meters
    cuts = meters._cuts
    nan = float("nan")
    if commit_ratios:
        ratios = np.array(
            [nan if r is None else r for r in commit_ratios], dtype=np.float64
        )
        mask = ratios[:, None] >= cuts  # NaN rows -> all-False, like None
        blocked_arr = np.array(commit_blocked, dtype=bool)
        tp = mask[blocked_arr].sum(axis=0, dtype=np.int64)
        meters.loads += len(commit_ratios)
        meters.blocked_loads += int(np.count_nonzero(blocked_arr))
        meters.predicted_critical += mask.sum(axis=0, dtype=np.int64)
        meters.true_positive += tp
        meters.agree += tp + (~mask[~blocked_arr]).sum(axis=0, dtype=np.int64)
    if fetch_ratios:
        ratios = np.array(
            [nan if r is None else r for r in fetch_ratios], dtype=np.float64
        )
        meters.fetches += len(fetch_ratios)
        meters.noncritical_fetches += (~(ratios[:, None] >= cuts)).sum(
            axis=0, dtype=np.int64
        )
    if write_ratios:
        ratios = np.array(
            [nan if r is None else r for r in write_ratios], dtype=np.float64
        )
        meters.writes += len(write_ratios)
        meters.noncritical_writes += (~(ratios[:, None] >= cuts)).sum(
            axis=0, dtype=np.int64
        )

    # --- transfer state/statistics back into the live objects -------------
    rob.dispatch_clock = disp_clock
    rob.dispatch_index = disp_idx
    rob.commit_clock = commit_clock
    rob.commit_index = commit_idx
    rob.total_stall_cycles = total_stall
    rob.loads_committed = loads_committed
    rob.loads_blocked = loads_blocked
    rob._pending = pending

    l1.stats = CacheStats(
        demand_reads=l1_dr, demand_writes=l1_dw, hits=l1_hits,
        misses=l1_misses, fills=l1_fills, writebacks=l1_wb,
        clean_evictions=l1_clean,
    )
    l2.stats = CacheStats(
        demand_reads=l2_dr, demand_writes=l2_dw, hits=l2_hits,
        misses=l2_misses, fills=l2_fills, writebacks=l2_wb,
        clean_evictions=l2_clean,
    )
    l3.stats = CacheStats(
        demand_reads=l3_dr, demand_writes=0, hits=l3_hits,
        misses=l3_misses, fills=l3_fills, writebacks=l3_wb,
        clean_evictions=l3_clean,
    )
    sim.mshr.stats = MshrStats(
        primary_misses=mshr_primary, secondary_misses=mshr_secondary,
    )
    cpt.stats = CptStats(
        lookups=cpt_lookups, lookup_hits=cpt_lookup_hits,
        inserts=cpt_inserts, evictions=cpt_evictions,
    )
    cpt._table = OrderedDict(cpt_table)
    pf.stats = PrefetchStats(queries=pf_queries, covered=pf_covered)
    mem._pipe_free = pipe_free
    mem.stats = MemoryStats(
        requests=mem_requests, row_hits=mem_row_hits,
        total_queue_cycles=mem_queue,
    )

    stream = sim._finalize_stream(
        ts_col, line_col, pc_col, wb_col, load_col, pred_col,
        nominal_col, mlp_col, slack_col, stall_col,
    )
    return Stage1Result(
        app=profile.name,
        instructions=commit_idx,
        cycles=commit_clock if commit_clock >= disp_clock else disp_clock,
        base_cpi=sim.base_cpi,
        stream=stream,
        meters=meters,
        l1_stats=l1.stats,
        l2_stats=l2.stats,
        l3_stats=l3.stats,
        mshr_stats=sim.mshr.stats,
        cpt_stats=cpt.stats,
        mem_queue_cycles=mem.stats.mean_queue_cycles,
    )
