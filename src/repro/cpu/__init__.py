"""Out-of-order core substrate.

The paper's criticality signal is micro-architectural: a load is critical
iff it blocks the head of the ReOrder Buffer (Section IV-A).
:mod:`repro.cpu.rob` models exactly that — in-order commit over an
out-of-order backend — and :mod:`repro.cpu.core` wraps it into a
trace-driven interval core that produces per-load stall ground truth,
IPC, and the L3 reference stream consumed by the NUCA stage.
"""

from repro.cpu.rob import CommittedLoad, ReorderBuffer
from repro.cpu.core import AppSimulator, Stage1Result

__all__ = ["CommittedLoad", "ReorderBuffer", "AppSimulator", "Stage1Result"]
