"""Stage-1 per-application simulation: core + private L1/L2 + nominal L3.

One :class:`AppSimulator` runs one synthetic application through

* the interval OoO core (:class:`~repro.cpu.rob.ReorderBuffer`) with an
  MSHR file bounding memory-level parallelism,
* its private L1D and L2 (write-back, write-allocate),
* a *nominal* L3 — a single private 2 MB bank, the paper's Table II
  characterisation configuration — and a private memory channel,
* the online Criticality Predictor Table, queried at issue and updated
  at commit, exactly as in Figure 6.

It produces:

* Table II statistics (IPC, WPKI, MPKI, L3 hit rate),
* criticality meters for Figures 5/7/8/9,
* the **L3 reference stream**: every L2 demand miss (fetch) and dirty L2
  eviction (write-back), timestamped in core cycles, annotated with the
  criticality prediction and with the latency-exposure data
  (``stall/slack/mlp``) that lets stage 2 translate a different L3
  latency into a commit-time delta without re-running the core — see
  :meth:`L3Stream.exposure_delta`.  ``mlp`` is the number of outstanding
  misses when the load issued (overlapped misses share latency changes)
  and ``slack`` is the ROB drain headroom an unblocked load still had.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile
from repro.common.errors import SimulationError
from repro.common.rng import derive_rng
from repro.config import SystemConfig, baseline_config
from repro.core.criticality import CriticalityMeters, CriticalityPredictor
from repro.cpu.prefetch import StreamPrefetcher
from repro.cpu.rob import ReorderBuffer
from repro.mem.model import MainMemory
from repro.trace.generator import generate_trace, bundles_for_instructions
from repro.trace.profiles import AppProfile, get_profile
from repro.trace.synthetic import GeneratorParams, derive_params

#: Default MSHR file size per core (bounds MLP; typical for OoO cores).
MSHR_ENTRIES = 16

#: ``slack`` value for references that can never expose latency (stores).
_NEVER_EXPOSED = 1e18

#: Trace generation chunk, in bundles.
_CHUNK_BUNDLES = 100_000


@dataclass
class L3Stream:
    """The per-app L3 reference stream (structure of arrays).

    Fetches and write-backs are interleaved in timestamp order; for
    write-backs only ``ts``/``line``/``is_wb`` are meaningful.
    """

    ts: np.ndarray          # float64, core cycle of the reference
    line: np.ndarray        # int64
    pc: np.ndarray          # uint32
    is_wb: np.ndarray       # bool  (True = L2 write-back)
    is_load: np.ndarray     # bool  (fetch triggered by a load)
    predicted: np.ndarray   # bool  (CPT prediction at configured threshold)
    true_critical: np.ndarray  # bool (commit-time ground truth)
    nominal_lat: np.ndarray  # float32, L3-portion latency on the nominal run
    stall: np.ndarray       # float32, observed head stall (nominal run)
    slack: np.ndarray       # float32, ROB drain headroom at issue (unblocked)
    mlp: np.ndarray         # int16, outstanding misses at issue (>= 1)

    def __len__(self) -> int:
        return len(self.ts)

    def exposure_delta(self, scheme_lat: np.ndarray) -> np.ndarray:
        """Per-record commit-time delta if the L3 portion took ``scheme_lat``.

        A load that blocked the ROB head on the nominal run moves commit
        time by ``(L - nominal) / mlp`` (overlapped misses share the
        change); an unblocked load only starts exposing latency once the
        change exceeds the drain headroom it had.  The delta is floored
        at ``-stall`` — a faster L3 can at most remove the stall that was
        observed.  Stores and write-backs (``mlp``-slot carriers with
        infinite slack) contribute nothing.
        """
        diff = scheme_lat - self.nominal_lat
        blocked = self.stall > 0
        delta = np.where(
            blocked,
            diff / self.mlp,
            np.maximum(0.0, diff - self.slack) / self.mlp,
        )
        return np.maximum(delta, -self.stall)


@dataclass
class Stage1Result:
    """Everything stage 2 and the experiment drivers need about one app."""

    app: str
    instructions: int
    cycles: float
    base_cpi: float
    stream: L3Stream
    meters: CriticalityMeters
    l1_stats: object
    l2_stats: object
    l3_stats: object
    mshr_stats: object
    cpt_stats: object
    mem_queue_cycles: float

    @property
    def ipc(self) -> float:
        """Single-core IPC on the nominal (Table II) configuration."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def wpki(self) -> float:
        """L2 write-backs per kilo-instruction (Table II WPKI)."""
        return 1000.0 * self.l2_stats.writebacks / self.instructions

    @property
    def mpki(self) -> float:
        """Nominal-L3 misses per kilo-instruction (Table II MPKI)."""
        return 1000.0 * self.l3_stats.misses / self.instructions

    @property
    def l3_hitrate(self) -> float:
        """Nominal-L3 demand hit rate (Table II Hitrate)."""
        return self.l3_stats.hit_rate

    @property
    def l3_apki(self) -> float:
        """L3 accesses (fetch stream, excl. write-backs) per kilo-instruction."""
        return 1000.0 * self.l3_stats.accesses / self.instructions


class AppSimulator:
    """Trace-driven stage-1 simulation of one application on one core."""

    def __init__(
        self,
        app: str | AppProfile,
        config: SystemConfig | None = None,
        *,
        seed: int | None = None,
        base_cpi: float | None = None,
        params: GeneratorParams | None = None,
        criticality_threshold: float | None = None,
    ) -> None:
        self.config = config or baseline_config()
        self.profile = get_profile(app) if isinstance(app, str) else app
        self.params = params or derive_params(self.profile, self.config)
        self.seed = seed
        # Until calibrated, approximate the non-memory CPI from the IPC
        # target (memory stalls will push measured CPI above this).
        self.base_cpi = (
            base_cpi
            if base_cpi is not None
            else max(0.25, min(20.0, 0.7 / self.profile.ipc))
        )
        threshold = (
            criticality_threshold
            if criticality_threshold is not None
            else self.config.criticality.threshold_percent
        )
        self._threshold = threshold / 100.0
        self._block_cycles = self.config.criticality.block_cycles

        core = self.config.core
        self.rob = ReorderBuffer(core.rob_entries, self.base_cpi)
        self.mshr = MshrFile(MSHR_ENTRIES)
        self.prefetcher = StreamPrefetcher()
        self.l1d = Cache(self.config.l1, name="L1D")
        self.l2 = Cache(self.config.l2, name="L2")
        # Nominal L3: one private bank (the Table II configuration).
        self.l3 = Cache(self.config.l3_bank, name="L3-nominal")
        self.memory = MainMemory(self.config.memory)
        self.cpt = CriticalityPredictor(
            type(self.config.criticality)(
                threshold_percent=threshold,
                table_entries=self.config.criticality.table_entries,
            )
        )
        self.meters = CriticalityMeters()
        # Nominal L3-portion latency of an L3 hit: one-hop round trip
        # plus the bank read (stage 2 recomputes per scheme).
        self._l3_hit_lat = float(
            2 * self.config.noc.hop_cycles + self.config.l3_bank.latency
        )
        self._upper_lat = float(self.config.l1.latency + self.config.l2.latency)

    # -- main loop ----------------------------------------------------------------

    def _kernel_engaged(self, use_kernel: bool | None) -> bool:
        """Resolve the ``use_kernel`` tri-state for this simulator."""
        from repro.cpu.kernel import kernel_supported

        if use_kernel is None:
            if os.environ.get("REPRO_KERNEL", "1") == "0":
                return False
            return kernel_supported(self)
        if use_kernel:
            if not kernel_supported(self):
                raise SimulationError(
                    "the stage-1 kernel cannot drive this run (a pluggable "
                    "replacement policy, retired ways, index shift or set "
                    "rotation is active); drop use_kernel=True to use the "
                    "reference path"
                )
            return True
        return False

    def run(
        self,
        n_instructions: int,
        *,
        base_line: int = 0,
        use_kernel: bool | None = None,
    ) -> Stage1Result:
        """Simulate approximately ``n_instructions`` committed instructions.

        ``use_kernel`` selects the loop implementation: ``None`` (default)
        auto-engages the vectorized characterisation kernel
        (:mod:`repro.cpu.kernel`) whenever the configuration is supported;
        ``True`` forces it (raising :class:`SimulationError` when it
        cannot run); ``False`` pins the reference object-graph path.  Both
        paths produce field-for-field identical results (see
        ``docs/PERFORMANCE.md``); ``REPRO_KERNEL=0`` in the environment
        disables auto-engagement globally.
        """
        if n_instructions <= 0:
            raise SimulationError("instruction budget must be positive")
        if self._kernel_engaged(use_kernel):
            from repro.cpu.kernel import characterize

            return characterize(self, n_instructions, base_line=base_line)
        self._warm_caches(base_line)
        rng = derive_rng(self.seed, "trace", self.profile.name)

        # Stream record columns (python lists; converted to numpy at the end).
        ts_col: list[float] = []
        line_col: list[int] = []
        pc_col: list[int] = []
        wb_col: list[bool] = []
        load_col: list[bool] = []
        pred_col: list[bool] = []
        nominal_col: list[float] = []
        mlp_col: list[int] = []
        slack_col: list[float] = []
        # Commit-time fills (indexed by stream record).
        stall_col: list[float] = []

        # Per-load bookkeeping, indexed by ROB token.
        load_pc: list[int] = []
        load_ratio: list[float | None] = []
        load_rec: list[int] = []  # stream record index, -1 if no fetch

        # line -> CPT ratio at fetch (for Figure 9 write attribution).
        line_ratio: dict[int, float | None] = {}

        chase_ready = 0.0
        total_bundles = bundles_for_instructions(self.params, n_instructions)
        done_bundles = 0
        # Random initial scan positions: every region base is bank 0 under
        # S-NUCA, so starting all apps' scans at offset 0 would pile the
        # short-run write traffic onto the low-numbered banks.
        cursor_rng = derive_rng(self.seed, "cursors", self.profile.name)
        stream_cursor = int(cursor_rng.integers(0, self.params.stream_lines))
        mid_cursor = int(cursor_rng.integers(0, self.params.mid_lines))

        l1d, l2, l3 = self.l1d, self.l2, self.l3
        rob, mshr, cpt, meters = self.rob, self.mshr, self.cpt, self.meters
        prefetcher = self.prefetcher
        threshold = self._threshold
        block_cycles = self._block_cycles
        l1_lat = float(self.config.l1.latency)
        upper_lat = self._upper_lat
        l3_hit_lat = self._l3_hit_lat

        def handle_commits(committed) -> None:
            for ev in committed:
                token = ev.token
                blocked = ev.stall_cycles >= block_cycles
                pc = load_pc[token]
                cpt.observe_commit(pc, blocked)
                meters.load_committed(load_ratio[token], blocked)
                rec = load_rec[token]
                if rec >= 0:
                    stall_col[rec] = ev.stall_cycles

        while done_bundles < total_bundles:
            chunk = min(_CHUNK_BUNDLES, total_bundles - done_bundles)
            trace = generate_trace(
                self.params,
                chunk,
                rng,
                base_line=base_line,
                stream_cursor=stream_cursor,
                mid_cursor=mid_cursor,
            )
            # Advance the sequential-population cursors by the number of
            # primary loads drawn (RMW store copies share their lines).
            primary = ~trace["is_write"]
            stream_cursor += int(np.count_nonzero((trace["kind"] == 2) & primary))
            mid_cursor += int(np.count_nonzero((trace["kind"] == 1) & primary))
            done_bundles += chunk

            gaps = trace["gap"].tolist()
            pcs = trace["pc"].tolist()
            lines = trace["line"].tolist()
            writes = trace["is_write"].tolist()
            deps = trace["dep"].tolist()

            for gap, pc, line, is_write, dep in zip(gaps, pcs, lines, writes, deps):
                handle_commits(rob.dispatch(gap + 1))
                now = rob.dispatch_clock

                # Issue-side CPT query (Figure 6 step 2) for loads.
                if is_write:
                    ratio = None
                    predicted = False
                else:
                    ratio = cpt.ratio(pc)
                    predicted = ratio is not None and ratio >= threshold

                # --- cache walk -------------------------------------------------
                rec_idx = -1
                r1 = l1d.access(line, is_write)
                if r1.hit:
                    latency = l1_lat
                else:
                    if r1.victim_dirty:
                        self._l2_absorb(r1.victim_line, now, ts_col, line_col,
                                        pc_col, wb_col, load_col, pred_col,
                                        nominal_col, mlp_col, slack_col,
                                        stall_col, line_ratio)
                    r2 = l2.access(line, is_write)
                    if r2.victim_dirty:
                        self._emit_writeback(r2.victim_line, now, ts_col,
                                             line_col, pc_col, wb_col, load_col,
                                             pred_col, nominal_col, mlp_col,
                                             slack_col, stall_col, line_ratio)
                    if r2.hit:
                        latency = upper_lat
                    else:
                        # --- L3 reference (fetch) -------------------------------
                        covered = prefetcher.covers(line)
                        hit3, l3_lat = self._nominal_l3_fetch(line, now)
                        if covered:
                            # The stream prefetcher already issued this
                            # fetch: the demand access completes like an
                            # L2 hit, the L3/memory traffic is the
                            # prefetch itself (non-critical by nature).
                            latency = upper_lat
                            ratio = None
                            predicted = False
                        else:
                            latency = upper_lat + l3_lat
                        rec_idx = len(ts_col)
                        ts_col.append(now)
                        line_col.append(line)
                        pc_col.append(pc)
                        wb_col.append(False)
                        load_col.append(not is_write and not covered)
                        pred_col.append(predicted)
                        nominal_col.append(l3_lat)
                        slack_col.append(rob.free_entries * self.base_cpi)
                        stall_col.append(0.0)
                        line_ratio[line] = ratio
                        if not hit3:
                            meters.block_fetched(ratio)
                            meters.block_written(ratio)  # the fill itself

                # --- issue timing ------------------------------------------------
                issue = now
                if dep and not is_write:
                    issue = max(issue, chase_ready)
                if rec_idx >= 0:
                    if latency > upper_lat:
                        # Demand miss: occupies an MSHR for its lifetime.
                        mshr.release_completed(issue)
                        if mshr.full and not mshr.is_pending(line):
                            issue = mshr.earliest_completion()
                            mshr.release_completed(issue)
                        complete = issue + latency
                        mshr.allocate(line, complete)
                        mlp_col.append(max(1, len(mshr)))
                    else:
                        complete = issue + latency
                        mlp_col.append(1)
                else:
                    complete = issue + latency

                if dep and not is_write:
                    chase_ready = complete

                if not is_write:
                    token = len(load_pc)
                    load_pc.append(pc)
                    load_ratio.append(ratio)
                    load_rec.append(rec_idx)
                    rob.push_load(complete, token)

        handle_commits(rob.drain())

        stream = self._finalize_stream(
            ts_col, line_col, pc_col, wb_col, load_col, pred_col,
            nominal_col, mlp_col, slack_col, stall_col,
        )
        return Stage1Result(
            app=self.profile.name,
            instructions=self.rob.commit_index,
            cycles=self.rob.cycles,
            base_cpi=self.base_cpi,
            stream=stream,
            meters=self.meters,
            l1_stats=self.l1d.stats,
            l2_stats=self.l2.stats,
            l3_stats=self.l3.stats,
            mshr_stats=self.mshr.stats,
            cpt_stats=self.cpt.stats,
            mem_queue_cycles=self.memory.stats.mean_queue_cycles,
        )

    # -- helpers -------------------------------------------------------------------

    def _warm_caches(self, base_line: int) -> None:
        """Install steady-state residency before measurement starts.

        Equivalent to the paper's 100 M-instruction warm-up: the hot set
        lives in L1/L2 and the mid (L3-resident) working set in the L3.
        Statistics are reset afterwards so cold compulsory misses of
        long-lived regions do not pollute the measured MPKI/WPKI.
        """
        from repro.cache.cache import CacheStats
        from repro.trace.synthetic import warm_sets

        sets = warm_sets(self.params, l2_lines=self.config.l2.num_lines)
        for line in sets["l1"]:
            self.l1d.allocate(line + base_line)
        for block in sets["l2_clean"]:
            for line in block:
                self.l2.allocate(line + base_line)
        stride = sets["l2_dirty_stride"]
        for i, line in enumerate(sets["l2_dirty_window"]):
            self.l2.allocate(line + base_line, dirty=bool(stride and i % stride == 0))
        for block in sets["l3"]:
            for line in block:
                self.l3.allocate(line + base_line)
        self.l1d.stats = CacheStats()
        self.l2.stats = CacheStats()
        self.l3.stats = CacheStats()

    def _nominal_l3_fetch(self, line: int, now: float) -> tuple[bool, float]:
        """Demand-fetch ``line`` in the nominal L3; returns (hit, latency)."""
        res = self.l3.access(line, False)
        if res.hit:
            return True, self._l3_hit_lat
        ready = self.memory.request(now + self._l3_hit_lat, line)
        return False, self._l3_hit_lat + (ready - (now + self._l3_hit_lat))

    def _l2_absorb(self, line, now, *cols) -> None:
        """Absorb a dirty L1 victim into the L2 (cascading if needed)."""
        if self.l2.contains(line):
            self.l2.mark_dirty(line)
            return
        res = self.l2.allocate(line, dirty=True)
        if res.victim_dirty:
            self._emit_writeback(res.victim_line, now, *cols)

    def _emit_writeback(
        self, line, now, ts_col, line_col, pc_col, wb_col, load_col,
        pred_col, nominal_col, mlp_col, slack_col, stall_col, line_ratio,
    ) -> None:
        """Record an L2 write-back in the stream + nominal L3 absorption."""
        ts_col.append(now)
        line_col.append(line)
        pc_col.append(0)
        wb_col.append(True)
        load_col.append(False)
        pred_col.append(False)
        nominal_col.append(0.0)
        mlp_col.append(1)
        slack_col.append(0.0)
        stall_col.append(0.0)
        # Nominal L3 absorbs the write-back (content fidelity + Fig. 9).
        if self.l3.contains(line):
            self.l3.mark_dirty(line)
        else:
            self.l3.allocate(line, dirty=True)
        self.meters.block_written(line_ratio.get(line))

    def _finalize_stream(
        self, ts_col, line_col, pc_col, wb_col, load_col, pred_col,
        nominal_col, mlp_col, slack_col, stall_col,
    ) -> L3Stream:
        ts = np.asarray(ts_col, dtype=np.float64)
        is_wb = np.asarray(wb_col, dtype=np.bool_)
        is_load = np.asarray(load_col, dtype=np.bool_)
        nominal = np.asarray(nominal_col, dtype=np.float32)
        stall = np.asarray(stall_col, dtype=np.float32)
        mlp = np.asarray(mlp_col, dtype=np.int16)
        slack = np.asarray(slack_col, dtype=np.float32)
        # Stores and write-backs never expose latency to commit.
        slack[~is_load] = _NEVER_EXPOSED
        return L3Stream(
            ts=ts,
            line=np.asarray(line_col, dtype=np.int64),
            pc=np.asarray(pc_col, dtype=np.uint32),
            is_wb=is_wb,
            is_load=is_load,
            predicted=np.asarray(pred_col, dtype=np.bool_),
            true_critical=stall >= self._block_cycles,
            nominal_lat=nominal,
            stall=stall,
            slack=slack,
            mlp=mlp,
        )
