"""ReOrder Buffer timing model (in-order commit over OoO execution).

The model is an *interval* simulation: non-memory instructions dispatch
and commit at a base rate (``base_cpi`` cycles per instruction, the
calibrated steady-state throughput of the app's non-memory work), while
loads carry explicit completion times from the cache hierarchy.  Three
mechanisms of a real OoO core are reproduced:

* **Head-of-ROB blocking** (the paper's criticality definition): a load
  reaches the ROB head once every older instruction has committed; if its
  data has not returned by then, the head stalls for the difference and
  the load is *critical*.
* **ROB back-pressure**: dispatch of instruction *n* cannot proceed until
  instruction *n - rob_entries* has committed, which is what bounds how
  much latency a burst of independent misses can hide.
* **Natural MLP hiding**: overlapped misses complete at staggered times,
  so only the first miss of a burst pays a large head stall — younger
  overlapped misses find most of their latency already drained when they
  reach the head.

A fixed ``pipeline_depth`` offset separates dispatch from the earliest
possible commit of the same instruction (front-end + execute + retire
stages), so short L1/L2 hits never register as head stalls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class CommittedLoad:
    """Commit-time outcome of one load."""

    token: int
    stall_cycles: float

    @property
    def blocked_head(self) -> bool:
        """True when the load blocked the ROB head (>= 1 full cycle)."""
        return self.stall_cycles >= 1.0


class ReorderBuffer:
    """Interval-model ROB: dispatch clock, commit clock, pending loads.

    Args:
        entries: ROB capacity in instructions (Table I: 128; 168 in the
            sensitivity study).
        base_cpi: cycles per instruction of non-blocked dispatch/commit.
        pipeline_depth: dispatch-to-earliest-commit offset in cycles.

    Usage: call :meth:`dispatch` for every instruction bundle (gap of
    non-memory instructions plus the memory instruction itself), then
    :meth:`push_load` for loads; committed loads come back — in program
    order — from the list returned by :meth:`dispatch`/:meth:`drain`.
    """

    def __init__(
        self, entries: int, base_cpi: float, *, pipeline_depth: float = 12.0
    ) -> None:
        if entries < 8:
            raise ConfigError(f"ROB entries must be >= 8, got {entries}")
        if base_cpi <= 0:
            raise ConfigError(f"base CPI must be positive, got {base_cpi}")
        if pipeline_depth < 0:
            raise ConfigError("pipeline depth cannot be negative")
        self.entries = entries
        self.base_cpi = base_cpi
        self.pipeline_depth = pipeline_depth
        # Dispatch side.
        self.dispatch_clock: float = 0.0
        self.dispatch_index: int = 0  # instructions dispatched so far
        # Commit side: commit_clock is when instruction commit_index-1
        # committed (i.e. all instructions < commit_index are committed).
        self.commit_clock: float = pipeline_depth
        self.commit_index: int = 0
        # In-flight loads in program order: (inst_idx, complete, token,
        # dispatch_time).
        self._pending: deque[tuple[int, float, int, float]] = deque()
        self.total_stall_cycles: float = 0.0
        self.loads_committed: int = 0
        self.loads_blocked: int = 0

    # -- dispatch side -------------------------------------------------------

    def dispatch(self, count: int) -> list[CommittedLoad]:
        """Dispatch ``count`` instructions at the base rate.

        Applies ROB back-pressure (forcing commits of old instructions as
        needed) and opportunistically retires loads whose data returned
        long ago, so predictor updates stay timely.

        Returns:
            Loads committed while making room, in program order.
        """
        if count < 0:
            raise SimulationError(f"cannot dispatch {count} instructions")
        committed: list[CommittedLoad] = []
        new_index = self.dispatch_index + count
        # ROB constraint: the last instruction of this batch needs
        # instruction (new_index - 1 - entries) committed first.  A batch
        # larger than the ROB (a very long non-memory gap) can only force
        # commits of instructions already dispatched; the in-batch excess
        # commits at the base rate anyway.
        need_committed_through = min(new_index - 1 - self.entries, self.dispatch_index - 1)
        if need_committed_through >= self.commit_index:
            self._commit_upto(need_committed_through, committed)
            self.dispatch_clock = max(
                self.dispatch_clock + count * self.base_cpi, self.commit_clock
            )
        else:
            self.dispatch_clock += count * self.base_cpi
        self.dispatch_index = new_index
        # Eager retire: anything already complete before current dispatch
        # time has certainly drained past the head.
        while self._pending and self._pending[0][1] <= self.dispatch_clock - self.pipeline_depth:
            idx = self._pending[0][0]
            self._commit_upto(idx, committed)
        return committed

    @property
    def occupancy(self) -> int:
        """Instructions dispatched but not yet committed."""
        return self.dispatch_index - self.commit_index

    @property
    def free_entries(self) -> int:
        """ROB slots available for further dispatch."""
        return max(0, self.entries - self.occupancy)

    def outstanding_loads(self, at_time: float) -> int:
        """In-flight loads whose data has not returned by ``at_time``."""
        return sum(1 for _i, complete, _t, _d in self._pending if complete > at_time)

    # -- execute side ----------------------------------------------------------

    def push_load(self, complete_time: float, token: int) -> None:
        """Register the just-dispatched instruction as a load.

        Must follow a :meth:`dispatch` whose last instruction is this
        load; ``complete_time`` is when its data returns, ``token`` is an
        opaque id handed back at commit.
        """
        inst_idx = self.dispatch_index - 1
        if self._pending and self._pending[-1][0] >= inst_idx:
            raise SimulationError("loads must be pushed in program order")
        self._pending.append((inst_idx, complete_time, token, self.dispatch_clock))

    # -- commit side -----------------------------------------------------------

    def drain(self) -> list[CommittedLoad]:
        """Commit everything dispatched (end of trace)."""
        committed: list[CommittedLoad] = []
        self._commit_upto(self.dispatch_index - 1, committed)
        return committed

    def _commit_upto(self, target_idx: int, out: list[CommittedLoad]) -> None:
        """Advance the commit frontier through instruction ``target_idx``."""
        while self._pending and self._pending[0][0] <= target_idx:
            idx, complete, token, dispatched = self._pending.popleft()
            # Older non-load instructions commit at the base rate; the
            # load cannot reach the head before its own dispatch has
            # traversed the pipeline.
            head_arrival = max(
                self.commit_clock + (idx - self.commit_index) * self.base_cpi,
                dispatched + self.pipeline_depth,
            )
            stall = complete - head_arrival
            if stall > 0:
                self.total_stall_cycles += stall
                self.commit_clock = complete
            else:
                stall = 0.0
                self.commit_clock = head_arrival
            self.commit_index = idx + 1
            self.loads_committed += 1
            if stall >= 1.0:
                self.loads_blocked += 1
            out.append(CommittedLoad(token=token, stall_cycles=stall))
        if target_idx >= self.commit_index:
            count = target_idx - self.commit_index + 1
            self.commit_clock += count * self.base_cpi
            self.commit_index = target_idx + 1

    # -- results -----------------------------------------------------------------

    @property
    def cycles(self) -> float:
        """Total cycles elapsed (commit frontier)."""
        return max(self.commit_clock, self.dispatch_clock)

    def ipc(self) -> float:
        """Committed instructions per cycle so far."""
        return self.commit_index / self.cycles if self.cycles > 0 else 0.0
