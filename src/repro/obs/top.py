"""``repro top`` — a curses-free terminal dashboard for running sweeps.

Polls a :mod:`monitor server <repro.obs.server>`'s ``GET /status``
endpoint (``repro top --url http://127.0.0.1:PORT``) — or, for a
finished or crashed run with no server, reconstructs an equivalent
status document from the sweep journal and span file on disk
(``repro top --journal sweep.jsonl --spans spans.jsonl``) — and
repaints a full-screen ANSI dashboard:

* headline counters (done / cached / resumed / failed, retries,
  timeouts, pool rebuilds, ETA, elapsed);
* the **cell grid**: one character per cell in submission order
  (``.`` pending, ``r`` running, ``#`` done, ``c`` cached, ``j``
  resumed, ``F`` failed);
* **worker lanes**: the cells currently executing, with how long the
  monitor has gone without an event (a liveness hint: a stuck sweep
  shows old running cells and a growing silence).

Repainting uses plain ANSI (cursor home + clear-to-end), no curses, so
it works over ssh, in CI logs (with ``--once``) and under pytest.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.server import STATUS_VERSION

#: One character per cell state in the grid.
STATE_GLYPHS = {
    "pending": ".",
    "running": "r",
    "done": "#",
    "cached": "c",
    "resumed": "j",
    "failed": "F",
}

#: ANSI repaint prefix: cursor home, then clear to end of screen.
ANSI_REPAINT = "\x1b[H\x1b[J"


def fetch_status(url: str, *, timeout_s: float = 5.0) -> dict:
    """One ``GET /status`` poll; raises ``ReproError`` on any failure."""
    if not url.endswith("/status"):
        url = url.rstrip("/") + "/status"
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            payload = response.read()
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ReproError(f"cannot reach monitor at {url}: {exc}") from exc
    try:
        status = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ReproError(f"monitor at {url} returned bad JSON: {exc}") from exc
    if not isinstance(status, dict) or status.get("v") != STATUS_VERSION:
        raise ReproError(
            f"monitor at {url} speaks status version "
            f"{status.get('v') if isinstance(status, dict) else '?'} "
            f"(expected {STATUS_VERSION})"
        )
    return status


def status_from_files(
    journal_path: str | Path | None = None,
    spans_path: str | Path | None = None,
    *,
    total: int | None = None,
) -> dict:
    """Reconstruct a ``/status``-shaped document from on-disk state.

    The journal contributes completed cells; the span file contributes
    labels, per-cell wall times, failures and the sweep's cell count
    (from the root span's ``total`` attribute).  Works on live files —
    both readers tolerate a torn final line — though a running sweep is
    better watched through its ``--serve`` endpoint.
    """
    cells: dict[int, dict] = {}
    counters = {"retries": 0, "timeouts": 0, "requeued": 0,
                "pool_rebuilds": 0}
    label = None
    journaled = 0
    if journal_path is not None:
        from repro.jobs.journal import SweepJournal

        journaled = len(SweepJournal(journal_path).load())
    if spans_path is not None:
        from repro.obs.spans import load_spans

        for span in load_spans(spans_path):
            if span.category == "sweep":
                if total is None:
                    total = int(span.attrs.get("total", 0)) or total
                label = span.attrs.get("label", label)
            elif span.category == "job":
                index = int(span.attrs.get("index", len(cells)))
                state = (
                    "failed" if span.attrs.get("status") == "failed"
                    else "done"
                )
                cells[index] = {
                    "label": span.attrs.get("label", span.name),
                    "state": state,
                    "wall_time_s": span.duration_s,
                }
            elif span.category == "event":
                if span.name in ("cache", "resumed"):
                    index = int(span.attrs.get("index", len(cells)))
                    cells[index] = {
                        "label": span.attrs.get("label", ""),
                        "state": span.name if span.name != "cache" else "cached",
                        "wall_time_s": 0.0,
                    }
                elif span.name == "retry":
                    counters["retries"] += 1
                elif span.name == "timeout":
                    counters["timeouts"] += 1
                elif span.name == "requeue":
                    counters["requeued"] += 1
    if total is None:
        total = max(len(cells), journaled)
    counts = {state: 0 for state in STATE_GLYPHS}
    for cell in cells.values():
        counts[cell["state"]] += 1
    counts["pending"] += max(0, total - len(cells))
    completed = (
        counts["done"] + counts["cached"] + counts["resumed"]
        + counts["failed"]
    )
    return {
        "v": STATUS_VERSION,
        "label": label,
        "total": total,
        "completed": completed,
        "counts": counts,
        "cells": [
            {"index": index, **cells[index]} for index in sorted(cells)
        ],
        "workers": {"configured": 0, "busy": counts["running"],
                    "last_event_age_s": 0.0},
        "counters": counters,
        "eta_s": 0.0 if completed >= total else None,
        "elapsed_s": 0.0,
        "finished": completed >= total and total > 0,
    }


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "--"
    if eta_s <= 0:
        return "done"
    if eta_s < 60:
        return f"{eta_s:.0f}s"
    minutes, secs = divmod(int(round(eta_s)), 60)
    return f"{minutes}m{secs:02d}s"


def render_dashboard(status: dict, *, width: int = 72) -> str:
    """Render one ``/status`` document as a plain-text dashboard."""
    counts = status["counts"]
    counters = status["counters"]
    total = status["total"]
    lines = []
    title = "repro top"
    if status.get("label"):
        title += f" — {status['label']}"
    lines.append(title)
    lines.append("=" * min(width, max(len(title), 20)))
    lines.append(
        f"cells {status['completed']}/{total}"
        f" | done {counts['done']} | cached {counts['cached']}"
        f" | resumed {counts['resumed']} | FAILED {counts['failed']}"
    )
    lines.append(
        f"retries {counters['retries']} | timeouts {counters['timeouts']}"
        f" | requeued {counters['requeued']}"
        f" | pool rebuilds {counters['pool_rebuilds']}"
    )
    workers = status["workers"]
    lines.append(
        f"workers {workers['busy']}/{workers['configured']} busy"
        f" | last event {workers['last_event_age_s']:.1f}s ago"
        f" | elapsed {status['elapsed_s']:.0f}s"
        f" | ETA {_fmt_eta(status['eta_s'])}"
        + (" | FINISHED" if status.get("finished") else "")
    )

    # The cell grid: one glyph per cell in submission order.
    glyphs = ["."] * total
    by_index = {cell["index"]: cell for cell in status["cells"]}
    for index, cell in by_index.items():
        if 0 <= index < total:
            glyphs[index] = STATE_GLYPHS.get(cell["state"], "?")
    lines.append("")
    lines.append("cells (. pending  r running  # done  c cached  "
                 "j resumed  F FAILED):")
    for row_start in range(0, total, width):
        lines.append("  " + "".join(glyphs[row_start:row_start + width]))

    # Worker lanes: what is executing right now.
    running = [cell for cell in status["cells"]
               if cell["state"] == "running"]
    lines.append("")
    if running:
        lines.append("running:")
        for cell in running:
            lines.append(f"  [{cell['index']:>3}] {cell['label']}")
    else:
        lines.append("running: (nothing in flight)")
    failed = [cell for cell in status["cells"] if cell["state"] == "failed"]
    if failed:
        lines.append("FAILED:")
        for cell in failed:
            lines.append(f"  [{cell['index']:>3}] {cell['label']}")
    return "\n".join(lines)


def run_top(
    *,
    url: str | None = None,
    journal: str | Path | None = None,
    spans: str | Path | None = None,
    total: int | None = None,
    interval_s: float = 1.0,
    once: bool = False,
    stream=None,
    max_polls: int | None = None,
) -> int:
    """The ``repro top`` loop; returns the process exit code.

    Live mode (``url``) polls ``/status`` every ``interval_s`` and
    repaints until the sweep reports ``finished`` (or the server goes
    away, which is how a completed CLI sweep ends the session).
    Offline mode (``journal``/``spans``) renders once.  ``once`` forces
    a single frame without ANSI repaint codes — what tests and CI use.
    """
    if url is None and journal is None and spans is None:
        raise ReproError("repro top needs --url, --journal or --spans")
    stream = stream if stream is not None else sys.stdout
    polls = 0
    while True:
        if url is not None:
            try:
                status = fetch_status(url)
            except ReproError:
                if polls == 0:
                    raise
                # The server vanished mid-session: the sweep finished
                # and took its monitor with it.
                stream.write("\nmonitor gone — sweep finished or aborted\n")
                return 0
        else:
            status = status_from_files(journal, spans, total=total)
        frame = render_dashboard(status)
        if once or url is None:
            stream.write(frame + "\n")
            return 0
        stream.write(ANSI_REPAINT + frame + "\n")
        stream.flush()
        polls += 1
        if status.get("finished"):
            return 0
        if max_polls is not None and polls >= max_polls:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            stream.write("\n")
            return 0
