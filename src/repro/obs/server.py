"""The live sweep monitor: a zero-dependency HTTP status/metrics server.

``repro sweep --serve [PORT]`` starts a :class:`MonitorServer` (plain
``http.server``, stdlib only) next to the running sweep.  It serves:

* ``GET /status`` — one JSON document (:data:`STATUS_VERSION`): per-cell
  states (pending / running / done / cached / resumed / failed), worker
  liveness, the running-mean ETA, retry/timeout/requeue/pool-rebuild
  counters and elapsed wall time.  ``repro top`` renders this.
* ``GET /metrics`` — Prometheus text exposition rendered live from the
  sweep's :class:`~repro.telemetry.registry.StatsRegistry` (see
  :func:`render_prometheus` for the dotted-name mangling rules).
* ``GET /healthz`` — ``ok`` while the server thread is up.

The model behind ``/status`` is :class:`MonitorState` — a thread-safe
fold of the scheduler's :class:`~repro.obs.progress.JobEvent` stream,
chained onto the ``observer`` hook next to the progress renderer.  The
server thread only ever *reads* it under its lock, so serving never
perturbs the sweep.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.common.errors import ReproError

#: ``/status`` document layout version.
STATUS_VERSION = 1

#: Cell states reported by ``/status``.
CELL_STATES = ("pending", "running", "done", "cached", "resumed", "failed")


class MonitorState:
    """Thread-safe live model of one sweep, fed by the observer hook.

    Chain :meth:`observe` into ``run_jobs(..., observer=...)`` (see
    :func:`~repro.obs.progress.tee_observers`); call :meth:`snapshot`
    from any thread for the current ``/status`` document.
    """

    def __init__(
        self,
        total: int,
        *,
        workers: int = 1,
        label: str | None = None,
        registry=None,
    ) -> None:
        self.total = total
        self.workers = max(1, workers)
        self.label = label
        self.registry = registry
        self._lock = threading.Lock()
        self._cells: dict[int, dict] = {}
        self._durations: list[float] = []
        self._retries = 0
        self._timeouts = 0
        self._requeued = 0
        self._started = time.monotonic()
        self._last_event = self._started
        self._finished = False

    # -- event folding -------------------------------------------------------

    def observe(self, event) -> None:
        """The scheduler's ``observer`` hook (chainable)."""
        with self._lock:
            self._last_event = time.monotonic()
            cell = self._cells.setdefault(
                event.index, {"label": event.label, "state": "pending",
                              "wall_time_s": 0.0},
            )
            kind = event.kind
            if kind == "dispatch":
                cell["state"] = "running"
            elif kind == "done":
                cell["state"] = "done"
                cell["wall_time_s"] = event.wall_time_s
                self._durations.append(event.wall_time_s)
            elif kind == "cache":
                cell["state"] = "cached"
            elif kind == "resumed":
                cell["state"] = "resumed"
            elif kind == "failed":
                cell["state"] = "failed"
            elif kind == "retry":
                self._retries += 1
            elif kind == "timeout":
                self._timeouts += 1
            elif kind == "requeue":
                self._requeued += 1

    def finish(self) -> None:
        """Mark the sweep over (the CLI calls this after ``run_jobs``)."""
        with self._lock:
            self._finished = True

    # -- reading -------------------------------------------------------------

    def _counts(self) -> dict[str, int]:
        counts = {state: 0 for state in CELL_STATES}
        for cell in self._cells.values():
            counts[cell["state"]] += 1
        counts["pending"] += self.total - len(self._cells)
        return counts

    def eta_seconds(self) -> float | None:
        """Running-mean ETA (same contract as ``SweepProgress``).

        Failed/quarantined cells are resolved placeholders, never
        future work, so they are excluded from the remaining count.
        """
        with self._lock:
            counts = self._counts()
            remaining = counts["pending"] + counts["running"]
            if remaining <= 0:
                return 0.0
            if not self._durations:
                return None
            mean = sum(self._durations) / len(self._durations)
            return remaining * mean / self.workers

    def snapshot(self) -> dict:
        """The current ``/status`` document (plain JSON-able data)."""
        with self._lock:
            counts = self._counts()
            now = time.monotonic()
            cells = [
                {"index": index, **self._cells[index]}
                for index in sorted(self._cells)
            ]
            durations = list(self._durations)
            remaining = counts["pending"] + counts["running"]
            if remaining <= 0:
                eta = 0.0
            elif durations:
                eta = remaining * (sum(durations) / len(durations)) / self.workers
            else:
                eta = None
            completed = (
                counts["done"] + counts["cached"] + counts["resumed"]
                + counts["failed"]
            )
            status = {
                "v": STATUS_VERSION,
                "label": self.label,
                "total": self.total,
                "completed": completed,
                "counts": counts,
                "cells": cells,
                "workers": {
                    "configured": self.workers,
                    "busy": counts["running"],
                    "last_event_age_s": round(now - self._last_event, 3),
                },
                "counters": {
                    "retries": self._retries,
                    "timeouts": self._timeouts,
                    "requeued": self._requeued,
                    "pool_rebuilds": 0,
                },
                "eta_s": eta,
                "elapsed_s": round(now - self._started, 3),
                "finished": self._finished or completed >= self.total,
            }
        # Engine counters the event stream does not carry (pool
        # rebuilds, quarantines) come from the live registry.
        if self.registry is not None:
            value = _registry_value(self.registry, "jobs.recovery.pool_rebuilds")
            if value is not None:
                status["counters"]["pool_rebuilds"] = int(value)
        return status


def _registry_value(registry, name: str) -> float | None:
    """One instrument's current value, tolerating concurrent mutation."""
    for _ in range(3):
        try:
            if name not in registry:
                return None
            return registry.snapshot().get(name)
        except RuntimeError:
            # The simulation registered an instrument mid-iteration;
            # registries only ever grow, so retrying converges.
            continue
    return None


# -- Prometheus exposition ---------------------------------------------------

#: ``jobs.retry.<kind>`` collapses onto one labelled counter family.
_RETRY_FAMILY_RE = re.compile(r"^jobs\.retry\.(?P<kind>[a-z0-9_-]+)$")

#: ``<prefix>.bank<N>.<metric>`` collapses onto one per-bank family.
_BANK_FAMILY_RE = re.compile(
    r"^(?P<prefix>[a-z0-9_.-]+)\.bank(?P<bank>\d+)\.(?P<metric>[a-z0-9_.-]+)$"
)


def prometheus_name(name: str) -> str:
    """Mangle one dotted instrument name to a Prometheus metric name.

    Rules (documented in ``docs/OBSERVABILITY.md``): prefix ``repro_``,
    dots and dashes become underscores.  Family collapses
    (``jobs.retry.<kind>``, per-bank names) are handled by
    :func:`render_prometheus`, which strips the dynamic segment into a
    label before calling this.
    """
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _families(state: dict) -> dict[str, dict]:
    """Group an ``export_state`` dump into Prometheus families."""
    families: dict[str, dict] = {}

    def family(metric: str, kind: str) -> dict:
        return families.setdefault(metric, {"type": kind, "samples": []})

    for name in sorted(state):
        kind, value = state[name]
        retry = _RETRY_FAMILY_RE.match(name)
        bank = _BANK_FAMILY_RE.match(name)
        if retry is not None:
            metric = prometheus_name("jobs.retry") + "_total"
            family(metric, "counter")["samples"].append(
                ({"kind": retry.group("kind")}, float(value))
            )
            continue
        if bank is not None and kind in ("counter", "gauge"):
            metric = prometheus_name(
                f"{bank.group('prefix')}.{bank.group('metric')}"
            )
            if kind == "counter":
                metric += "_total"
            family(metric, kind)["samples"].append(
                ({"bank": bank.group("bank")}, float(value))
            )
            continue
        if kind == "counter":
            metric = prometheus_name(name)
            if not metric.endswith("_total"):
                metric += "_total"
            family(metric, "counter")["samples"].append(({}, float(value)))
        elif kind == "gauge":
            family(prometheus_name(name), "gauge")["samples"].append(
                ({}, float(value))
            )
        elif kind == "histogram":
            metric = prometheus_name(name)
            entry = family(metric, "summary")
            count = int(value["count"])
            mean = float(value["mean"]) if count else 0.0
            recent = value.get("recent") or []
            if recent:
                levels = np.percentile(
                    np.asarray(recent, dtype=np.float64), (50, 90, 99)
                )
                for quantile, level in zip((0.5, 0.9, 0.99), levels):
                    entry["samples"].append(
                        ({"quantile": f"{quantile}"}, float(level))
                    )
            entry["sum"] = mean * count
            entry["count"] = count
            #: Sliding-window size behind the quantiles (see
            #: ``StatsRegistry.snapshot``'s ``.window`` key).
            entry["window"] = len(recent)
    return families


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def render_prometheus(registry) -> str:
    """Prometheus text exposition (v0.0.4) of one stats registry.

    Counters become ``repro_<dotted_name>_total``; gauges keep their
    mangled name; histograms render as summaries (``quantile`` labels
    over the bounded sample window, exact ``_sum``/``_count`` from the
    Welford moments, plus a ``_window`` gauge stating how many samples
    back the quantiles).  ``jobs.retry.<kind>`` and per-bank names
    collapse into labelled families.
    """
    state = None
    for _ in range(3):
        try:
            state = registry.export_state()
            break
        except RuntimeError:
            continue
    if state is None:
        raise ReproError("registry busy: could not snapshot instruments")
    lines: list[str] = []
    for metric, entry in sorted(_families(state).items()):
        lines.append(f"# TYPE {metric} {entry['type']}")
        for labels, value in entry["samples"]:
            lines.append(
                f"{metric}{_format_labels(labels)} {_format_value(value)}"
            )
        if entry["type"] == "summary":
            lines.append(f"{metric}_sum {_format_value(entry['sum'])}")
            lines.append(f"{metric}_count {entry['count']}")
            lines.append(f"# TYPE {metric}_window gauge")
            lines.append(f"{metric}_window {entry['window']}")
    return "\n".join(lines) + "\n"


# -- the server --------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-monitor"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        monitor: "MonitorServer" = self.server.monitor  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/status":
            body = json.dumps(monitor.state.snapshot()).encode()
            self._reply(200, "application/json", body)
        elif path == "/metrics":
            if monitor.registry is None:
                self._reply(404, "text/plain",
                            b"no registry attached to this sweep\n")
                return
            try:
                body = render_prometheus(monitor.registry).encode()
            except ReproError as exc:
                self._reply(503, "text/plain", f"{exc}\n".encode())
                return
            self._reply(200, "text/plain; version=0.0.4", body)
        elif path in ("/", "/healthz"):
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:
        """Silence per-request stderr noise (the sweep owns stderr)."""


class MonitorServer:
    """A daemon-thread HTTP server over one :class:`MonitorState`.

    ``port=0`` (the default) binds an ephemeral port; :meth:`start`
    returns the bound port and :attr:`url` points at it.  The server
    is loopback-only by design — it reports, it does not control.
    """

    def __init__(
        self,
        state: MonitorState,
        *,
        registry=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state = state
        self.registry = registry
        self.host = host
        self.requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        try:
            self._httpd = ThreadingHTTPServer(
                (self.host, self.requested_port), _Handler
            )
        except OSError as exc:
            raise ReproError(
                f"cannot bind monitor on {self.host}:{self.requested_port}: "
                f"{exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._httpd.monitor = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitor",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MonitorServer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
