"""Cross-process span tracing for sweeps and simulation runs.

A **span** is one timed piece of work — the sweep itself, one cell's
dispatch-to-completion bracket, one ``run_workload`` phase — with a
trace id shared by every span of one sweep, a span id, an optional
parent id, a category and free-form attributes.  Spans nest: the
scheduler opens a ``sweep`` root span, each cell gets a ``job`` span
under it, and the runner's ``stage1`` / ``warm-up`` / ``measure`` /
``reduce`` phases land under their cell.  Retries, watchdog timeouts,
requeues and quarantines appear as zero-duration ``event`` spans.

Like the :class:`~repro.telemetry.profiler.Profiler`, a worker process
records into its own :class:`SpanRecorder` and ships the finished
spans back via :meth:`SpanRecorder.export_state`; the parent folds
them in with :meth:`SpanRecorder.merge_state` in deterministic job
order.  Persisted next to the sweep journal as ``spans.jsonl``
(one record per finished span, schema :data:`SPAN_SCHEMA_VERSION`),
the file shares the journal's robustness contract: a torn final line
is tolerated on read, earlier corruption raises.

Span identity is deterministic: ids derive from the trace id, the
parent id, the category/name and an occurrence counter — so the same
sweep records the same ids run over run (given the same trace id), and
a parallel sweep's *canonical* span set (see :func:`canonical_key`)
equals the serial one even when chaos kills a worker mid-cell.

Timestamps are wall-anchored monotonic seconds: each recorder captures
``time.time()`` / ``time.perf_counter()`` once at creation and stamps
``anchor_wall + (perf_counter() - anchor_mono)`` — monotonic within a
process, comparable across the parent and its workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError

#: spans.jsonl record layout version.
SPAN_SCHEMA_VERSION = 1

#: Span categories emitted by the scheduler and runner.  ``event``
#: spans are zero-duration instants (retry, timeout, requeue, ...).
SPAN_CATEGORIES = ("sweep", "job", "phase", "event")

#: Attribute keys excluded from :func:`canonical_key` — they vary
#: between otherwise-identical runs (which attempt succeeded, which
#: process executed the cell, how many workers the pool had) and must
#: not break determinism checks.
VOLATILE_ATTRS = frozenset(
    {"attempt", "pid", "worker", "workers", "wall_time_s"}
)

#: Categories compared by determinism checks; ``event`` spans are an
#: incident log (a retry happens or not), not durable structure.
DURABLE_CATEGORIES = ("sweep", "job", "phase")


@dataclass
class Span:
    """One finished span: identity, bracket and attributes."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    category: str
    start_s: float
    end_s: float
    pid: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Wall seconds the span covered (0 for instant events)."""
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        """The spans.jsonl record payload (version-stamped)."""
        return {
            "v": SPAN_SCHEMA_VERSION,
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start": self.start_s,
            "end": self.end_s,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span from its :meth:`to_dict` payload."""
        try:
            return cls(
                trace_id=str(record["trace"]),
                span_id=str(record["id"]),
                parent_id=(
                    str(record["parent"])
                    if record.get("parent") is not None else None
                ),
                name=str(record["name"]),
                category=str(record["cat"]),
                start_s=float(record["start"]),
                end_s=float(record["end"]),
                pid=int(record["pid"]),
                attrs=dict(record.get("attrs") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad span record: {exc}") from exc


def new_trace_id() -> str:
    """A fresh sweep-unique trace id (``t<hex>``)."""
    return f"t{os.urandom(8).hex()}"


def canonical_key(span: Span) -> tuple:
    """Timestamp- and process-independent identity of one span.

    Two runs of the same sweep — serial or parallel, with or without
    mid-run worker deaths — record the same multiset of canonical keys
    over the :data:`DURABLE_CATEGORIES`; only timings, pids and attempt
    numbers differ.
    """
    stable_attrs = tuple(sorted(
        (key, str(value))
        for key, value in span.attrs.items()
        if key not in VOLATILE_ATTRS
    ))
    return (span.category, span.name, stable_attrs)


def canonical_span_set(spans: list[Span]) -> list[tuple]:
    """Sorted canonical keys of the durable spans (for equality checks)."""
    return sorted(
        canonical_key(span) for span in spans
        if span.category in DURABLE_CATEGORIES
    )


@dataclass
class OpenSpan:
    """An in-flight span: its id exists, its end does not yet."""

    span_id: str
    parent_id: str | None
    name: str
    category: str
    start_s: float
    attrs: dict


class _NullSpan:
    """Shared no-op context manager for disabled recorders."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class SpanRecorder:
    """Collects finished spans; the process-local half of the span layer.

    Args:
        trace_id: the sweep's shared trace id (fresh one when omitted).
        sink: optional callable receiving each finished :class:`Span`
            as it completes — how the scheduler streams spans to the
            ``spans.jsonl`` writer while the sweep is still running.
        enabled: a disabled recorder records nothing and its
            :meth:`span` context manager is a shared no-op (the
            :data:`DISABLED_SPANS` singleton pattern, mirroring
            :data:`~repro.telemetry.profiler.DISABLED_PROFILER`).
    """

    def __init__(
        self,
        *,
        trace_id: str | None = None,
        sink=None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.trace_id = trace_id or (new_trace_id() if enabled else "")
        self.sink = sink
        self.spans: list[Span] = []
        #: Context stack: (parent span id, stamped attrs) frames pushed
        #: by :meth:`scope` and by open :meth:`span` blocks.
        self._stack: list[tuple[str | None, dict]] = []
        #: (parent_id, category, name) -> occurrence counter, the
        #: deterministic discriminator inside one recorder.
        self._occurrences: dict[tuple, int] = {}
        self._anchor_wall = time.time()
        self._anchor_mono = time.perf_counter()

    # -- time ----------------------------------------------------------------

    def now(self) -> float:
        """Wall-anchored monotonic seconds (the span timestamp base)."""
        return self._anchor_wall + (time.perf_counter() - self._anchor_mono)

    # -- identity ------------------------------------------------------------

    def _next_id(self, parent_id: str | None, category: str, name: str) -> str:
        key = (parent_id, category, name)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        digest = hashlib.sha256(
            f"{self.trace_id}|{parent_id or ''}|{category}|{name}|{occurrence}"
            .encode()
        ).hexdigest()
        return digest[:16]

    def _context(self) -> tuple[str | None, dict]:
        if self._stack:
            return self._stack[-1]
        return None, {}

    # -- recording -----------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str = "phase",
        *,
        parent_id: str | None = None,
        **attrs,
    ) -> OpenSpan:
        """Open a span explicitly (id assigned now, end recorded later)."""
        ctx_parent, ctx_attrs = self._context()
        if parent_id is None:
            parent_id = ctx_parent
        merged = {**ctx_attrs, **attrs}
        return OpenSpan(
            span_id=self._next_id(parent_id, category, name),
            parent_id=parent_id,
            name=name,
            category=category,
            start_s=self.now(),
            attrs=merged,
        )

    def end(self, open_span: OpenSpan, **attrs) -> Span:
        """Close an explicitly opened span and record it."""
        span = Span(
            trace_id=self.trace_id,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            name=open_span.name,
            category=open_span.category,
            start_s=open_span.start_s,
            end_s=self.now(),
            pid=os.getpid(),
            attrs={**open_span.attrs, **attrs},
        )
        self._record(span)
        return span

    def event(
        self,
        name: str,
        *,
        parent_id: str | None = None,
        **attrs,
    ) -> Span | None:
        """Record a zero-duration instant span (category ``event``)."""
        if not self.enabled:
            return None
        ctx_parent, ctx_attrs = self._context()
        if parent_id is None:
            parent_id = ctx_parent
        now = self.now()
        span = Span(
            trace_id=self.trace_id,
            span_id=self._next_id(parent_id, "event", name),
            parent_id=parent_id,
            name=name,
            category="event",
            start_s=now,
            end_s=now,
            pid=os.getpid(),
            attrs={**ctx_attrs, **attrs},
        )
        self._record(span)
        return span

    def span(self, name: str, category: str = "phase", **attrs):
        """Context manager recording one nested span."""
        if not self.enabled:
            return _NULL
        return self._timed(name, category, attrs)

    @contextmanager
    def _timed(self, name: str, category: str, attrs: dict):
        open_span = self.begin(name, category, **attrs)
        self._stack.append((open_span.span_id, dict(open_span.attrs)))
        try:
            yield open_span
        finally:
            self._stack.pop()
            self.end(open_span)

    @contextmanager
    def scope(self, *, parent_id: str | None = None, **attrs):
        """Push a parent/attribute frame without recording a span.

        The sweep scheduler brackets each cell's ``run_workload`` call
        this way: phases recorded inside parent to the cell's ``job``
        span and inherit its workload/scheme attributes.
        """
        if not self.enabled:
            yield
            return
        ctx_parent, ctx_attrs = self._context()
        self._stack.append((
            parent_id if parent_id is not None else ctx_parent,
            {**ctx_attrs, **attrs},
        ))
        try:
            yield
        finally:
            self._stack.pop()

    def _record(self, span: Span) -> None:
        if not self.enabled:
            return
        self.spans.append(span)
        if self.sink is not None:
            self.sink(span)

    # -- cross-process merging ----------------------------------------------

    def export_state(self) -> list[dict]:
        """Picklable span dump for parent-side merging (job order)."""
        return [span.to_dict() for span in self.spans]

    def merge_state(self, state: list[dict], extra: dict | None = None) -> None:
        """Fold a worker's :meth:`export_state` into this recorder.

        ``extra`` attributes are stamped onto every merged span (the
        scheduler adds workload/scheme context the worker may lack).
        Merged spans keep their worker-assigned ids and flow to the
        sink like locally recorded ones.
        """
        if not self.enabled:
            return
        for record in state:
            span = Span.from_dict(record)
            if extra:
                span.attrs = {**extra, **span.attrs}
            self._record(span)


#: Shared disabled recorder: span blocks cost one ``enabled`` check.
DISABLED_SPANS = SpanRecorder(enabled=False)


class SpanObserver:
    """Folds the scheduler's :class:`~repro.obs.progress.JobEvent`
    stream into job spans and instant events.

    Chained after the user observer by ``run_jobs``: ``dispatch`` opens
    a cell's ``job`` span (covering every attempt), ``done`` and
    ``failed`` close it, ``cache``/``resumed`` record instants under
    the sweep root, and ``retry``/``timeout``/``requeue`` record
    instants under the open job span — the incident trail the Perfetto
    export renders as track markers.
    """

    def __init__(self, recorder: SpanRecorder, *, parent_id: str | None = None) -> None:
        self.recorder = recorder
        self.parent_id = parent_id
        self._open: dict[int, OpenSpan] = {}

    def open_span_id(self, index: int) -> str | None:
        """The in-flight ``job`` span id for one cell (None when closed)."""
        open_span = self._open.get(index)
        return open_span.span_id if open_span is not None else None

    def __call__(self, event) -> None:
        kind = event.kind
        if kind == "dispatch":
            self._open[event.index] = self.recorder.begin(
                event.label, "job",
                parent_id=self.parent_id,
                label=event.label, index=event.index,
            )
        elif kind in ("done", "failed"):
            open_span = self._open.pop(event.index, None)
            if open_span is not None:
                self.recorder.end(open_span, status=(
                    "failed" if kind == "failed" else "ok"
                ))
            elif kind == "failed":
                # A serial ReproError can fail a cell it never
                # dispatched a span for (no-retry path): record the
                # incident even without a bracket.
                self.recorder.event(
                    "failed", parent_id=self.parent_id,
                    label=event.label, index=event.index,
                )
        elif kind in ("cache", "resumed"):
            self.recorder.event(
                kind, parent_id=self.parent_id,
                label=event.label, index=event.index,
            )
        elif kind in ("retry", "timeout", "requeue"):
            self.recorder.event(
                kind,
                parent_id=self.open_span_id(event.index) or self.parent_id,
                label=event.label, index=event.index,
            )


# -- persistence -------------------------------------------------------------


class SpanWriter:
    """Append-only ``spans.jsonl`` writer (one record per finished span).

    Shares the sweep journal's robustness contract: records are flushed
    as they are appended, a torn final line (an interrupted append) is
    tolerated by :func:`load_spans`.  Unlike the journal, records are
    *not* fsynced — spans are diagnostics; losing the last one in a
    crash never loses completed work.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    def open(self, *, truncate: bool = False) -> None:
        """Open the backing file (``truncate=True`` starts fresh)."""
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(
                self.path, "w" if truncate else "a", encoding="utf-8"
            )
        except OSError as exc:
            raise ReproError(
                f"cannot open span file {self.path}: {exc}"
            ) from exc

    def record(self, span: Span) -> None:
        """Append one finished span (flushed immediately)."""
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(span.to_dict()) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_spans(path: str | Path) -> list[Span]:
    """All spans from a ``spans.jsonl`` file, in append order.

    A torn final line (interrupted append — or simply a span file of a
    sweep still running) is ignored; malformed records before the final
    one and unknown schema versions raise
    :class:`~repro.common.errors.ReproError`.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise ReproError(f"cannot read span file {path}: {exc}") from exc
    spans: list[Span] = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                # Torn final append: the span is lost, nothing else is.
                break
            raise ReproError(
                f"{path}:{lineno}: malformed span record: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ReproError(f"{path}:{lineno}: span record is not an object")
        if record.get("v") != SPAN_SCHEMA_VERSION:
            raise ReproError(
                f"{path}:{lineno}: unsupported span schema "
                f"{record.get('v')!r} (expected {SPAN_SCHEMA_VERSION})"
            )
        try:
            spans.append(Span.from_dict(record))
        except ReproError as exc:
            raise ReproError(f"{path}:{lineno}: {exc}") from exc
    return spans


def phase_wall_table(spans: list[Span]) -> list[tuple[str, int, float, float]]:
    """Per-phase wall-time rows from a span set: (name, calls, total, mean).

    Covers ``phase``-category spans (the runner's stage1/warm-up/
    measure/reduce brackets), sorted by descending total — the
    ``repro stats --from-spans`` view of a finished run.
    """
    totals: dict[str, tuple[int, float]] = {}
    for span in spans:
        if span.category != "phase":
            continue
        calls, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (calls + 1, seconds + span.duration_s)
    rows = [
        (name, calls, seconds, seconds / calls if calls else 0.0)
        for name, (calls, seconds) in totals.items()
    ]
    rows.sort(key=lambda row: -row[2])
    return rows
