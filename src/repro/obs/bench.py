"""Machine-readable benchmark trajectories (``repro bench-record``).

A trajectory file (``BENCH_sweep.json`` by convention) is the repo's
performance memory: one JSON document holding an append-only list of
**points**, each stamping the commit, the timestamp, a label and the
headline numbers of one recorded run — per-scheme mean IPC and raw
minimum lifetime out of a result matrix, plus total simulation wall
time when a run ledger is supplied.  Plotting the list over commits
shows whether the simulator is getting faster or slower and whether the
paper's comparative claims are drifting.

The file is rewritten atomically on every append
(:func:`repro.sim.store.atomic_write_text`), so a crashed recorder
never leaves a torn trajectory behind.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.ledger import current_git_sha
from repro.sim.metrics import MatrixResult
from repro.sim.store import atomic_write_text

#: Trajectory file layout version.
BENCH_FORMAT_VERSION = 1


def load_bench_trajectory(path: str | Path) -> list[dict]:
    """The recorded points of one trajectory file (empty when missing).

    Raises:
        ReproError: for an unreadable or malformed file — a damaged
            trajectory must not be silently restarted from empty.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read trajectory {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format_version") != BENCH_FORMAT_VERSION
        or not isinstance(payload.get("points"), list)
    ):
        raise ReproError(
            f"{path}: unsupported trajectory layout "
            f"(expected format_version {BENCH_FORMAT_VERSION})"
        )
    return payload["points"]


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench_point(point) -> str | None:
    """Why ``point`` is unusable, or ``None`` when it validates.

    Every flavour shares the provenance envelope (numeric ``timestamp``,
    ``git_sha`` that is a string or ``None`` for runs outside a git
    checkout); the flavour-specific payload is checked on top: matrix
    points need per-scheme numeric ``mean_ipc``/``raw_min_lifetime``,
    search points need ``frontier_size``/``hypervolume``, throughput
    points need ``count`` and positive ``seconds``.
    """
    if not isinstance(point, dict):
        return "point is not an object"
    if not _is_number(point.get("timestamp")):
        return "missing or non-numeric timestamp"
    sha = point.get("git_sha")
    if sha is not None and (not isinstance(sha, str) or not sha):
        return "git_sha must be a non-empty string or null"
    bench = point.get("bench")
    if "schemes" in point:
        schemes = point["schemes"]
        if not isinstance(schemes, dict) or not schemes:
            return "matrix point needs a non-empty schemes object"
        for name, stats in schemes.items():
            if not isinstance(stats, dict):
                return f"scheme {name!r} stats are not an object"
            for key in ("mean_ipc", "raw_min_lifetime"):
                if not _is_number(stats.get(key)):
                    return f"scheme {name!r} missing numeric {key}"
        return None
    if bench == "search":
        if not isinstance(point.get("frontier_size"), int):
            return "search point missing integer frontier_size"
        if not _is_number(point.get("hypervolume")):
            return "search point missing numeric hypervolume"
        return None
    if bench is not None:
        if not isinstance(point.get("count"), int):
            return "throughput point missing integer count"
        if not _is_number(point.get("seconds")) or point["seconds"] <= 0:
            return "throughput point missing positive seconds"
        return None
    return "unrecognised point flavour (no schemes and no bench key)"


def load_bench(path: str | Path) -> tuple[list[dict], list[str]]:
    """Validated points of one trajectory file, plus skip reasons.

    The tolerant counterpart of :func:`load_bench_trajectory`: the file
    envelope is still checked strictly (an unreadable file or a wrong
    ``format_version`` raises, a missing file is empty), but individual
    points that fail :func:`validate_bench_point` — torn writes patched
    by hand, points from abandoned formats — are skipped rather than
    poisoning the whole history.  Each skip yields one human-readable
    reason; callers surface them as warnings.
    """
    path = Path(path)
    points = load_bench_trajectory(path)
    good: list[dict] = []
    skipped: list[str] = []
    for i, point in enumerate(points):
        reason = validate_bench_point(point)
        if reason is None:
            good.append(point)
        else:
            skipped.append(f"{path}: point {i}: {reason}")
    return good, skipped


def bench_point(
    matrix: MatrixResult,
    *,
    label: str = "",
    wall_time_s: float | None = None,
) -> dict:
    """Build one trajectory point from a result matrix.

    ``wall_time_s`` is the total simulation time behind the matrix —
    usually the sum of the matching ledger records' wall times.
    """
    schemes = {}
    for scheme in matrix.schemes:
        ipcs = [matrix.get(wl, scheme).ipc for wl in matrix.workloads]
        schemes[scheme] = {
            "mean_ipc": sum(ipcs) / len(ipcs) if ipcs else 0.0,
            "raw_min_lifetime": matrix.raw_min_lifetime(scheme),
        }
    return {
        "timestamp": time.time(),
        "git_sha": current_git_sha(),
        "label": label or matrix.label,
        "workloads": len(matrix.workloads),
        "cells": len(matrix.results),
        "wall_time_s": wall_time_s,
        "schemes": schemes,
    }


def throughput_point(
    name: str,
    *,
    count: int,
    seconds: float,
    unit: str = "records",
    label: str = "",
    details: dict | None = None,
) -> dict:
    """Build one trajectory point from a raw throughput measurement.

    Counterpart of :func:`bench_point` for the simulator's timing
    benches (``benchmarks/test_bench_throughput.py``): ``count`` items
    of ``unit`` were processed in ``seconds`` of wall time.  ``details``
    carries bench-specific extras (e.g. the reference-path time and the
    kernel speedup).  Points share a trajectory file with matrix points;
    the ``bench`` key marks the flavour.
    """
    if seconds <= 0:
        raise ReproError(f"throughput point {name!r} needs positive seconds")
    return {
        "timestamp": time.time(),
        "git_sha": current_git_sha(),
        "label": label or name,
        "bench": name,
        "unit": unit,
        "count": int(count),
        "seconds": seconds,
        "per_second": count / seconds,
        "details": details or {},
    }


def stage1_point(
    *,
    instructions: int,
    kernel_seconds: float,
    reference_seconds: float,
    label: str = "",
) -> dict:
    """Build one trajectory point from a stage-1 kernel measurement.

    The stage-1 bench (``benchmarks/test_bench_stage1.py``) times the
    vectorized characterisation kernel (:mod:`repro.cpu.kernel`) and the
    reference object-graph loop over the same app/config/seed; the point
    records the kernel time as the headline throughput and keeps the
    reference time and speedup in ``details`` so the trajectory shows
    both absolute speed and the kernel's margin over the reference.
    """
    if kernel_seconds <= 0 or reference_seconds <= 0:
        raise ReproError("stage1 point needs positive kernel and reference times")
    return throughput_point(
        "stage1_kernel",
        count=instructions,
        seconds=kernel_seconds,
        unit="instructions",
        label=label,
        details={
            "reference_seconds": reference_seconds,
            "speedup": round(reference_seconds / kernel_seconds, 3),
        },
    )


def search_bench_point(outcome, *, label: str = "") -> dict:
    """Build one trajectory point from a design-space search outcome.

    ``outcome`` is a :class:`~repro.search.drivers.SearchOutcome` (typed
    loosely to keep :mod:`repro.obs` import-independent of the search
    package).  Plotting frontier size and hypervolume over commits shows
    whether search quality is drifting.
    """
    return {
        "timestamp": time.time(),
        "git_sha": current_git_sha(),
        "label": label or f"search-{outcome.driver}",
        "bench": "search",
        "driver": outcome.driver,
        "objectives": list(outcome.objectives),
        "points": outcome.report.get("points", 0),
        "evaluations": outcome.report.get("evals_total", 0),
        "frontier_size": len(outcome.frontier),
        "hypervolume": outcome.hypervolume,
        "budget_schedule": list(outcome.budget_schedule),
    }


def append_bench_point(path: str | Path, point: dict) -> int:
    """Append one point to a trajectory file; returns the new length."""
    points = load_bench_trajectory(path)
    points.append(point)
    atomic_write_text(path, json.dumps(
        {"format_version": BENCH_FORMAT_VERSION, "points": points},
        indent=1,
    ))
    return len(points)
