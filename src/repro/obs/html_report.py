"""Self-contained HTML reports (``repro report --html``).

One call — :func:`render_html_report` — turns a
:class:`~repro.sim.metrics.MatrixResult` (plus, optionally, the run
ledger behind it) into a **single HTML file with zero external
references**: styles are one inline ``<style>`` block, every chart is
inline SVG, there are no scripts, no fonts, no images and no URLs to
fetch.  The file can be archived as a CI artifact or mailed around and
will render identically forever.

Sections, in order: headline stat tiles, scheme-comparison bars against
the paper's targets (Re-NUCA: +42 % raw minimum lifetime over R-NUCA at
within-0.5 % IPC), per-cell wear heatmaps over time (interval series
when recorded, end-of-run totals otherwise), interval write timelines,
the profiler phase table and the ledger run history.  Every chart has a
table twin in the markup, so the numbers are never color-alone.

Colors follow the dataviz palette contract: categorical slots in fixed
order for schemes (identity), a single-hue blue ramp for the heatmap
(magnitude), text in ink tokens — with a selected dark mode via
``prefers-color-scheme``, not an automatic flip.
"""

from __future__ import annotations

import html
import time
from collections.abc import Sequence

from repro.common.errors import ReproError
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult

#: Fixed categorical slot order (light, dark) — identity colors for
#: schemes, assigned by first appearance, never cycled.  Slots 1-3
#: (blue/orange/aqua) validate all-pairs; past slot 3 the report leans
#: on direct labels and the table twins.
_SERIES = (
    ("#2a78d6", "#3987e5"),   # 1 blue
    ("#eb6834", "#d95926"),   # 2 orange
    ("#1baf7a", "#199e70"),   # 3 aqua
    ("#eda100", "#c98500"),   # 4 yellow
    ("#e87ba4", "#d55181"),   # 5 magenta
    ("#008300", "#008300"),   # 6 green
    ("#4a3aa7", "#9085e9"),   # 7 violet
    ("#e34948", "#e66767"),   # 8 red
)

#: Single-hue sequential ramp (blue 100..700) for the wear heatmap.
_HEAT_LIGHT = ("#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
               "#2a78d6", "#1c5cab", "#104281", "#0d366b")
_HEAT_DARK = ("#0d366b", "#104281", "#184f95", "#1c5cab",
              "#256abf", "#2a78d6", "#3987e5", "#5598e7")

#: Wear heatmaps rendered at most (the grid grows as workloads x schemes).
MAX_HEATMAPS = 6

#: Ledger rows shown in the history table.
MAX_LEDGER_ROWS = 30


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


# -- SVG building blocks -----------------------------------------------------


def _svg_open(width: int, height: int, label: str) -> str:
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'style="max-width:{width}px" role="img" '
        f'aria-label="{_esc(label)}">'
    )


def _hbar_chart(
    rows: Sequence[tuple[str, float, int]],
    *,
    label: str,
    unit: str = "",
    targets: Sequence[tuple[float, str]] = (),
    digits: int = 2,
) -> str:
    """Horizontal bar chart: (label, value, series slot) rows.

    Values may be negative (the zero baseline is drawn where it falls);
    ``targets`` draws labelled reference ticks at given values.
    """
    if not rows:
        return '<p class="note">(no data)</p>'
    bar_h, gap, left, right, top = 18, 8, 150, 70, 8
    width = 640
    plot_w = width - left - right
    height = top * 2 + len(rows) * (bar_h + gap)
    values = [v for _, v, _ in rows]
    lo = min(0.0, min(values), *(t for t, _ in targets)) if targets else min(0.0, min(values))
    hi = max(0.0, max(values), *(t for t, _ in targets)) if targets else max(0.0, max(values))
    span = (hi - lo) or 1.0

    def x_of(value: float) -> float:
        return left + (value - lo) / span * plot_w

    parts = [_svg_open(width, height, label)]
    zero_x = x_of(0.0)
    parts.append(
        f'<line class="baseline" x1="{zero_x:.1f}" y1="{top}" '
        f'x2="{zero_x:.1f}" y2="{height - top}"/>'
    )
    for i, (name, value, slot) in enumerate(rows):
        y = top + i * (bar_h + gap)
        x0, x1 = sorted((zero_x, x_of(value)))
        bar_w = max(1.0, x1 - x0)
        mid = y + bar_h / 2 + 4
        parts.append(
            f'<text class="lbl" x="{left - 8}" y="{mid:.1f}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect class="s{slot % len(_SERIES)}" x="{x0:.1f}" y="{y}" '
            f'width="{bar_w:.1f}" height="{bar_h}" rx="4">'
            f"<title>{_esc(name)}: {_fmt(value, digits)}{_esc(unit)}</title>"
            f"</rect>"
        )
        anchor_x = x1 + 6 if value >= 0 else x0 - 6
        anchor = "start" if value >= 0 else "end"
        parts.append(
            f'<text class="val" x="{anchor_x:.1f}" y="{mid:.1f}" '
            f'text-anchor="{anchor}">{_fmt(value, digits)}{_esc(unit)}</text>'
        )
    for t_value, t_label in targets:
        tx = x_of(t_value)
        parts.append(
            f'<line class="target" x1="{tx:.1f}" y1="{top - 4}" '
            f'x2="{tx:.1f}" y2="{height - top}"/>'
            f'<text class="lbl" x="{tx:.1f}" y="{top - 8}" '
            f'text-anchor="middle">{_esc(t_label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _heatmap(
    matrix: Sequence[Sequence[float]],
    *,
    label: str,
    row_name: str = "bank",
    col_name: str = "interval",
) -> str:
    """Banks x intervals heat grid on the sequential ramp."""
    rows = [list(row) for row in matrix]
    if not rows or not rows[0]:
        return '<p class="note">(no data)</p>'
    n_rows, n_cols = len(rows), len(rows[0])
    cell_w = max(6, min(22, 440 // n_cols))
    cell_h = 12
    left, top, pad = 54, 6, 2
    width = left + n_cols * cell_w + 10
    height = top + n_rows * cell_h + 24
    peak = max((v for row in rows for v in row), default=0.0) or 1.0
    parts = [_svg_open(width, height, label)]
    for r, row in enumerate(rows):
        y = top + r * cell_h
        if n_rows <= 16 or r % 2 == 0:
            parts.append(
                f'<text class="lbl" x="{left - 6}" y="{y + cell_h - 2}" '
                f'text-anchor="end">{_esc(row_name)}{r}</text>'
            )
        for c, value in enumerate(row):
            shade = min(7, int(value / peak * 7.999))
            parts.append(
                f'<rect class="h{shade}" x="{left + c * cell_w}" y="{y}" '
                f'width="{cell_w - pad}" height="{cell_h - pad}">'
                f"<title>{_esc(row_name)}{r}, {_esc(col_name)}{c}: "
                f"{value:.0f}</title></rect>"
            )
    parts.append(
        f'<text class="lbl" x="{left}" y="{height - 6}">'
        f"{n_cols} {_esc(col_name)}s &#8594; (peak {peak:.0f} writes/cell)</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _timeline(
    series: dict[str, list[float]],
    slots: dict[str, int],
    *,
    label: str,
    y_label: str,
) -> str:
    """Multi-series line chart on a shared x (interval index) axis."""
    series = {k: v for k, v in series.items() if v}
    if not series:
        return '<p class="note">(no data)</p>'
    width, height, left, top = 640, 200, 56, 14
    plot_w, plot_h = width - left - 16, height - top - 30
    n = max(len(v) for v in series.values())
    peak = max((v for vals in series.values() for v in vals), default=0.0) or 1.0
    parts = [_svg_open(width, height, label)]
    for frac in (0.0, 0.5, 1.0):
        gy = top + plot_h * (1 - frac)
        parts.append(
            f'<line class="grid" x1="{left}" y1="{gy:.1f}" '
            f'x2="{left + plot_w}" y2="{gy:.1f}"/>'
            f'<text class="lbl" x="{left - 6}" y="{gy + 4:.1f}" '
            f'text-anchor="end">{frac * peak:.0f}</text>'
        )
    for name, values in series.items():
        slot = slots.get(name, 0) % len(_SERIES)
        points = []
        for i, value in enumerate(values):
            x = left + (i / max(1, n - 1)) * plot_w
            y = top + plot_h * (1 - value / peak)
            points.append(f"{x:.1f},{y:.1f}")
        parts.append(
            f'<polyline class="l{slot}" points="{" ".join(points)}">'
            f"<title>{_esc(name)}</title></polyline>"
        )
        end_x, end_y = points[-1].split(",")
        parts.append(
            f'<circle class="s{slot}" cx="{end_x}" cy="{end_y}" r="3"/>'
            f'<text class="lbl" x="{float(end_x) - 4:.1f}" '
            f'y="{float(end_y) - 7:.1f}" text-anchor="end">{_esc(name)}</text>'
        )
    parts.append(
        f'<text class="lbl" x="{left}" y="{height - 6}">'
        f"{_esc(y_label)} per interval &#8594; {n} intervals</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _scatter_chart(
    points: Sequence[tuple],
    *,
    label: str,
    x_label: str,
    y_label: str,
) -> str:
    """Scatter of (x, y, css class, tooltip) points with padded axes.

    Classes: ``pt-front`` (frontier, full color), ``pt-dim`` (dominated,
    faded), ``pt-ref`` (reference marker, ringed and labelled); overlay
    charts use the sequential ``h0``–``h7`` ramp instead.  A point may
    carry an optional fifth element — an internal ``#fragment`` href —
    and renders as a clickable marker (the history report's per-point
    ledger drill-down).
    """
    if not points:
        return '<p class="note">(no data)</p>'
    width, height, left, top = 640, 300, 64, 16
    plot_w, plot_h = width - left - 24, height - top - 44
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = (x_hi - x_lo) * 0.08 or abs(x_hi) * 0.05 or 1.0
    y_pad = (y_hi - y_lo) * 0.08 or abs(y_hi) * 0.05 or 1.0
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def sx(value: float) -> float:
        return left + (value - x_lo) / (x_hi - x_lo) * plot_w

    def sy(value: float) -> float:
        return top + plot_h * (1 - (value - y_lo) / (y_hi - y_lo))

    parts = [_svg_open(width, height, label)]
    for frac in (0.0, 0.5, 1.0):
        gx = x_lo + frac * (x_hi - x_lo)
        gy = y_lo + frac * (y_hi - y_lo)
        parts.append(
            f'<line class="grid" x1="{left}" y1="{sy(gy):.1f}" '
            f'x2="{left + plot_w}" y2="{sy(gy):.1f}"/>'
            f'<text class="lbl" x="{left - 6}" y="{sy(gy) + 4:.1f}" '
            f'text-anchor="end">{gy:.2f}</text>'
            f'<line class="grid" x1="{sx(gx):.1f}" y1="{top}" '
            f'x2="{sx(gx):.1f}" y2="{top + plot_h}"/>'
            f'<text class="lbl" x="{sx(gx):.1f}" '
            f'y="{top + plot_h + 14}" text-anchor="middle">{gx:.2f}</text>'
        )
    # Dominated points first so the frontier and reference draw on top.
    ordered = sorted(points, key=lambda p: ("pt-dim" not in p[2], "pt-ref" in p[2]))
    for point in ordered:
        x, y, cls, name = point[0], point[1], point[2], point[3]
        href = point[4] if len(point) > 4 else None
        r = 6 if "pt-ref" in cls else 4
        circle = (
            f'<circle class="{_esc(cls)}" cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
            f'r="{r}"><title>{_esc(name)}</title></circle>'
        )
        if href:
            circle = f'<a href="{_esc(href)}">{circle}</a>'
        parts.append(circle)
        if "pt-ref" in cls:
            parts.append(
                f'<text class="lbl" x="{sx(x) + 9:.1f}" y="{sy(y) - 7:.1f}">'
                f"{_esc(name.split(chr(10))[0])}</text>"
            )
    parts.append(
        f'<text class="lbl" x="{left + plot_w}" y="{height - 6}" '
        f'text-anchor="end">{_esc(x_label)} &#8594;</text>'
        f'<text class="lbl" x="{left}" y="{top - 4}">{_esc(y_label)} &#8593;</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _sparkline(
    values: Sequence[float],
    *,
    label: str,
    digits: int = 3,
    width: int = 170,
    height: int = 34,
) -> str:
    """Tiny inline trend line with the latest value spelled out.

    Sparklines trade axes for density, so the numeric endpoints ride
    along: the last value is printed and the full range lives in the
    tooltip — the chart is never color- or shape-alone.
    """
    values = [float(v) for v in values]
    if not values:
        return '<p class="note">(no samples)</p>'
    pad, right = 4, 56
    plot_w, plot_h = width - pad - right, height - 2 * pad
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    tooltip = (
        f"{label}: {len(values)} samples, "
        f"min {lo:.{digits}g}, max {hi:.{digits}g}"
    )
    parts = [_svg_open(width, height, label)]
    coords = []
    for i, value in enumerate(values):
        x = pad + (i / max(1, len(values) - 1)) * plot_w
        y = pad + plot_h * (1 - (value - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    if len(coords) > 1:
        parts.append(
            f'<polyline class="l0" points="{" ".join(coords)}">'
            f"<title>{_esc(tooltip)}</title></polyline>"
        )
    end_x, end_y = coords[-1].split(",")
    parts.append(
        f'<circle class="s0" cx="{end_x}" cy="{end_y}" r="2.5">'
        f"<title>{_esc(tooltip)}</title></circle>"
    )
    parts.append(
        f'<text class="val" x="{width - pad}" y="{float(end_y) + 4:.1f}" '
        f'text-anchor="end">{values[-1]:.{digits}g}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _legend(slots: dict[str, int]) -> str:
    chips = "".join(
        f'<span class="chip"><span class="swatch s{slot % len(_SERIES)}">'
        f"</span>{_esc(name)}</span>"
        for name, slot in slots.items()
    )
    return f'<div class="legend">{chips}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# -- the report --------------------------------------------------------------

_STYLE = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
  }
}
body { margin: 0 auto; max-width: 980px; padding: 24px 20px 60px;
       background: var(--page); color: var(--ink);
       font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 34px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.note { color: var(--muted); font-size: 13px; }
.bad { color: #b3261e; }
section.card { background: var(--surface); border: 1px solid var(--border);
               border-radius: 8px; padding: 14px 16px; margin: 14px 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 10px 16px; min-width: 150px; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.tile .v { font-size: 24px; }
.tile .d { color: var(--muted); font-size: 12px; }
table { border-collapse: collapse; margin: 8px 0; font-size: 13px; }
th, td { text-align: right; padding: 3px 10px;
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600;
     border-bottom: 1px solid var(--axis); }
th:first-child, td:first-child { text-align: left; }
tbody tr:nth-child(even) { background: color-mix(in srgb, var(--grid) 35%, transparent); }
.legend { margin: 4px 0 8px; }
.chip { margin-right: 14px; color: var(--ink-2); font-size: 13px; }
.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; margin-right: 5px; }
svg { display: block; margin: 6px 0; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .lbl { fill: var(--muted); }
svg .val { fill: var(--ink-2); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .baseline { stroke: var(--axis); stroke-width: 1; }
svg .target { stroke: var(--ink-2); stroke-width: 1;
              stroke-dasharray: 3 3; }
svg polyline { fill: none; stroke-width: 2; stroke-linejoin: round; }
svg .pt-front { fill: #2a78d6; }
svg .pt-dim { fill: var(--muted); opacity: 0.4; }
svg .pt-ref { fill: #eb6834; stroke: var(--ink); stroke-width: 1.5; }
svg a circle { stroke: var(--ink-2); stroke-width: 0.8; cursor: pointer; }
tr:target { outline: 2px solid #eb6834; }
details summary { cursor: pointer; color: var(--ink-2); font-size: 13px; }
"""


def _series_css() -> str:
    lines = []
    for i, (light, dark) in enumerate(_SERIES):
        lines.append(f"svg .s{i}, .swatch.s{i} {{ fill: {light}; background: {light}; }}")
        lines.append(f"svg .l{i} {{ stroke: {light}; }}")
    for i, shade in enumerate(_HEAT_LIGHT):
        lines.append(
            f"svg .h{i}, .swatch.h{i} {{ fill: {shade}; background: {shade}; }}"
        )
    dark_lines = []
    for i, (light, dark) in enumerate(_SERIES):
        dark_lines.append(
            f"svg .s{i}, .swatch.s{i} {{ fill: {dark}; background: {dark}; }}"
        )
        dark_lines.append(f"svg .l{i} {{ stroke: {dark}; }}")
    for i, shade in enumerate(_HEAT_DARK):
        dark_lines.append(
            f"svg .h{i}, .swatch.h{i} {{ fill: {shade}; background: {shade}; }}"
        )
    return (
        "\n".join(lines)
        + "\n@media (prefers-color-scheme: dark) {\n"
        + "\n".join(dark_lines)
        + "\n}"
    )


def _first_intervals(
    matrix: MatrixResult,
) -> list[tuple[str, str, WorkloadSchemeResult]]:
    """Cells that carry an interval series, in matrix order."""
    out = []
    for workload in matrix.workloads:
        for scheme in matrix.schemes:
            result = matrix.results.get((workload, scheme))
            if result is not None and result.intervals is not None \
                    and len(result.intervals):
                out.append((workload, scheme, result))
    return out


def render_html_report(
    matrix: MatrixResult,
    *,
    ledger_records: Sequence | None = None,
    title: str = "Re-NUCA result report",
) -> str:
    """Render the full single-file report; returns the HTML text."""
    slots = {scheme: i for i, scheme in enumerate(matrix.schemes)}
    chunks: list[str] = []
    generated = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime())
    sha = None
    if ledger_records:
        for record in reversed(list(ledger_records)):
            if record.git_sha:
                sha = record.git_sha
                break
    chunks.append(f"<h1>{_esc(title)}</h1>")
    failed_cells = matrix.failed_cells
    failed_schemes = {r.scheme for r in failed_cells}
    chunks.append(
        f'<p class="sub">matrix <b>{_esc(matrix.label)}</b> &#183; '
        f"{len(matrix.workloads)} workloads &#215; "
        f"{len(matrix.schemes)} schemes &#183; generated {generated} UTC"
        + (f" &#183; commit {_esc(sha[:12])}" if sha else "")
        + (
            f' &#183; <b class="bad">{len(failed_cells)} FAILED cells</b>'
            if failed_cells else ""
        )
        + "</p>"
    )

    # Quarantined cells first: a FAILED placeholder means every scheme
    # aggregate below it is partial, so the reader sees the caveat
    # before the numbers.
    if failed_cells:
        chunks.append(
            '<section class="card"><h2>Failed cells (quarantined)</h2>'
            '<p class="note">These cells are zeroed placeholders from a '
            "--keep-going sweep, not measurements; scheme aggregates "
            "involving them are suppressed below.</p>"
        )
        chunks.append(_table(
            ["workload", "scheme", "reason"],
            [(r.workload, r.scheme, r.failure_reason) for r in failed_cells],
        ))
        chunks.append("</section>")

    # Headline tiles.
    tiles = []
    for scheme in matrix.schemes:
        live = [
            matrix.get(wl, scheme) for wl in matrix.workloads
            if not matrix.get(wl, scheme).failed
        ]
        mean_ipc = sum(r.ipc for r in live) / len(live) if live else 0.0
        mean_energy = (
            sum(r.energy_mj for r in live) / len(live) if live else 0.0
        )
        if scheme in failed_schemes:
            life = "n/a (FAILED cells)"
        else:
            life = f"{matrix.raw_min_lifetime(scheme):.2f} y"
        tiles.append(
            '<div class="tile">'
            f'<div class="k">{_esc(scheme)}</div>'
            f'<div class="v">{mean_ipc:.2f}</div>'
            f'<div class="d">mean IPC &#183; raw min life '
            f"{life} &#183; energy {mean_energy:.2f} mJ</div></div>"
        )
    chunks.append(f'<div class="tiles">{"".join(tiles)}</div>')

    # Scheme comparison vs paper targets.
    chunks.append('<section class="card"><h2>Scheme comparison vs paper targets</h2>')
    baseline = "S-NUCA" if "S-NUCA" in matrix.schemes else matrix.schemes[0]
    others = [s for s in matrix.schemes if s != baseline]
    if others:
        rows = []
        suppressed = []
        for scheme in others:
            try:
                improvement = matrix.mean_ipc_improvement(scheme, baseline)
            except ReproError:
                # A FAILED cell in the scheme or the baseline zeroes an
                # IPC the ratio needs; the bar would be a lie.
                suppressed.append(scheme)
                continue
            rows.append((
                f"{scheme} IPC vs {baseline}", improvement, slots[scheme],
            ))
        if rows:
            chunks.append(_legend({s: slots[s] for s in others}))
            chunks.append(_hbar_chart(
                rows, label="Mean IPC improvement", unit="%",
            ))
            chunks.append(
                '<p class="note">Paper bar: Re-NUCA holds IPC within '
                "&#177;0.5 % of R-NUCA.</p>"
            )
        if suppressed:
            chunks.append(
                '<p class="note">IPC-improvement bars suppressed for '
                f"{_esc(', '.join(suppressed))}: FAILED cells in the "
                "comparison.</p>"
            )
    life_rows = [
        (scheme, matrix.raw_min_lifetime(scheme), slots[scheme])
        for scheme in matrix.schemes
        if scheme not in failed_schemes
    ]
    life_targets = []
    if "R-NUCA" in matrix.schemes and "R-NUCA" not in failed_schemes:
        life_targets.append(
            (1.42 * matrix.raw_min_lifetime("R-NUCA"), "+42% vs R-NUCA")
        )
    if life_rows:
        chunks.append(_hbar_chart(
            life_rows, label="Raw minimum lifetime", unit=" y",
            targets=life_targets,
        ))
    metric_rows = []
    for workload in matrix.workloads:
        for scheme in matrix.schemes:
            r = matrix.get(workload, scheme)
            if r.failed:
                metric_rows.append((
                    workload, scheme, "FAILED", "—", "—", "—",
                    r.failure_reason,
                ))
                continue
            metric_rows.append((
                workload, scheme, _fmt(r.ipc), _fmt(r.min_lifetime),
                _fmt(r.wear_cov, 3), _fmt(100 * r.llc_fetch_hit_rate, 1) + "%",
                _fmt(r.energy_mj),
            ))
    chunks.append("<details><summary>table view: all cells</summary>")
    chunks.append(_table(
        ["workload", "scheme", "IPC", "min life [y]", "wear CoV", "LLC hit",
         "energy [mJ]"],
        metric_rows,
    ))
    chunks.append("</details></section>")

    # Wear heatmaps over time.
    chunks.append('<section class="card"><h2>Wear heatmaps</h2>')
    with_intervals = _first_intervals(matrix)
    if with_intervals:
        shown = with_intervals[:MAX_HEATMAPS]
        for workload, scheme, result in shown:
            try:
                grid = result.intervals.bank_write_matrix().T
            except Exception:
                continue
            chunks.append(f"<h3>{_esc(workload)} / {_esc(scheme)}</h3>")
            chunks.append(_heatmap(
                grid.tolist(),
                label=f"bank writes over intervals, {workload}/{scheme}",
            ))
        if len(with_intervals) > len(shown):
            chunks.append(
                f'<p class="note">showing {len(shown)} of '
                f"{len(with_intervals)} cells with interval series.</p>"
            )
    else:
        chunks.append(
            '<p class="note">No interval series recorded (run with '
            "telemetry interval dumps for the over-time view); showing "
            "end-of-run totals.</p>"
        )
        for scheme in matrix.schemes:
            totals = [
                [float(matrix.get(wl, scheme).bank_writes[b])
                 for wl in matrix.workloads]
                for b in range(len(matrix.get(
                    matrix.workloads[0], scheme).bank_writes))
            ]
            chunks.append(f"<h3>{_esc(scheme)}</h3>")
            chunks.append(_heatmap(
                totals, col_name="workload",
                label=f"total bank writes per workload, {scheme}",
            ))
    chunks.append("</section>")

    # Interval timelines.
    chunks.append('<section class="card"><h2>Interval write timelines</h2>')
    if with_intervals:
        workload = with_intervals[0][0]
        lines: dict[str, list[float]] = {}
        for wl, scheme, result in with_intervals:
            if wl != workload or scheme in lines:
                continue
            try:
                lines[scheme] = [
                    float(v)
                    for v in result.intervals.bank_write_matrix().sum(axis=1)
                ]
            except Exception:
                continue
        chunks.append(_legend({s: slots.get(s, 0) for s in lines}))
        chunks.append(_timeline(
            lines, slots,
            label=f"LLC writes per interval, {workload}",
            y_label=f"{workload}: LLC writes",
        ))
    else:
        chunks.append('<p class="note">(needs interval series)</p>')
    chunks.append("</section>")

    # Profiler phases (from the ledger).
    chunks.append('<section class="card"><h2>Profiler phases</h2>')
    phase_totals: dict[str, float] = {}
    profiled = 0
    for record in ledger_records or ():
        if record.profile:
            profiled += 1
            for phase, seconds in record.profile.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
    if phase_totals:
        total = sum(v for k, v in phase_totals.items() if "/" not in k) or 1.0
        chunks.append(_table(
            ["phase", "seconds", "share"],
            [
                (phase, _fmt(seconds, 3),
                 _fmt(100 * seconds / total, 1) + "%")
                for phase, seconds in sorted(phase_totals.items())
            ],
        ))
        chunks.append(
            f'<p class="note">aggregated over {profiled} profiled '
            "ledger runs.</p>"
        )
    else:
        chunks.append(
            '<p class="note">No profiled runs in the ledger '
            "(run with --profile --ledger).</p>"
        )
    chunks.append("</section>")

    # Ledger history.
    chunks.append('<section class="card"><h2>Run ledger history</h2>')
    records = list(ledger_records or ())
    if records:
        recent = records[-MAX_LEDGER_ROWS:]
        rows = []
        for record in reversed(recent):
            when = time.strftime(
                "%Y-%m-%d %H:%M", time.gmtime(record.timestamp)
            ) if record.timestamp else "-"
            rows.append((
                record.run_id, when,
                f"{record.workload}/{record.scheme}", record.source,
                _fmt(record.metrics.get("ipc", 0.0)),
                _fmt(record.metrics.get("min_lifetime", 0.0)),
                f"{record.wall_time_s:.2f}s",
                (record.git_sha or "untracked")[:10],
            ))
        chunks.append(_table(
            ["run", "when (UTC)", "cell", "source", "IPC",
             "min life [y]", "wall", "commit"],
            rows,
        ))
        if len(records) > len(recent):
            chunks.append(
                f'<p class="note">showing the most recent {len(recent)} '
                f"of {len(records)} ledger records.</p>"
            )
    else:
        chunks.append(
            '<p class="note">No ledger supplied (pass --ledger to include '
            "run history).</p>"
        )
    chunks.append("</section>")

    body = "\n".join(chunks)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}\n{_series_css()}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )


# -- design-space search report ----------------------------------------------


def _point_tooltip(evaluation) -> str:
    knobs = ", ".join(
        f"{k}={v}" for k, v in sorted(evaluation.values.items())
        if not k.startswith("__")
    )
    metrics = ", ".join(
        f"{k}={v:.3g}" for k, v in sorted(evaluation.metrics.items())
    )
    head = "Re-NUCA default" if evaluation.reference else evaluation.scheme
    return f"{head}\n{knobs}\n{metrics}"


def render_search_report(
    outcome,
    *,
    title: str = "Re-NUCA design-space search",
) -> str:
    """Render a :class:`~repro.search.drivers.SearchOutcome` to HTML.

    Same zero-external-reference contract as :func:`render_html_report`.
    The centrepiece is the Pareto scatter over the paper's trade-off
    (IPC vs raw minimum lifetime): dominated points dimmed, frontier
    points full-color, the Re-NUCA default marked and labelled.
    """
    chunks: list[str] = []
    generated = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime())
    final = outcome.final_evaluations()
    front_ids = {e.point_id for e in outcome.frontier}
    chunks.append(f"<h1>{_esc(title)}</h1>")
    chunks.append(
        f'<p class="sub">driver <b>{_esc(outcome.driver)}</b> &#183; '
        f"{outcome.report.get('points', len(final))} points &#183; budgets "
        f"{_esc(' &#8594; '.join(str(b) for b in outcome.budget_schedule))} "
        f"instr &#183; objectives {_esc(', '.join(outcome.objectives))} "
        f"&#183; generated {generated} UTC</p>"
    )

    # Headline tiles: frontier size and hypervolume.
    chunks.append(
        '<div class="tiles">'
        '<div class="tile"><div class="k">Pareto frontier</div>'
        f'<div class="v">{len(outcome.frontier)}</div>'
        f'<div class="d">of {len(final)} full-budget points</div></div>'
        '<div class="tile"><div class="k">hypervolume</div>'
        f'<div class="v">{outcome.hypervolume:.4g}</div>'
        f'<div class="d">vs per-axis-worst reference</div></div>'
        '<div class="tile"><div class="k">evaluations</div>'
        f'<div class="v">{outcome.report.get("evals_total", 0)}</div>'
        f'<div class="d">{outcome.report.get("evals_resumed", 0)} resumed '
        f'&#183; {outcome.report.get("jobs_cache_hits", 0)} sim cache hits'
        "</div></div></div>"
    )

    # Pareto scatter on the paper's trade-off axes.
    chunks.append(
        '<section class="card"><h2>Pareto frontier: IPC vs lifetime</h2>'
    )
    points = []
    for e in final:
        if e.reference:
            cls = "pt-ref"
        elif e.point_id in front_ids:
            cls = "pt-front"
        else:
            cls = "pt-dim"
        points.append((
            float(e.metrics["ipc"]), float(e.metrics["lifetime"]),
            cls, _point_tooltip(e),
        ))
    chunks.append(_scatter_chart(
        points,
        label="search points, IPC vs raw minimum lifetime",
        x_label="mean IPC", y_label="min lifetime [y]",
    ))
    chunks.append(
        '<p class="note">full-color: non-dominated '
        f"({_esc(', '.join(outcome.objectives))}); faded: dominated; "
        "ringed orange: the paper's Re-NUCA default.</p>"
    )

    # Frontier table, frontier-first then dominated.
    rows = []
    for e in sorted(final, key=lambda e: (e.point_id not in front_ids, e.point_id)):
        knobs = ", ".join(
            f"{k.split('.')[-1]}={v}"
            for k, v in sorted(e.values.items()) if not k.startswith("__")
        )
        rows.append((
            e.point_id,
            ("&#9733; " if e.point_id in front_ids else "")
            + ("Re-NUCA default" if e.reference else e.scheme),
            knobs or "—",
            _fmt(e.metrics["ipc"]),
            _fmt(e.metrics["lifetime"]),
            _fmt(e.metrics["energy"], 4),
            _fmt(e.metrics["wear_cov"], 3),
        ))
    table = _table(
        ["point", "scheme", "knobs", "IPC", "min life [y]",
         "energy [mJ]", "wear CoV"],
        rows,
    )
    # The scheme cell carries a pre-escaped frontier star.
    chunks.append(table.replace("&amp;#9733;", "&#9733;"))
    chunks.append("</section>")

    # Rung trajectory and engine accounting.
    chunks.append('<section class="card"><h2>Search accounting</h2>')
    per_rung: dict[int, int] = {}
    for e in outcome.evaluations:
        per_rung[e.rung] = per_rung.get(e.rung, 0) + 1
    chunks.append(_table(
        ["rung", "budget [instr]", "points evaluated"],
        [
            (r, outcome.budget_schedule[r], n)
            for r, n in sorted(per_rung.items())
        ],
    ))
    chunks.append(_table(
        ["counter", "value"],
        sorted(outcome.report.items()),
    ))
    chunks.append("</section>")

    body = "\n".join(chunks)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}\n{_series_css()}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )


# -- longitudinal history report ----------------------------------------------

#: Metric-trajectory sparkline tiles rendered at most.
MAX_TRAJECTORY_TILES = 24


def _when(timestamp: float | None) -> str:
    if not timestamp:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M", time.gmtime(timestamp))


def _anchored_ledger_table(records) -> str:
    """Ledger table whose rows carry ``id="run-<run_id>"`` anchors.

    The anchors are the targets of the frontier-overlay drill-down
    links, so every row a frontier point resolves to must be in here.
    """
    headers = ("run", "when (UTC)", "cell", "source", "IPC",
               "min life [y]", "wall", "commit", "fingerprint")
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = []
    for record in records:
        cells = (
            record.run_id,
            _when(record.timestamp),
            f"{record.workload}/{record.scheme}",
            record.source,
            _fmt(record.metrics.get("ipc", 0.0)),
            _fmt(record.metrics.get("min_lifetime", 0.0)),
            f"{record.wall_time_s:.2f}s",
            (record.git_sha or "untracked")[:10],
            (record.fingerprint or "-")[:12],
        )
        body.append(
            f'<tr id="run-{_esc(record.run_id)}">'
            + "".join(f"<td>{_esc(c)}</td>" for c in cells)
            + "</tr>"
        )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def render_history_report(
    index,
    *,
    last: int = 5,
    rules=None,
    window: int = 3,
    sustain: int = 1,
    title: str = "Re-NUCA longitudinal history",
) -> str:
    """Render a :class:`~repro.obs.history.RunIndex` timeline to HTML.

    Same zero-external-reference contract as :func:`render_html_report`.
    Sections: provenance tiles, the frontier-evolution overlay (last
    ``last`` recorded search frontiers on the recency color ramp, every
    point whose fingerprints resolve through the index hyperlinked to
    its run-ledger row), hypervolume/frontier-size sparklines,
    per-scheme metric-trajectory sparklines, the sliding-window
    trajectory gate (same ``rules``/``window``/``sustain`` semantics as
    ``repro history check``) and the anchored run-index table.
    """
    from repro.obs.trajectory import (
        gate_trajectories,
        metric_trajectories,
        render_trajectory_findings,  # noqa: F401  (re-export convenience)
    )

    chunks: list[str] = []
    generated = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime())
    commits = index.commits()
    chunks.append(f"<h1>{_esc(title)}</h1>")
    chunks.append(
        f'<p class="sub">{len(index.records)} ledger runs &#183; '
        f"{len(index.bench_points)} bench points &#183; "
        f"{len(index.searches)} search outcomes &#183; "
        f"{len(commits)} commits &#183; generated {generated} UTC</p>"
    )
    if index.is_empty():
        chunks.append(
            '<p class="note">Nothing indexed — point the history layer '
            "at a directory holding run ledgers, BENCH_*.json files or "
            "saved search outcomes.</p>"
        )
        return _history_document(title, chunks)

    tiles = (
        ("ledger runs", str(len(index.records)),
         f"{len(index.sources)} files indexed"),
        ("bench points", str(len(index.bench_points)),
         "matrix / throughput / search flavours"),
        ("search outcomes", str(len(index.searches)),
         f"overlaying the last {min(last, len(index.searches))}"),
        ("commits", str(len(commits)),
         "untracked runs count as one" if None in commits
         else "all runs tracked"),
    )
    chunks.append('<div class="tiles">' + "".join(
        f'<div class="tile"><div class="k">{_esc(k)}</div>'
        f'<div class="v">{_esc(v)}</div>'
        f'<div class="d">{_esc(d)}</div></div>'
        for k, v, d in tiles
    ) + "</div>")

    # Frontier evolution: the last K search frontiers, oldest lightest.
    chunks.append('<section class="card"><h2>Frontier evolution</h2>')
    searches = index.searches_by_age()
    shown = searches[-last:] if last > 0 else searches
    linked_ids: set = set()
    if shown:
        overlay: list = []
        resolved = unresolved = 0
        chips = []
        for i, search in enumerate(shown):
            shade = 1 + round(i / (len(shown) - 1) * 6) if len(shown) > 1 \
                else 7
            chips.append(
                f'<span class="chip"><span class="swatch h{shade}"></span>'
                f"{_esc(search.label)}</span>"
            )
            for e in search.outcome.frontier:
                records = index.linked_records(e)
                if records:
                    resolved += 1
                    linked_ids.update(r.run_id for r in records)
                    runs = "runs: " + ", ".join(r.run_id for r in records)
                else:
                    unresolved += 1
                    runs = "(no matching ledger record indexed)"
                tooltip = f"{search.label}\n{_point_tooltip(e)}\n{runs}"
                overlay.append((
                    float(e.metrics["ipc"]),
                    float(e.metrics["lifetime"]),
                    f"h{shade}",
                    tooltip,
                    f"#run-{records[0].run_id}" if records else None,
                ))
        chunks.append(f'<div class="legend">{"".join(chips)}</div>')
        chunks.append(_scatter_chart(
            overlay,
            label=f"Pareto frontiers of the last {len(shown)} searches",
            x_label="mean IPC", y_label="min lifetime [y]",
        ))
        chunks.append(
            f'<p class="note">darker = more recent; {resolved} frontier '
            f"point(s) hyperlinked to their run-ledger records"
            + (
                f', <span class="bad">{unresolved} unresolved</span> '
                "(pre-linkage journal or ledger not indexed)"
                if unresolved else ""
            )
            + ".</p>"
        )
        hv = [s.outcome.hypervolume for s in searches]
        chunks.append(
            '<div class="tiles">'
            '<div class="tile"><div class="k">hypervolume</div>'
            + _sparkline(hv, label="hypervolume over searches", digits=4)
            + f'<div class="d">{len(hv)} searches</div></div>'
            '<div class="tile"><div class="k">frontier size</div>'
            + _sparkline(
                [len(s.outcome.frontier) for s in searches],
                label="frontier size over searches", digits=2,
            )
            + f'<div class="d">{len(hv)} searches</div></div></div>'
        )
        chunks.append("<details><summary>table view: searches</summary>")
        chunks.append(_table(
            ["when (UTC)", "commit", "driver", "points", "frontier",
             "hypervolume", "file"],
            [
                (
                    _when(s.created_at),
                    (s.git_sha or "untracked")[:10],
                    s.outcome.driver,
                    s.outcome.report.get("points", "-"),
                    len(s.outcome.frontier),
                    f"{s.outcome.hypervolume:.4g}",
                    s.path,
                )
                for s in reversed(shown)
            ],
        ))
        chunks.append("</details>")
    else:
        chunks.append(
            '<p class="note">No search outcomes indexed (save one with '
            "repro search --out, or record BENCH search points).</p>"
        )
    chunks.append("</section>")

    # Metric trajectories.
    chunks.append('<section class="card"><h2>Metric trajectories</h2>')
    series = metric_trajectories(index)
    if series:
        keys = sorted(series)
        shown_keys = keys[:MAX_TRAJECTORY_TILES]
        tiles_html = []
        for key in shown_keys:
            source, scheme, metric = key
            points = series[key]
            shas = {p.git_sha for p in points}
            tiles_html.append(
                '<div class="tile">'
                f'<div class="k">{_esc(scheme)} &#183; {_esc(metric)} '
                f"({_esc(source)})</div>"
                + _sparkline(
                    [p.value for p in points],
                    label=f"{scheme} {metric} ({source})",
                )
                + f'<div class="d">{len(points)} samples &#183; '
                f"{len(shas)} commit(s)</div></div>"
            )
        chunks.append(f'<div class="tiles">{"".join(tiles_html)}</div>')
        if len(keys) > len(shown_keys):
            chunks.append(
                f'<p class="note">showing {len(shown_keys)} of '
                f"{len(keys)} series.</p>"
            )
    else:
        chunks.append('<p class="note">(no trajectory series)</p>')
    chunks.append("</section>")

    # Trajectory gate.
    chunks.append(
        '<section class="card"><h2>Trajectory gate '
        f"(window {window}, sustain {sustain})</h2>"
    )
    findings = gate_trajectories(
        series, rules, window=window, sustain=sustain
    )
    gated = sum(1 for points in series.values() if len(points) >= 2)
    if findings:
        chunks.append(_table(
            ["source", "scheme", "metric", "first sha", "when (UTC)",
             "baseline", "current", "note"],
            [
                (
                    f.source, f.scheme, f.metric,
                    (f.git_sha or "untracked")[:10],
                    _when(f.timestamp),
                    f"{f.baseline:.4f}", f"{f.current:.4f}", f.note,
                )
                for f in findings
            ],
        ))
        chunks.append(
            f'<p class="note"><span class="bad">{len(findings)} sustained '
            f"drift finding(s)</span> across {gated} gated series.</p>"
        )
    else:
        chunks.append(
            f'<p class="note">{gated} series gated, no sustained '
            "drift.</p>"
        )
    chunks.append("</section>")

    # Run index (the drill-down targets).
    chunks.append('<section class="card"><h2>Run index</h2>')
    if index.records:
        recent_ids = {r.run_id for r in index.records[-MAX_LEDGER_ROWS:]}
        keep = recent_ids | linked_ids
        rows = [r for r in index.records if r.run_id in keep]
        chunks.append(_anchored_ledger_table(list(reversed(rows))))
        if len(rows) < len(index.records):
            chunks.append(
                f'<p class="note">showing {len(rows)} of '
                f"{len(index.records)} ledger records (most recent plus "
                "all frontier-linked).</p>"
            )
    else:
        chunks.append('<p class="note">No run ledgers indexed.</p>')
    chunks.append("</section>")

    # Sources and scan warnings.
    chunks.append('<section class="card"><h2>Indexed sources</h2>')
    chunks.append(_table(
        ["file"], [(source,) for source in index.sources]
    ))
    if index.warnings:
        chunks.append(
            '<p class="note bad">'
            + f"{len(index.warnings)} warning(s):</p>"
        )
        chunks.append(_table(
            ["warning"], [(w,) for w in index.warnings]
        ))
    chunks.append("</section>")

    return _history_document(title, chunks)


def _history_document(title: str, chunks: list[str]) -> str:
    body = "\n".join(chunks)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}\n{_series_css()}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )
