"""Cross-run provenance index: the longitudinal history layer.

One repository accumulates many observability artefacts over time — run
ledgers (``*.jsonl`` of :class:`~repro.obs.ledger.RunRecord`), bench
trajectories (``BENCH_*.json``) and saved design-space search outcomes
(``SearchOutcome`` JSON).  Each is self-consistent but none tells the
longitudinal story alone.  :class:`RunIndex` folds them into one store
keyed by the provenance triple every artefact already carries:

* **git sha** — which commit produced the number (``None`` outside a
  checkout, rendered as *untracked*);
* **JobSpec fingerprint** — the content hash of a simulation's exact
  inputs, shared by ledger records, cache entries, journals and (since
  the linkage change) each search :class:`~repro.search.drivers.Evaluation`;
* **timestamp** — wall-clock ordering within and across commits.

The fingerprint is the linkage contract: a frontier point whose
evaluation carries fingerprints resolves — via :meth:`records_for` —
to the exact ledger record(s) whose simulations were folded into its
metrics.  The HTML history report uses this to hyperlink every frontier
marker to its run-ledger row; :mod:`repro.obs.trajectory` uses the
timestamp/sha axes to build per-scheme metric trajectories and gate
them.

Loading is tolerant at the fleet level and strict at the file level:
:meth:`scan` sniffs a directory tree and records per-file problems as
warnings instead of failing the whole index, while the explicit
``add_*`` methods raise :class:`~repro.common.errors.ReproError` so a
named file that cannot be read is a hard error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.bench import load_bench
from repro.obs.ledger import RunLedger

#: Directory names never descended into by :meth:`RunIndex.scan`.
_SKIP_DIRS = {"__pycache__", "node_modules", ".git"}

#: Scan-cache layout version; bump to invalidate every cached parse.
SCAN_CACHE_VERSION = 1


@dataclass
class IndexedSearch:
    """One saved search outcome plus where the index found it.

    ``created_at`` falls back to the file's mtime for outcomes written
    before the provenance fields existed, so overlays of mixed-age
    outcomes still order correctly.
    """

    outcome: object
    path: str
    created_at: float
    git_sha: str | None = None

    @property
    def label(self) -> str:
        sha = (self.git_sha or "untracked")[:10]
        return f"{sha} · {Path(self.path).name}"


@dataclass
class RunIndex:
    """Provenance-keyed store over ledgers, bench files and searches."""

    records: list = field(default_factory=list)
    bench_points: list = field(default_factory=list)
    searches: list = field(default_factory=list)
    #: Files successfully folded in, in add order.
    sources: list = field(default_factory=list)
    #: Per-file / per-point problems skipped during a tolerant scan.
    warnings: list = field(default_factory=list)
    _by_fingerprint: dict = field(default_factory=dict)
    _seen_run_ids: set = field(default_factory=set)

    # -- explicit loaders (strict: a named file must load) -------------------

    def add_ledger(self, path: str | Path) -> int:
        """Fold in one run-ledger JSONL; returns records added."""
        return self._fold_ledger(path, RunLedger(path).load())

    def _fold_ledger(self, path, records) -> int:
        added = 0
        for record in records:
            if record.run_id in self._seen_run_ids:
                continue
            self._seen_run_ids.add(record.run_id)
            self.records.append(record)
            if record.fingerprint:
                self._by_fingerprint.setdefault(
                    record.fingerprint, []
                ).append(record)
            added += 1
        self.sources.append(str(path))
        return added

    def add_bench(self, path: str | Path) -> int:
        """Fold in one ``BENCH_*.json`` trajectory; returns points added.

        Invalid points are skipped with a warning (the
        :func:`~repro.obs.bench.load_bench` contract); an unreadable
        file or wrong format version raises.
        """
        points, skipped = load_bench(path)
        return self._fold_bench(path, points, skipped)

    def _fold_bench(self, path, points, skipped) -> int:
        self.warnings.extend(skipped)
        self.bench_points.extend(points)
        self.sources.append(str(path))
        return len(points)

    def add_search(self, path: str | Path) -> int:
        """Fold in one saved ``SearchOutcome`` JSON; returns 1."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read search outcome {path}: {exc}"
            ) from exc
        return self._fold_search(path, payload)

    def _fold_search(self, path, payload) -> int:
        # Imported lazily: repro.search.drivers transitively imports the
        # job scheduler, which imports back into repro.obs — a module-top
        # import here would cycle through the package __init__.
        from repro.search.drivers import SearchOutcome

        path = Path(path)
        if not isinstance(payload, dict):
            raise ReproError(f"{path}: search outcome is not an object")
        outcome = SearchOutcome.from_dict(payload)
        created = outcome.created_at
        if created is None:
            try:
                created = path.stat().st_mtime
            except OSError:
                created = 0.0
        self.searches.append(IndexedSearch(
            outcome=outcome,
            path=str(path),
            created_at=float(created),
            git_sha=outcome.git_sha,
        ))
        self.sources.append(str(path))
        return 1

    # -- tolerant directory scan ---------------------------------------------

    @classmethod
    def scan(cls, root: str | Path, *, cache: str | Path | None = None) -> "RunIndex":
        """Index every recognisable artefact under ``root``.

        Sniffing rules: ``BENCH_*.json`` files are bench trajectories;
        other ``*.json`` dicts carrying ``format_version`` +
        ``evaluations`` + ``frontier`` are search outcomes; ``*.jsonl``
        files whose first record has ``run_id`` and ``metrics`` are run
        ledgers.  Everything else (sweep/search journals, configs) is
        left alone.  Files that sniff positive but fail to load become
        warnings, not errors.

        ``cache`` names an on-disk scan cache (JSON): every file's
        parsed contribution is stored keyed by its ``(mtime_ns, size)``
        stamp, so a rescan of a multi-thousand-run history re-reads only
        the files that changed.  A changed stamp, a deleted file, an
        unreadable cache or a ``SCAN_CACHE_VERSION`` bump all fall back
        to parsing — the cache can only ever cost a re-read, never
        correctness.  The cache file itself is never indexed.
        """
        root = Path(root)
        if not root.is_dir():
            raise ReproError(f"history scan root {root} is not a directory")
        index = cls()
        cache_path = Path(cache) if cache is not None else None
        cached = _load_scan_cache(cache_path)
        fresh: dict[str, dict] = {}
        for path in sorted(root.rglob("*")):
            if not path.is_file():
                continue
            if cache_path is not None and path == cache_path:
                continue
            if any(
                part in _SKIP_DIRS or part.startswith(".")
                for part in path.relative_to(root).parts[:-1]
            ):
                continue
            key = str(path.relative_to(root))
            stamp = _stamp(path)
            if cache_path is not None and stamp is not None:
                hit = cached.get(key)
                if (
                    hit is not None
                    and hit.get("stamp") == stamp
                    and index._fold_cached(path, hit)
                ):
                    fresh[key] = hit
                    continue
            entry = {"stamp": stamp, "kind": "other", "payload": None}
            try:
                if path.name.startswith("BENCH_") and path.suffix == ".json":
                    points, skipped = load_bench(path)
                    index._fold_bench(path, points, skipped)
                    entry.update(kind="bench", payload={
                        "points": points, "warnings": skipped,
                    })
                elif path.suffix == ".json" and _sniff_search(path):
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    index._fold_search(path, payload)
                    entry.update(kind="search", payload=payload)
                elif path.suffix == ".jsonl" and _sniff_ledger(path):
                    records = RunLedger(path).load()
                    index._fold_ledger(path, records)
                    entry.update(kind="ledger", payload=[
                        record.to_dict() for record in records
                    ])
            except ReproError as exc:
                index.warnings.append(str(exc))
                entry.update(kind="warn", payload=str(exc))
            if stamp is not None:
                fresh[key] = entry
        if cache_path is not None:
            _save_scan_cache(cache_path, fresh)
        return index

    def _fold_cached(self, path: Path, entry: dict) -> bool:
        """Replay one scan-cache entry; False sends the file to a re-parse."""
        from repro.obs.ledger import RunRecord

        kind = entry.get("kind")
        payload = entry.get("payload")
        try:
            if kind == "other":
                return True
            if kind == "warn":
                self.warnings.append(str(payload))
                return True
            if kind == "bench":
                self._fold_bench(
                    path, list(payload["points"]), list(payload["warnings"]),
                )
                return True
            if kind == "search":
                self._fold_search(path, payload)
                return True
            if kind == "ledger":
                self._fold_ledger(
                    path, [RunRecord.from_dict(d) for d in payload],
                )
                return True
        except (ReproError, KeyError, TypeError, ValueError):
            return False
        return False

    # -- queries --------------------------------------------------------------

    def records_for(self, fingerprint: str | None) -> list:
        """Ledger records matching one JobSpec fingerprint (add order)."""
        if not fingerprint:
            return []
        return list(self._by_fingerprint.get(fingerprint, []))

    def linked_records(self, evaluation) -> list:
        """Ledger records behind one search evaluation, deduplicated.

        Resolves each of the evaluation's JobSpec fingerprints through
        the index; an evaluation from a pre-linkage journal (no
        fingerprints) or whose runs were never ledgered yields ``[]``.
        """
        out: list = []
        seen: set = set()
        for fingerprint in getattr(evaluation, "fingerprints", ()):
            for record in self.records_for(fingerprint):
                if record.run_id not in seen:
                    seen.add(record.run_id)
                    out.append(record)
        return out

    def searches_by_age(self) -> list:
        """Indexed searches oldest-first (created_at, then path)."""
        return sorted(self.searches, key=lambda s: (s.created_at, s.path))

    def commits(self) -> list:
        """Distinct git shas in first-seen timestamp order.

        ``None`` (untracked runs) participates as its own pseudo-commit
        so out-of-checkout history still renders.
        """
        first_seen: dict = {}

        def note(sha, ts) -> None:
            ts = float(ts or 0.0)
            if sha not in first_seen or ts < first_seen[sha]:
                first_seen[sha] = ts

        for record in self.records:
            note(record.git_sha, record.timestamp)
        for point in self.bench_points:
            note(point.get("git_sha"), point.get("timestamp", 0.0))
        for search in self.searches:
            note(search.git_sha, search.created_at)
        return sorted(first_seen, key=lambda sha: (first_seen[sha], sha or ""))

    def is_empty(self) -> bool:
        return not (self.records or self.bench_points or self.searches)


def _stamp(path: Path) -> list | None:
    """Invalidation key of one scanned file: ``[mtime_ns, size]``."""
    try:
        st = path.stat()
    except OSError:
        return None
    return [st.st_mtime_ns, st.st_size]


def _load_scan_cache(path: Path | None) -> dict:
    """Entries of one scan cache ({} for None/missing/damaged/stale)."""
    if path is None or not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if (
        not isinstance(payload, dict)
        or payload.get("format_version") != SCAN_CACHE_VERSION
        or not isinstance(payload.get("files"), dict)
    ):
        return {}
    return payload["files"]


def _save_scan_cache(path: Path, files: dict) -> None:
    """Persist the scan cache (atomic; failures are non-fatal)."""
    from repro.sim.store import atomic_write_text

    try:
        atomic_write_text(path, json.dumps({
            "format_version": SCAN_CACHE_VERSION,
            "files": files,
        }))
    except (OSError, TypeError, ValueError):
        # An unwritable or unserialisable cache only costs the speedup.
        pass


def _sniff_ledger(path: Path) -> bool:
    """Does the first record of this JSONL look like a run ledger?"""
    line = _first_line(path)
    if line is None:
        return False
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(record, dict) and "run_id" in record \
        and "metrics" in record


def _sniff_search(path: Path) -> bool:
    """Does this JSON document look like a saved search outcome?"""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return False
    return isinstance(payload, dict) and "format_version" in payload \
        and "evaluations" in payload and "frontier" in payload


def _first_line(path: Path) -> str | None:
    """First non-empty line of a text file (None when unreadable/empty)."""
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    return line
    except (OSError, UnicodeDecodeError):
        return None
    return None
