"""Live sweep progress: one rewriting status line over a job stream.

The sweep scheduler (:func:`repro.jobs.scheduler.run_jobs`) emits
:class:`JobEvent` notifications through its ``observer`` hook as cells
are dispatched, served from the cache or journal, retried and
completed.  :class:`SweepProgress` folds that stream into a single
``\\r``-rewritten status line::

    [#########...........]  5/12 cells | 2 cached, 1 resumed | 4 running: WL1/Re-NUCA … | ETA 18s

The ETA is a running mean: completed-execution wall times are averaged
and scaled by the remaining cell count over the worker count.  Cells
served from the cache or journal are free and never pollute the mean.

The renderer writes to any text stream (stderr by default) and keeps
redraws at most one per ``min_redraw_s`` except for terminal events, so
a thousand-cell sweep does not melt a slow console.  ``close()`` ends
the line with a newline and a final summary so the last state stays in
the scrollback.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

#: Observer event kinds emitted by the scheduler.  ``timeout`` marks a
#: watchdog kill, ``requeue`` an innocent job put back after a pool
#: rebuild, ``failed`` a quarantined cell (``keep_going`` sweeps).
EVENT_KINDS = (
    "dispatch", "done", "cache", "resumed", "retry",
    "timeout", "requeue", "failed",
)


@dataclass(frozen=True)
class JobEvent:
    """One scheduler notification: what just happened to which cell."""

    kind: str
    #: Short human-readable cell label (``WL1/Re-NUCA``).
    label: str
    #: Job index in submission order.
    index: int
    #: Wall seconds the execution took (``done`` events only).
    wall_time_s: float = 0.0


def tee_observers(*observers):
    """Compose observer hooks: every non-None one sees every event.

    Returns None when nothing is active, the sole hook when only one
    is, and a fan-out callable otherwise — so ``run_jobs`` callers can
    chain a progress renderer, a monitor state and a span observer
    onto the single ``observer`` slot.
    """
    active = [observer for observer in observers if observer is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def _fan_out(event) -> None:
        for observer in active:
            observer(event)

    return _fan_out


@dataclass
class SweepProgress:
    """Single-line live renderer for a sweep's :class:`JobEvent` stream."""

    total: int
    workers: int = 1
    stream: object = None
    bar_width: int = 20
    min_redraw_s: float = 0.1
    #: Monitor-server port, shown as a ``serving :PORT`` suffix so a
    #: watcher knows where ``repro top`` can attach.
    serving: int | None = None
    _done: int = 0
    _cached: int = 0
    _resumed: int = 0
    _retries: int = 0
    _timeouts: int = 0
    _failed: int = 0
    _in_flight: dict[int, str] = field(default_factory=dict)
    _durations: list[float] = field(default_factory=list)
    _started: float = field(default_factory=time.monotonic)
    _last_draw: float = 0.0
    _last_width: int = 0

    def __post_init__(self) -> None:
        if self.stream is None:
            self.stream = sys.stderr

    # -- event folding -------------------------------------------------------

    def __call__(self, event: JobEvent) -> None:
        """The scheduler's ``observer`` hook."""
        force = False
        if event.kind == "dispatch":
            self._in_flight[event.index] = event.label
        elif event.kind == "done":
            self._in_flight.pop(event.index, None)
            self._done += 1
            self._durations.append(event.wall_time_s)
            force = self.completed == self.total
        elif event.kind == "cache":
            self._cached += 1
            force = self.completed == self.total
        elif event.kind == "resumed":
            self._resumed += 1
            force = self.completed == self.total
        elif event.kind == "retry":
            self._retries += 1
        elif event.kind == "timeout":
            self._timeouts += 1
        elif event.kind == "failed":
            # A quarantined cell is resolved (as a FAILED placeholder):
            # it leaves the in-flight set and counts toward completion.
            self._in_flight.pop(event.index, None)
            self._failed += 1
            force = self.completed == self.total
        # "requeue" needs no folding: the job stays in the in-flight
        # set and is resubmitted after the pool rebuild.
        self._draw(force=force)

    @property
    def completed(self) -> int:
        """Cells resolved so far, by any tier (FAILED placeholders too)."""
        return self._done + self._cached + self._resumed + self._failed

    @property
    def remaining(self) -> int:
        """Cells still to resolve.

        Quarantined FAILED cells are *resolved* (as placeholders), not
        future work: counting them as remaining would inflate the ETA
        by a mean execution time each — precisely the cells that never
        execute again.
        """
        return max(0, self.total - self.completed)

    def eta_seconds(self) -> float | None:
        """Running-mean ETA over the remaining cells (None before data)."""
        if self.remaining <= 0:
            return 0.0
        if not self._durations:
            return None
        mean = sum(self._durations) / len(self._durations)
        return self.remaining * mean / max(1, self.workers)

    # -- rendering -----------------------------------------------------------

    def status_line(self) -> str:
        """The current one-line status (without the carriage return)."""
        filled = (
            round(self.bar_width * self.completed / self.total)
            if self.total else self.bar_width
        )
        bar = "#" * filled + "." * (self.bar_width - filled)
        parts = [f"[{bar}] {self.completed}/{self.total} cells"]
        served = []
        if self._cached:
            served.append(f"{self._cached} cached")
        if self._resumed:
            served.append(f"{self._resumed} resumed")
        if self._retries:
            served.append(f"{self._retries} retried")
        if self._timeouts:
            served.append(f"{self._timeouts} timed out")
        if self._failed:
            served.append(f"{self._failed} FAILED")
        if served:
            parts.append(", ".join(served))
        if self._in_flight:
            labels = [self._in_flight[i] for i in sorted(self._in_flight)]
            shown = labels[0] if len(labels) == 1 else f"{labels[0]} …"
            parts.append(f"{len(labels)} running: {shown}")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append("done" if eta == 0.0 else f"ETA {_fmt_secs(eta)}")
        if self.serving is not None:
            parts.append(f"serving :{self.serving}")
        return " | ".join(parts)

    def _draw(self, *, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_redraw_s:
            return
        self._last_draw = now
        line = self.status_line()
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Finish the line: redraw the final state and append a newline."""
        self._draw(force=True)
        elapsed = time.monotonic() - self._started
        self.stream.write(f"\n({_fmt_secs(elapsed)} elapsed)\n")
        self.stream.flush()

    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _fmt_secs(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
