"""Run provenance, regression gating, HTML reporting and live progress.

``repro.obs`` is the layer that remembers what the simulator did and
notices when it changes:

* :mod:`repro.obs.ledger` — the append-only :class:`RunLedger` of
  per-run provenance records (what ran, under which inputs, what it
  measured, how long it took);
* :mod:`repro.obs.diff` — per-metric tolerance rules and the
  ``repro diff`` regression gate built on them;
* :mod:`repro.obs.html_report` — the self-contained single-file HTML
  report behind ``repro report --html``;
* :mod:`repro.obs.progress` — the single-line live progress renderer
  behind ``repro sweep --progress``;
* :mod:`repro.obs.bench` — machine-readable ``BENCH_*.json`` timing/IPC
  trajectories (``repro bench-record``).

See ``docs/OBSERVABILITY.md`` for the schemas and the CLI surface.
"""

from __future__ import annotations

from repro.obs.bench import append_bench_point, load_bench_trajectory
from repro.obs.diff import (
    DEFAULT_RULES,
    DiffFinding,
    ToleranceRule,
    diff_metric_maps,
    load_comparable,
    load_rules,
    render_findings,
)
from repro.obs.html_report import render_html_report
from repro.obs.ledger import (
    LEDGER_FORMAT_VERSION,
    RunLedger,
    RunRecord,
    current_git_sha,
    new_run_id,
)
from repro.obs.progress import SweepProgress

__all__ = [
    "DEFAULT_RULES",
    "DiffFinding",
    "LEDGER_FORMAT_VERSION",
    "RunLedger",
    "RunRecord",
    "SweepProgress",
    "ToleranceRule",
    "append_bench_point",
    "current_git_sha",
    "diff_metric_maps",
    "load_bench_trajectory",
    "load_comparable",
    "load_rules",
    "new_run_id",
    "render_findings",
    "render_html_report",
]
