"""Run provenance, regression gating, HTML reporting and live progress.

``repro.obs`` is the layer that remembers what the simulator did and
notices when it changes:

* :mod:`repro.obs.ledger` — the append-only :class:`RunLedger` of
  per-run provenance records (what ran, under which inputs, what it
  measured, how long it took);
* :mod:`repro.obs.diff` — per-metric tolerance rules and the
  ``repro diff`` regression gate built on them;
* :mod:`repro.obs.html_report` — the self-contained single-file HTML
  report behind ``repro report --html``;
* :mod:`repro.obs.progress` — the single-line live progress renderer
  behind ``repro sweep --progress``;
* :mod:`repro.obs.bench` — machine-readable ``BENCH_*.json`` timing/IPC
  trajectories (``repro bench-record``);
* :mod:`repro.obs.spans` — cross-process span tracing (``spans.jsonl``)
  for sweeps and ``run_workload`` phases;
* :mod:`repro.obs.server` — the zero-dependency HTTP monitor behind
  ``repro sweep --serve`` (``/status`` JSON, ``/metrics`` Prometheus);
* :mod:`repro.obs.chrome_trace` — the Chrome ``trace_event`` /
  Perfetto exporter behind ``repro trace export``;
* :mod:`repro.obs.top` — the ``repro top`` live terminal dashboard;
* :mod:`repro.obs.history` — the cross-run :class:`RunIndex` joining
  ledgers, bench trajectories and search outcomes by provenance
  (``repro history``);
* :mod:`repro.obs.trajectory` — per-scheme metric trajectories over
  commits and the sliding-window drift gate (``repro history check``).

See ``docs/OBSERVABILITY.md`` for the schemas and the CLI surface.
"""

from __future__ import annotations

from repro.obs.bench import (
    append_bench_point,
    load_bench,
    load_bench_trajectory,
    validate_bench_point,
)
from repro.obs.chrome_trace import (
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.diff import (
    DEFAULT_RULES,
    DiffFinding,
    ToleranceRule,
    diff_metric_maps,
    load_comparable,
    load_rules,
    render_findings,
)
from repro.obs.history import IndexedSearch, RunIndex
from repro.obs.html_report import render_history_report, render_html_report
from repro.obs.ledger import (
    LEDGER_FORMAT_VERSION,
    RunLedger,
    RunRecord,
    current_git_sha,
    new_run_id,
)
from repro.obs.progress import SweepProgress, tee_observers
from repro.obs.server import MonitorServer, MonitorState, render_prometheus
from repro.obs.spans import (
    DISABLED_SPANS,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    SpanWriter,
    canonical_span_set,
    load_spans,
    phase_wall_table,
)
from repro.obs.top import render_dashboard, run_top, status_from_files
from repro.obs.trajectory import (
    TrajectoryFinding,
    TrajectoryPoint,
    gate_trajectories,
    metric_trajectories,
    render_trajectory_findings,
)

__all__ = [
    "DEFAULT_RULES",
    "DISABLED_SPANS",
    "DiffFinding",
    "IndexedSearch",
    "LEDGER_FORMAT_VERSION",
    "MonitorServer",
    "MonitorState",
    "RunIndex",
    "RunLedger",
    "RunRecord",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "SpanWriter",
    "SweepProgress",
    "ToleranceRule",
    "TrajectoryFinding",
    "TrajectoryPoint",
    "append_bench_point",
    "canonical_span_set",
    "chrome_trace",
    "current_git_sha",
    "diff_metric_maps",
    "export_chrome_trace",
    "gate_trajectories",
    "load_bench",
    "load_bench_trajectory",
    "load_comparable",
    "load_rules",
    "load_spans",
    "metric_trajectories",
    "new_run_id",
    "phase_wall_table",
    "render_dashboard",
    "render_findings",
    "render_history_report",
    "render_html_report",
    "render_prometheus",
    "render_trajectory_findings",
    "run_top",
    "status_from_files",
    "tee_observers",
    "validate_bench_point",
    "validate_chrome_trace",
]
