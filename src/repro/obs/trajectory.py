"""Metric trajectories over commits, and sliding-window drift gating.

Where :mod:`repro.obs.diff` answers "did these two result sets move?",
this module answers the longitudinal question: *is a metric drifting
across the recorded history?*  A :class:`~repro.obs.history.RunIndex`
is folded into **series** — ordered samples of one metric for one
scheme from one kind of source — and each series is gated by the same
:class:`~repro.obs.diff.ToleranceRule` vocabulary ``repro diff`` uses,
but against a **rolling-median baseline** over a sliding window instead
of a single pairwise baseline:

* for sample *i*, the baseline is the median of up to ``window``
  preceding samples (the median shrugs off one outlier run);
* a sample out of tolerance starts a violation run; only a run that
  lasts ``sustain`` consecutive samples becomes a finding — transient
  noise (one slow CI machine) does not fail the gate;
* the finding points at the run's **first** offending sample, so the
  reported sha is where the drift began, not where it was noticed.

Series are keyed ``(source, scheme, metric)`` and sources are never
mixed within one series: a bench point's mean IPC and a ledger batch's
mean IPC can legitimately cover different workload sets, and comparing
them pairwise would fabricate drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.obs.diff import DEFAULT_RULES, ToleranceRule

#: Series key: (source, scheme, metric).  ``source`` is one of
#: ``bench`` / ``ledger`` / ``search``.
SeriesKey = tuple[str, str, str]

#: Ledger metrics folded into trajectories, with their batch aggregator.
#: ``min_lifetime`` keeps the worst line (that is what the paper's
#: lifetime claim is about); the rest average over the batch.
_LEDGER_METRICS = ("ipc", "min_lifetime", "wear_cov", "energy_mj")


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of one series."""

    timestamp: float
    value: float
    git_sha: str | None = None
    #: How many underlying measurements were folded into this sample.
    count: int = 1


@dataclass(frozen=True)
class TrajectoryFinding:
    """One sustained out-of-tolerance drift in one series."""

    source: str
    scheme: str
    metric: str
    #: Sample index (within the series) where the violation run began.
    index: int
    git_sha: str | None
    timestamp: float
    baseline: float
    current: float
    note: str = ""

    @property
    def delta_pct(self) -> float | None:
        if self.baseline == 0.0:
            return None
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)


def metric_trajectories(index) -> dict[SeriesKey, list[TrajectoryPoint]]:
    """Fold a :class:`~repro.obs.history.RunIndex` into metric series.

    * bench matrix points → ``("bench", scheme, "ipc"/"min_lifetime")``;
    * ledger records → consecutive same-sha batches, aggregated per
      scheme over each batch (mean IPC/wear/energy, min lifetime) →
      ``("ledger", scheme, metric)``;
    * search bench points and indexed outcomes →
      ``("search", "search", "hypervolume"/"frontier_size")``.

    Every series comes back sorted by timestamp.
    """
    series: dict[SeriesKey, list[TrajectoryPoint]] = {}

    def add(key: SeriesKey, point: TrajectoryPoint) -> None:
        series.setdefault(key, []).append(point)

    for point in index.bench_points:
        ts = float(point.get("timestamp", 0.0))
        sha = point.get("git_sha")
        if "schemes" in point:
            for scheme, stats in point["schemes"].items():
                add(("bench", scheme, "ipc"), TrajectoryPoint(
                    ts, float(stats["mean_ipc"]), sha,
                    count=int(point.get("workloads", 1) or 1),
                ))
                add(("bench", scheme, "min_lifetime"), TrajectoryPoint(
                    ts, float(stats["raw_min_lifetime"]), sha,
                ))
        elif point.get("bench") == "search":
            add(("search", "search", "hypervolume"), TrajectoryPoint(
                ts, float(point["hypervolume"]), sha,
            ))
            add(("search", "search", "frontier_size"), TrajectoryPoint(
                ts, float(point["frontier_size"]), sha,
            ))

    for batch in _ledger_batches(index.records):
        sha = batch[0].git_sha
        ts = max(r.timestamp for r in batch)
        by_scheme: dict[str, list] = {}
        for record in batch:
            if record.source == "failed":
                continue
            by_scheme.setdefault(record.scheme, []).append(record)
        for scheme, records in by_scheme.items():
            for metric in _LEDGER_METRICS:
                values = [
                    r.metrics[metric] for r in records
                    if metric in r.metrics
                ]
                if not values:
                    continue
                folded = min(values) if metric == "min_lifetime" \
                    else sum(values) / len(values)
                add(("ledger", scheme, metric), TrajectoryPoint(
                    ts, folded, sha, count=len(values),
                ))

    for search in index.searches:
        add(("search", "search", "hypervolume"), TrajectoryPoint(
            search.created_at, float(search.outcome.hypervolume),
            search.git_sha,
        ))
        add(("search", "search", "frontier_size"), TrajectoryPoint(
            search.created_at, float(len(search.outcome.frontier)),
            search.git_sha,
        ))

    for points in series.values():
        points.sort(key=lambda p: p.timestamp)
    return series


def _ledger_batches(records) -> list:
    """Consecutive same-sha runs of ledger records, in index order.

    Records land in the index per-file in append order, so a batch is
    "what one commit's sweeps wrote" — the natural trajectory sample.
    """
    batches: list = []
    for record in records:
        if batches and batches[-1][0].git_sha == record.git_sha:
            batches[-1].append(record)
        else:
            batches.append([record])
    return batches


def gate_trajectories(
    series: dict[SeriesKey, list[TrajectoryPoint]],
    rules: dict[str, ToleranceRule] | None = None,
    *,
    window: int = 3,
    sustain: int = 1,
) -> list[TrajectoryFinding]:
    """Gate every series against its metric's tolerance rule.

    Only metrics with a rule are gated; series shorter than two samples
    are skipped (there is no trajectory to judge).  See the module
    docstring for the rolling-median / sustain semantics.

    Findings come back in ``(source, scheme, metric, index)`` order.
    """
    rules = DEFAULT_RULES if rules is None else rules
    if window < 1:
        window = 1
    if sustain < 1:
        sustain = 1
    findings: list[TrajectoryFinding] = []
    for key in sorted(series):
        source, scheme, metric = key
        rule = rules.get(metric)
        points = series[key]
        if rule is None or len(points) < 2:
            continue
        run_start: int | None = None
        run_length = 0
        reported = False
        for i in range(1, len(points)):
            lo = max(0, i - window)
            baseline = median(p.value for p in points[lo:i])
            if rule.violated_by(baseline, points[i].value):
                if run_start is None:
                    run_start = i
                run_length += 1
                if run_length >= sustain and not reported:
                    first = points[run_start]
                    base_at_start = median(
                        p.value
                        for p in points[max(0, run_start - window):run_start]
                    )
                    findings.append(TrajectoryFinding(
                        source=source,
                        scheme=scheme,
                        metric=metric,
                        index=run_start,
                        git_sha=first.git_sha,
                        timestamp=first.timestamp,
                        baseline=base_at_start,
                        current=first.value,
                        note=_sustain_note(rule, run_length, sustain),
                    ))
                    reported = True
            else:
                run_start = None
                run_length = 0
                reported = False
    return findings


def _sustain_note(rule: ToleranceRule, run_length: int, sustain: int) -> str:
    from repro.obs.diff import _limit_text

    note = _limit_text(rule)
    if sustain > 1:
        note += f" for {run_length} consecutive samples"
    return note


def render_trajectory_findings(
    findings: list[TrajectoryFinding],
    series: dict[SeriesKey, list[TrajectoryPoint]] | None = None,
) -> str:
    """Human-readable gate summary (table of findings, or the all-clear)."""
    from repro.experiments.report import format_table

    gated = 0
    if series is not None:
        gated = sum(1 for points in series.values() if len(points) >= 2)
    if not findings:
        return (
            f"{gated} series gated, no sustained drift"
            if series is not None else "no sustained drift"
        )
    rows = []
    for f in findings:
        delta = f.delta_pct
        rows.append((
            "FAIL",
            f.source,
            f.scheme,
            f.metric,
            (f.git_sha or "untracked")[:10],
            f"{f.baseline:.4f}",
            f"{f.current:.4f}",
            "-" if delta is None else f"{delta:+.2f}%",
            f.note,
        ))
    table = format_table(
        ["", "source", "scheme", "metric", "first sha", "baseline",
         "current", "drift", "note"],
        rows,
    )
    tail = f"{len(findings)} sustained drift finding(s)"
    if series is not None:
        tail += f" across {gated} gated series"
    return f"{table}\n{tail}"
