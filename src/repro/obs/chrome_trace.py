"""Chrome ``trace_event`` / Perfetto JSON export of a sweep's spans.

``repro trace export OUT.json --spans spans.jsonl`` converts the span
file written by a sweep (see :mod:`repro.obs.spans`) into the JSON
object format understood by https://ui.perfetto.dev and
``chrome://tracing``:

* every durable span becomes one complete (``"ph": "X"``) event;
* every instant ``event`` span (retry, watchdog timeout, requeue,
  crash, quarantine) becomes a thread-scoped instant (``"ph": "i"``)
  marker on the same track;
* spans are laid out on **per-worker tracks**: the recording process's
  pid keys the track, and metadata (``"ph": "M"``) events name the
  parent process ``sweep`` and each worker ``worker <pid>``.

Timestamps are microseconds relative to the earliest span, so the
trace always starts at zero.  :func:`validate_chrome_trace` is a
minimal structural validator (no third-party JSON-schema dependency)
used by the tests and the CI monitor-smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.spans import Span, load_spans

#: ``otherData`` stamp in the exported trace.
TRACE_EXPORT_VERSION = 1

#: The minimal structural schema the exported trace must satisfy —
#: JSON-Schema-shaped for documentation, enforced by
#: :func:`validate_chrome_trace` without third-party dependencies.
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "ts", "name"],
                "properties": {
                    "ph": {"enum": ["X", "i", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


def chrome_trace(spans: list[Span]) -> dict:
    """Render a span list as one Chrome ``trace_event`` JSON object."""
    events: list[dict] = []
    if spans:
        base_s = min(span.start_s for span in spans)
    else:
        base_s = 0.0

    # The parent process is whichever pid recorded the sweep root (or,
    # lacking one, the first span); every other pid is a worker track.
    parent_pid = None
    for span in spans:
        if span.category == "sweep":
            parent_pid = span.pid
            break
    if parent_pid is None and spans:
        parent_pid = spans[0].pid

    pids: list[int] = []
    for span in spans:
        if span.pid not in pids:
            pids.append(span.pid)
    for pid in pids:
        name = "sweep" if pid == parent_pid else f"worker {pid}"
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": pid,
            "ts": 0, "args": {"name": name},
        })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": pid,
            "ts": 0, "args": {"name": name},
        })

    for span in spans:
        ts_us = max(0.0, (span.start_s - base_s) * 1e6)
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            **({"parent_id": span.parent_id} if span.parent_id else {}),
            **span.attrs,
        }
        if span.category == "event":
            events.append({
                "ph": "i", "s": "t",
                "name": span.name, "cat": span.category,
                "pid": span.pid, "tid": span.pid,
                "ts": ts_us, "args": args,
            })
        else:
            events.append({
                "ph": "X",
                "name": span.name, "cat": span.category,
                "pid": span.pid, "tid": span.pid,
                "ts": ts_us,
                "dur": max(0.0, span.duration_s * 1e6),
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro trace export",
            "v": TRACE_EXPORT_VERSION,
            "spans": len(spans),
        },
    }


def span_event_count(trace: dict) -> int:
    """Span-backed events in a trace (``X`` + ``i``; metadata excluded)."""
    return sum(
        1 for event in trace.get("traceEvents", ())
        if event.get("ph") in ("X", "i")
    )


def validate_chrome_trace(trace: object) -> None:
    """Structurally validate an exported trace object.

    Enforces :data:`CHROME_TRACE_SCHEMA` — the checks CI's
    monitor-smoke job relies on — raising
    :class:`~repro.common.errors.ReproError` on the first violation.
    """
    if not isinstance(trace, dict):
        raise ReproError("chrome trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ReproError("chrome trace is missing the traceEvents array")
    for number, event in enumerate(events):
        where = f"traceEvents[{number}]"
        if not isinstance(event, dict):
            raise ReproError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            raise ReproError(f"{where}: bad phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ReproError(f"{where}: {key} must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ReproError(f"{where}: ts must be a non-negative number")
        if not isinstance(event.get("name"), str):
            raise ReproError(f"{where}: name must be a string")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(
                    f"{where}: complete events need a non-negative dur"
                )
        if "args" in event and not isinstance(event["args"], dict):
            raise ReproError(f"{where}: args must be an object")
    unit = trace.get("displayTimeUnit")
    if unit is not None and unit not in ("ms", "ns"):
        raise ReproError(f"bad displayTimeUnit {unit!r}")


def export_chrome_trace(
    spans_path: str | Path, out_path: str | Path
) -> int:
    """Convert ``spans.jsonl`` to a Chrome trace file; returns the
    number of span-backed events written (== the span record count)."""
    spans = load_spans(spans_path)
    trace = chrome_trace(spans)
    validate_chrome_trace(trace)
    # Local import: store depends only on the sim layer, and the
    # atomic tmp+replace write is exactly what a trace file wants.
    from repro.sim.store import atomic_write_text

    atomic_write_text(Path(out_path), json.dumps(trace))
    return span_event_count(trace)
