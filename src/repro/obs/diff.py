"""The metric regression gate behind ``repro diff``.

Two result sets — saved :class:`~repro.sim.metrics.MatrixResult` files
or :class:`~repro.obs.ledger.RunLedger` JSONL files, in any combination
— are reduced to ``{(workload, scheme): {metric: value}}`` maps and
compared cell by cell under per-metric :class:`ToleranceRule`\\ s.  Any
violated rule is a **failure finding**; ``repro diff`` prints the table
and exits non-zero, which is what lets CI gate on "the headline numbers
did not silently move".

Rules live in a checked-in JSON file (``baselines/tolerances.json``)
so the thresholds are versioned next to the baseline they guard::

    {
      "format_version": 1,
      "rules": {
        "ipc":          {"rel_tol": 0.005},
        "min_lifetime": {"rel_tol": 0.01, "direction": "decrease"},
        ...
      }
    }

``direction`` limits which way a drift counts as a regression:
``"any"`` (default) flags both ways, ``"decrease"`` only drops below
baseline (good for lifetimes and hit rates), ``"increase"`` only rises
(good for wall time and wear imbalance).  A metric absent from either
side is skipped — ledger records and matrix files carry overlapping but
not identical metric sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.ledger import RunLedger
from repro.sim.metrics import MatrixResult, WorkloadSchemeResult

#: Tolerance-file layout version.
RULES_FORMAT_VERSION = 1

#: Cell key: (workload, scheme).
CellKey = tuple[str, str]

#: Per-cell metric map.
MetricMap = dict[CellKey, dict[str, float]]


@dataclass(frozen=True)
class ToleranceRule:
    """Allowed drift for one metric.

    ``rel_tol`` is relative to the baseline magnitude, ``abs_tol`` is an
    absolute band; a deviation must exceed *both* to fire (so a metric
    near zero can carry a small absolute floor under a tight relative
    rule).  ``direction`` selects which sign of drift is a regression.
    """

    metric: str
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    direction: str = "any"

    def __post_init__(self) -> None:
        if self.direction not in ("any", "increase", "decrease"):
            raise ReproError(
                f"tolerance rule {self.metric!r}: direction must be "
                f"'any', 'increase' or 'decrease', got {self.direction!r}"
            )
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ReproError(
                f"tolerance rule {self.metric!r}: tolerances must be >= 0"
            )

    def violated_by(self, baseline: float, current: float) -> bool:
        """True when ``current`` drifts out of tolerance from ``baseline``."""
        delta = current - baseline
        if self.direction == "increase" and delta <= 0:
            return False
        if self.direction == "decrease" and delta >= 0:
            return False
        allowed = max(self.abs_tol, self.rel_tol * abs(baseline))
        return abs(delta) > allowed


#: The built-in rules, used when no tolerance file is given.  IPC holds
#: the paper's "within 0.5%" bar; lifetime/hit-rate/capacity only gate
#: on losses; wear CoV and wall time only gate on growth.
DEFAULT_RULES: dict[str, ToleranceRule] = {
    rule.metric: rule
    for rule in (
        ToleranceRule("ipc", rel_tol=0.005),
        ToleranceRule("min_lifetime", rel_tol=0.01, direction="decrease"),
        ToleranceRule("wear_cov", rel_tol=0.02, abs_tol=0.005,
                      direction="increase"),
        ToleranceRule("llc_hit_rate", abs_tol=0.005, direction="decrease"),
        ToleranceRule("effective_capacity", abs_tol=0.001,
                      direction="decrease"),
        ToleranceRule("energy_mj", rel_tol=0.01, abs_tol=0.001,
                      direction="increase"),
        ToleranceRule("wall_time_s", rel_tol=0.75, abs_tol=2.0,
                      direction="increase"),
        # Gated by the history layer (repro history check), not by
        # repro diff: search quality must not silently shrink.
        ToleranceRule("hypervolume", rel_tol=0.05, abs_tol=0.001,
                      direction="decrease"),
    )
}


def load_rules(path: str | Path) -> dict[str, ToleranceRule]:
    """Read a tolerance-rule file (see the module docstring for layout).

    Raises:
        ReproError: unreadable file, wrong version or malformed rules.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read tolerance file {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format_version") != RULES_FORMAT_VERSION
    ):
        raise ReproError(
            f"{path}: unsupported tolerance file format "
            f"(expected format_version {RULES_FORMAT_VERSION})"
        )
    rules_raw = payload.get("rules")
    if not isinstance(rules_raw, dict) or not rules_raw:
        raise ReproError(f"{path}: tolerance file has no rules")
    rules: dict[str, ToleranceRule] = {}
    for metric, spec in rules_raw.items():
        if not isinstance(spec, dict):
            raise ReproError(f"{path}: rule {metric!r} is not an object")
        try:
            rules[metric] = ToleranceRule(
                metric=metric,
                rel_tol=float(spec.get("rel_tol", 0.0)),
                abs_tol=float(spec.get("abs_tol", 0.0)),
                direction=str(spec.get("direction", "any")),
            )
        except (TypeError, ValueError) as exc:
            raise ReproError(f"{path}: bad rule {metric!r}: {exc}") from exc
    return rules


# -- loading comparable metric maps ------------------------------------------


def metrics_of(result: WorkloadSchemeResult) -> dict[str, float]:
    """The gated headline metrics of one stage-2 result."""
    return {
        "ipc": result.ipc,
        "min_lifetime": result.min_lifetime,
        "wear_cov": result.wear_cov,
        "llc_hit_rate": result.llc_fetch_hit_rate,
        "effective_capacity": result.effective_capacity,
        "energy_mj": result.energy_mj,
    }


def matrix_metric_map(matrix: MatrixResult) -> MetricMap:
    """Metric map of every cell in a result matrix.

    FAILED placeholder cells (quarantined by a ``--keep-going`` sweep)
    are excluded: their metrics are zeros, not measurements.  A failed
    cell in the *current* matrix therefore surfaces as a missing-cell
    violation against the baseline — the gate fails loudly instead of
    comparing against fabricated zeros.
    """
    return {
        key: metrics_of(result) for key, result in matrix.results.items()
        if not result.failed
    }


def ledger_metric_map(records) -> MetricMap:
    """Metric map of ledger records (last record per cell wins).

    Wall time is comparable across ledger entries, so it joins the
    metric set here (matrix files do not carry it).
    """
    out: MetricMap = {}
    for record in records:
        metrics = dict(record.metrics)
        metrics["wall_time_s"] = record.wall_time_s
        out[(record.workload, record.scheme)] = metrics
    return out


def load_comparable(path: str | Path) -> MetricMap:
    """Load a matrix JSON or ledger JSONL file into a metric map.

    The format is sniffed from the content: a JSON object with a
    ``results`` list is a :func:`~repro.sim.store.save_matrix` file;
    anything else is treated as a ledger.

    Raises:
        ReproError: unreadable or unrecognisable file, or an empty
            result set (diffing nothing is a usage error, not a pass).
    """
    from repro.sim.store import load_matrix

    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    if not text.strip():
        raise ReproError(f"{path}: empty result file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None  # not one JSON document: treat as ledger JSONL
    if isinstance(payload, dict) and "results" in payload:
        cells = matrix_metric_map(load_matrix(path))
        if not cells:
            raise ReproError(f"{path}: matrix holds no results")
        return cells
    cells = ledger_metric_map(RunLedger(path).load())
    if not cells:
        raise ReproError(f"{path}: no ledger run records found")
    return cells


# -- the comparison ----------------------------------------------------------


@dataclass(frozen=True)
class DiffFinding:
    """One compared (cell, metric) line of a diff."""

    workload: str
    scheme: str
    metric: str
    baseline: float | None
    current: float | None
    ok: bool
    note: str = ""

    @property
    def delta_pct(self) -> float | None:
        """Relative drift in percent (None when undefined)."""
        if self.baseline in (None, 0.0) or self.current is None:
            return None
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)


def diff_metric_maps(
    baseline: MetricMap,
    current: MetricMap,
    rules: dict[str, ToleranceRule] | None = None,
) -> list[DiffFinding]:
    """Compare two metric maps cell by cell under the tolerance rules.

    Only metrics with a rule are gated; a baseline cell missing from
    ``current`` is a failure (a silently dropped experiment is a
    regression too), while an extra current cell is an informational
    pass.  Findings come back in (workload, scheme, metric) order,
    failures and passes alike, so callers can render the full table.
    """
    rules = DEFAULT_RULES if rules is None else rules
    findings: list[DiffFinding] = []
    for key in sorted(set(baseline) | set(current)):
        workload, scheme = key
        if key not in current:
            findings.append(DiffFinding(
                workload, scheme, "*", None, None,
                ok=False, note="cell missing from current results",
            ))
            continue
        if key not in baseline:
            findings.append(DiffFinding(
                workload, scheme, "*", None, None,
                ok=True, note="new cell (not in baseline)",
            ))
            continue
        base_metrics, cur_metrics = baseline[key], current[key]
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            rule = rules.get(metric)
            if rule is None:
                continue
            base_value = base_metrics[metric]
            cur_value = cur_metrics[metric]
            bad = rule.violated_by(base_value, cur_value)
            findings.append(DiffFinding(
                workload, scheme, metric, base_value, cur_value,
                ok=not bad,
                note="" if not bad else _limit_text(rule),
            ))
    return findings


def _limit_text(rule: ToleranceRule) -> str:
    parts = []
    if rule.rel_tol:
        parts.append(f"±{100 * rule.rel_tol:g}%")
    if rule.abs_tol:
        parts.append(f"±{rule.abs_tol:g} abs")
    limit = " or ".join(parts) if parts else "exact"
    if rule.direction != "any":
        limit += f" ({rule.direction} only)"
    return f"exceeds {limit}"


def render_findings(findings: list[DiffFinding], *, verbose: bool = False) -> str:
    """Human-readable diff table (failures always; passes when verbose)."""
    from repro.experiments.report import format_table

    shown = findings if verbose else [f for f in findings if not f.ok]
    failures = sum(1 for f in findings if not f.ok)
    compared = sum(1 for f in findings if f.metric != "*")
    lines = []
    if shown:
        rows = []
        for f in shown:
            delta = f.delta_pct
            rows.append((
                "ok" if f.ok else "FAIL",
                f.workload, f.scheme, f.metric,
                "-" if f.baseline is None else f"{f.baseline:.4f}",
                "-" if f.current is None else f"{f.current:.4f}",
                "-" if delta is None else f"{delta:+.2f}%",
                f.note,
            ))
        lines.append(format_table(
            ["", "workload", "scheme", "metric", "baseline", "current",
             "drift", "note"],
            rows,
        ))
    lines.append(
        f"{compared} metric comparisons, {failures} violation(s)"
        if failures else
        f"{compared} metric comparisons, all within tolerance"
    )
    return "\n".join(lines)
