"""The run ledger: append-only provenance records for every simulation.

A :class:`RunLedger` is a JSONL file with one :class:`RunRecord` per
resolved run — the identity of the cell (workload/scheme/seed/budget
plus the :meth:`JobSpec fingerprint <repro.jobs.spec.JobSpec.fingerprint>`
of its inputs), where the result came from (executed, result cache or
resume journal), the headline metrics, wall time, the repository commit
and optional profiler phase totals.  ``run_workload``, the sweep
engine's ``run_jobs`` and the CLI all append to it, so a directory's
ledger is the full history of what was simulated there and what it
measured — the raw material of the ``repro diff`` regression gate and
the ledger-history section of ``repro report``.

Robustness mirrors :class:`~repro.jobs.journal.SweepJournal`: records
are flushed and fsynced as they are appended; a torn final line (an
interrupted append) is ignored on read; corruption anywhere earlier
raises :class:`~repro.common.errors.ReproError`, as does an unknown
format version.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.common.errors import ReproError
from repro.sim.metrics import WorkloadSchemeResult

#: Ledger record layout version; bump on incompatible schema changes.
LEDGER_FORMAT_VERSION = 1

#: How a run's result was obtained.  ``failed`` marks a quarantined
#: placeholder cell from a ``keep_going`` sweep (zero metrics, no run).
SOURCES = ("executed", "cache", "journal", "failed")


@lru_cache(maxsize=1)
def current_git_sha() -> str | None:
    """The repository HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def new_run_id() -> str:
    """A unique, roughly sortable run identifier (``r<epoch>-<hex>``)."""
    return f"r{int(time.time())}-{os.urandom(4).hex()}"


@dataclass
class RunRecord:
    """One ledger line: the provenance of one resolved simulation run."""

    run_id: str
    workload: str
    scheme: str
    seed: int | None
    n_instructions: int
    fingerprint: str | None
    source: str
    wall_time_s: float
    metrics: dict[str, float]
    git_sha: str | None = None
    timestamp: float = 0.0
    #: Profiler phase totals (``{"stage1": seconds, ...}``); empty when
    #: the run was not profiled.
    profile: dict[str, float] = field(default_factory=dict)
    #: Sweep-engine accounting for grid runs (``{"total": N, ...}``);
    #: empty for standalone runs.
    engine: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ReproError(
                f"run record source must be one of {SOURCES}, "
                f"got {self.source!r}"
            )

    @classmethod
    def for_result(
        cls,
        result: WorkloadSchemeResult,
        *,
        seed: int | None,
        n_instructions: int,
        wall_time_s: float,
        source: str = "executed",
        fingerprint: str | None = None,
        run_id: str | None = None,
        profile: dict[str, float] | None = None,
        engine: dict[str, int] | None = None,
    ) -> "RunRecord":
        """Build the ledger record of one stage-2 result."""
        return cls(
            run_id=run_id or new_run_id(),
            workload=result.workload,
            scheme=result.scheme,
            seed=seed,
            n_instructions=int(n_instructions),
            fingerprint=fingerprint,
            source=source,
            wall_time_s=float(wall_time_s),
            metrics={
                "ipc": result.ipc,
                "min_lifetime": result.min_lifetime,
                "wear_cov": result.wear_cov,
                "llc_hit_rate": result.llc_fetch_hit_rate,
                "effective_capacity": result.effective_capacity,
                "energy_mj": result.energy_mj,
            },
            git_sha=current_git_sha(),
            timestamp=time.time(),
            profile=dict(profile or {}),
            engine=dict(engine or {}),
        )

    def to_dict(self) -> dict:
        """Plain-JSON representation (with the format version)."""
        out = {"v": LEDGER_FORMAT_VERSION}
        out.update(asdict(self))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`.

        Raises:
            ReproError: for a missing field or unsupported version.
        """
        version = data.get("v")
        if version != LEDGER_FORMAT_VERSION:
            raise ReproError(
                f"unsupported ledger record format {version!r} "
                f"(expected {LEDGER_FORMAT_VERSION})"
            )
        try:
            return cls(
                run_id=str(data["run_id"]),
                workload=str(data["workload"]),
                scheme=str(data["scheme"]),
                seed=None if data["seed"] is None else int(data["seed"]),
                n_instructions=int(data["n_instructions"]),
                fingerprint=(
                    None if data["fingerprint"] is None
                    else str(data["fingerprint"])
                ),
                source=str(data["source"]),
                wall_time_s=float(data["wall_time_s"]),
                metrics={
                    str(k): float(v) for k, v in data["metrics"].items()
                },
                git_sha=(
                    None if data.get("git_sha") is None
                    else str(data["git_sha"])
                ),
                timestamp=float(data.get("timestamp", 0.0)),
                profile={
                    str(k): float(v)
                    for k, v in data.get("profile", {}).items()
                },
                engine={
                    str(k): int(v)
                    for k, v in data.get("engine", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ReproError(f"malformed ledger record: {exc}") from exc


class RunLedger:
    """Append-only JSONL file of :class:`RunRecord` provenance lines."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading -------------------------------------------------------------

    def load(self) -> list[RunRecord]:
        """All records in append order (empty when the file is missing).

        Raises:
            ReproError: for corruption other than a torn final record.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise ReproError(f"cannot read ledger {self.path}: {exc}") from exc
        records: list[RunRecord] = []
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    # Torn final append (interrupted writer): that run's
                    # record is simply lost; everything before it holds.
                    break
                raise ReproError(
                    f"{self.path}:{lineno}: malformed ledger record: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ReproError(
                    f"{self.path}:{lineno}: ledger record is not an object"
                )
            try:
                records.append(RunRecord.from_dict(payload))
            except ReproError as exc:
                raise ReproError(f"{self.path}:{lineno}: {exc}") from exc
        return records

    # -- writing -------------------------------------------------------------

    def open(self) -> None:
        """Open the backing file for appending (creating it if needed)."""
        if self._fh is not None:
            return
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot open ledger {self.path}: {exc}") from exc

    def append(self, record: RunRecord) -> None:
        """Append one record (flushed and fsynced immediately)."""
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(record.to_dict()) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the backing file (reopened automatically on ``append``)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def as_ledger(ledger: RunLedger | str | Path | None) -> RunLedger | None:
    """Coerce a path-or-ledger argument (the runner/scheduler contract)."""
    if ledger is None or isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(ledger)
