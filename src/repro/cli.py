"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``config``   — print the Table I machine description.
* ``table2``   — characterise applications (Table II columns).
* ``compare``  — run one workload under several NUCA schemes.
* ``workloads``— show the generated WL1..WL10 mixes.
* ``trace``    — generate a synthetic application trace to a .npz file.
* ``endoflife``— sweep cache age under fault injection (degradation study).

Every command takes ``--instructions`` and ``--seed``; results are
printed as the same text tables the benchmark harness emits.

User-facing failures (unknown application, malformed trace file,
inconsistent configuration — anything deriving from
:class:`~repro.common.errors.ReproError`) print a one-line
``error: ...`` to stderr and exit with status 2; tracebacks are reserved
for actual bugs.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError
from repro.config import baseline_config
from repro.experiments.report import format_table, render_table2
from repro.experiments.table2 import run_table2
from repro.sim.runner import Stage1Cache, run_workload
from repro.trace.profiles import ALL_APPS, get_profile, intensity_class
from repro.trace.workloads import make_workloads


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="instruction budget per core (default 60000)")
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed (default 1)")


def _cmd_config(_args) -> int:
    print(baseline_config().describe())
    return 0


def _cmd_table2(args) -> int:
    apps = tuple(args.apps) if args.apps else None
    rows = run_table2(apps=apps, seed=args.seed,
                      n_instructions=args.instructions)
    print(render_table2(rows))
    return 0


def _cmd_compare(args) -> int:
    config = baseline_config()
    workloads = make_workloads(num_cores=config.num_cores, seed=args.seed)
    index = args.workload - 1
    if not (0 <= index < len(workloads)):
        print(f"error: workload must be 1..{len(workloads)}", file=sys.stderr)
        return 2
    workload = workloads[index]
    print(f"{workload.name}: {', '.join(workload.apps)}\n")
    stage1 = Stage1Cache()
    rows = []
    for scheme in args.schemes:
        result = run_workload(
            workload, scheme, config, seed=args.seed,
            n_instructions=args.instructions, stage1=stage1,
        )
        writes = result.bank_writes
        rows.append((
            scheme, result.ipc, result.min_lifetime,
            float(writes.std() / writes.mean()) if writes.mean() else 0.0,
            result.llc_fetch_hit_rate,
        ))
    print(format_table(
        ["scheme", "IPC", "min life [y]", "wear CV", "LLC hit"], rows
    ))
    return 0


def _cmd_workloads(args) -> int:
    for workload in make_workloads(num_cores=16, seed=args.seed):
        classes = [intensity_class(get_profile(a))[0].upper() for a in workload.apps]
        print(f"{workload.name}: {', '.join(workload.apps)}")
        print(f"      intensity: {''.join(classes)} "
              f"({classes.count('H')} high / {classes.count('M')} medium / "
              f"{classes.count('L')} low)")
    return 0


def _cmd_trace(args) -> int:
    from repro.common.rng import derive_rng
    from repro.trace.fileio import save_trace
    from repro.trace.generator import bundles_for_instructions, generate_trace
    from repro.trace.synthetic import derive_params

    profile = get_profile(args.app)
    params = derive_params(profile, baseline_config())
    rng = derive_rng(args.seed, "trace", args.app)
    bundles = bundles_for_instructions(params, args.instructions)
    trace = generate_trace(params, bundles, rng)
    save_trace(args.output, trace, params=params,
               extra={"app": args.app, "seed": args.seed})
    print(f"wrote {len(trace)} records (~{args.instructions} instructions) "
          f"for {args.app} to {args.output}")
    return 0


def _parse_ages(text: str) -> tuple[float, ...]:
    """Parse the ``--ages`` comma list (e.g. ``0.5,0.9,1.1``)."""
    try:
        ages = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad age list {text!r}") from None
    if not ages:
        raise argparse.ArgumentTypeError("age list is empty")
    return ages


def _parse_bank_failure(text: str) -> tuple[int, float]:
    """Parse one ``--fail-bank`` entry: ``BANK`` or ``BANK:AGE``."""
    bank, _, age = text.partition(":")
    try:
        return int(bank), float(age) if age else 0.0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad bank failure {text!r} (expected BANK or BANK:AGE)"
        ) from None


def _cmd_endoflife(args) -> int:
    from repro.experiments.endoflife import (
        DEFAULT_SCHEMES,
        render_endoflife,
        run_endoflife,
    )

    ages = tuple(sorted(set(args.ages)))
    curves = run_endoflife(
        workload_number=args.workload,
        ages=(0.0, *[a for a in ages if a > 0]),
        schemes=tuple(args.schemes or DEFAULT_SCHEMES),
        seed=args.seed,
        n_instructions=args.instructions,
        bank_failures=tuple(args.fail_bank),
        transient_rate=args.transient_rate,
        progress=lambda scheme, age: print(
            f"  running {scheme} at age {age:.2f} ...", file=sys.stderr
        ),
    )
    print(render_endoflife(curves))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Re-NUCA (IPDPS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("config", help="print the Table I configuration")

    p_table2 = sub.add_parser("table2", help="characterise applications")
    p_table2.add_argument("apps", nargs="*",
                          help="apps to run (default: all 22)")
    _add_common(p_table2)

    p_compare = sub.add_parser("compare", help="run one workload under schemes")
    p_compare.add_argument("--workload", type=int, default=1,
                           help="workload number 1..10 (default 1)")
    p_compare.add_argument("--schemes", nargs="+",
                           default=["S-NUCA", "R-NUCA", "Re-NUCA"],
                           help="NUCA schemes to compare")
    _add_common(p_compare)

    p_wl = sub.add_parser("workloads", help="show the WL1..WL10 mixes")
    _add_common(p_wl)

    p_trace = sub.add_parser("trace", help="generate a trace file")
    p_trace.add_argument("app", help="Table II application name")
    p_trace.add_argument("output", help="output .npz path")
    _add_common(p_trace)

    p_eol = sub.add_parser(
        "endoflife",
        help="sweep cache age under end-of-life fault injection",
    )
    p_eol.add_argument("--workload", type=int, default=1,
                       help="workload number 1..10 (default 1)")
    p_eol.add_argument("--ages", type=_parse_ages, default=(0.5, 0.9, 1.1),
                       help="comma list of endurance fractions "
                            "(default 0.5,0.9,1.1; 0.0 baseline always runs)")
    p_eol.add_argument("--schemes", nargs="+", default=None,
                       help="NUCA schemes (default S-NUCA R-NUCA Re-NUCA)")
    p_eol.add_argument("--fail-bank", type=_parse_bank_failure, action="append",
                       default=[], metavar="BANK[:AGE]",
                       help="schedule a whole-bank failure (repeatable); "
                            "AGE defaults to 0 (dead at every swept age)")
    p_eol.add_argument("--transient-rate", type=float, default=0.0,
                       help="per-read soft-fault probability (default 0)")
    _add_common(p_eol)

    return parser


_COMMANDS = {
    "config": _cmd_config,
    "table2": _cmd_table2,
    "compare": _cmd_compare,
    "workloads": _cmd_workloads,
    "trace": _cmd_trace,
    "endoflife": _cmd_endoflife,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.common.errors.ReproError` subclasses:
    unknown apps, malformed traces, bad configurations) are reported as a
    one-line ``error: ...`` on stderr with exit status 2 — they are user
    mistakes, not crashes.  Anything else propagates with a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
